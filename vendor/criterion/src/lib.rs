//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This crate provides a working wall-clock harness for
//! the same API the workspace's benches use — `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with median-of-samples reporting and none of criterion's statistics.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by this harness; each batch
/// runs one routine invocation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then timed samples.
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.measured.push(t0.elapsed());
        }
    }

    /// Time `routine` on inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.measured.push(t0.elapsed());
        }
    }
}

fn report(name: &str, measured: &mut [Duration]) {
    if measured.is_empty() {
        return;
    }
    measured.sort_unstable();
    let median = measured[measured.len() / 2];
    let min = measured[0];
    let max = measured[measured.len() - 1];
    println!(
        "{name:<48} median {:>12.3?}  (min {:.3?}, max {:.3?}, n={})",
        median,
        min,
        max,
        measured.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.measured);
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            measured: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.measured);
        self
    }
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_routine() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut produced = Vec::new();
        let mut next = 0i32;
        c.benchmark_group("test")
            .sample_size(2)
            .bench_function("batched", |b| {
                b.iter_batched(
                    || {
                        next += 1;
                        next
                    },
                    |input| produced.push(input),
                    BatchSize::SmallInput,
                )
            });
        assert_eq!(produced, vec![1, 2, 3]);
    }
}
