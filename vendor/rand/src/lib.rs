//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so external crates cannot be fetched. This crate
//! reimplements exactly the slice of `rand` 0.8 the workspace uses —
//! `StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range` over integer and
//! float ranges, and `sample(Standard)` — on top of a xoshiro256**
//! generator seeded via SplitMix64. All call sites in the workspace seed
//! explicitly, so no entropy source is required and every use is
//! reproducible by construction.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: uniform bits for integers,
    /// uniform `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic for a given seed, like `rand`'s `StdRng`
    /// under `seed_from_u64` (the exact stream differs; nothing in the
    /// workspace depends on `rand`'s bit-exact stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Everything a typical `use rand::prelude::*;` expects.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let inc: i64 = rng.gen_range(1..=50);
            assert!((1..=50).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
