//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build container has no network access, so the real `proptest` cannot
//! be fetched. This crate reimplements the slice of the API the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`any`], [`Just`],
//! [`prop_oneof!`], `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline CI stub:
//! generation is seeded deterministically from the test's module path and
//! name (bit-stable across runs — no `PROPTEST_` env handling), and there
//! is no shrinking: a failing case reports its case index and message.

use std::fmt;
use std::ops::Range;

use rand::prelude::*;
pub use rand::SampleRange;

/// The deterministic generator driving every strategy.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test identifier (FNV-1a), bit-stable across runs.
    pub fn deterministic(test_id: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform sample from a range.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A failed property within a test case; `prop_assert*` produce these.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.gen(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical edge-case-biased strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward edge cases and small values, like proptest.
                match rng.gen_range(0..8u32) {
                    0 => 0 as $t,
                    1 => <$t>::MIN,
                    2 => <$t>::MAX,
                    3 => 1 as $t,
                    4 => rng.next_u64() as $t % 100 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn gen(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `Vec` strategy: length uniform in `sizes`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.sizes.start < self.sizes.end {
                rng.gen_range(self.sizes.clone())
            } else {
                self.sizes.start
            };
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror: `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0i64..100, v in prop::collection::vec(any::<i32>(), 0..10)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::gen(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

/// Choose uniformly between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -5i64..10, u in 0usize..4) {
            prop_assert!((-5..10).contains(&x));
            prop_assert!(u < 4);
        }

        #[test]
        fn vec_lengths_respect_sizes(v in prop::collection::vec(0i64..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                Just(1i64),
                (0i64..3, 10i64..13).prop_map(|(a, b)| a + b),
                any::<u8>().prop_map(|b| b as i64 + 100),
            ]
        ) {
            prop_assert!(v == 1 || (10..16).contains(&v) || (100..356).contains(&v));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let a = crate::TestRng::deterministic("x").next_u64();
        let b = crate::TestRng::deterministic("x").next_u64();
        let c = crate::TestRng::deterministic("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
