//! Hand-optimized native implementations of every benchmark.
//!
//! Written the way a performance engineer would write the C++ versions the
//! paper compares against: flat arrays, fused single-pass loops, no
//! intermediate allocations. They are both the Table 2 baseline and the
//! ground truth the staged DMLL applications are validated against.

#![allow(clippy::needless_range_loop)] // index-based numeric kernels mirror the C++ style

use dmll_data::graph::CsrGraph;
use dmll_data::matrix::DenseMatrix;
use dmll_data::tpch::{LineItemColumns, Q1_SHIP_CUTOFF};
use dmll_data::FactorGraph;

/// One output row of TPC-H Query 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Q1Row {
    /// `l_returnflag` code.
    pub return_flag: i64,
    /// `l_linestatus` code.
    pub line_status: i64,
    /// `sum(l_quantity)`.
    pub sum_qty: f64,
    /// `sum(l_extendedprice)`.
    pub sum_base_price: f64,
    /// `sum(l_extendedprice * (1 - l_discount))`.
    pub sum_disc_price: f64,
    /// `sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))`.
    pub sum_charge: f64,
    /// `count(*)`.
    pub count: i64,
}

/// TPC-H Query 1: filter by ship date, group by (returnflag, linestatus),
/// aggregate — one fused pass with a tiny dense group table.
pub fn q1(cols: &LineItemColumns) -> Vec<Q1Row> {
    // 3 flags × 2 statuses = 6 dense slots, keyed flag*2+status.
    let mut sums = [[0.0f64; 4]; 6];
    let mut counts = [0i64; 6];
    let n = cols.quantity.len();
    for i in 0..n {
        if cols.ship_date[i] > Q1_SHIP_CUTOFF {
            continue;
        }
        let slot = (cols.return_flag[i] * 2 + cols.line_status[i]) as usize;
        let price = cols.extended_price[i];
        let disc = price * (1.0 - cols.discount[i]);
        sums[slot][0] += cols.quantity[i];
        sums[slot][1] += price;
        sums[slot][2] += disc;
        sums[slot][3] += disc * (1.0 + cols.tax[i]);
        counts[slot] += 1;
    }
    let mut out = Vec::new();
    for slot in 0..6 {
        if counts[slot] > 0 {
            out.push(Q1Row {
                return_flag: (slot / 2) as i64,
                line_status: (slot % 2) as i64,
                sum_qty: sums[slot][0],
                sum_base_price: sums[slot][1],
                sum_disc_price: sums[slot][2],
                sum_charge: sums[slot][3],
                count: counts[slot],
            });
        }
    }
    out
}

/// Gene barcoding: per-barcode read count and mean quality, densely indexed
/// by barcode.
pub fn gene_barcode_stats(
    barcode: &[i64],
    quality: &[i64],
    num_barcodes: usize,
) -> (Vec<i64>, Vec<f64>) {
    let mut counts = vec![0i64; num_barcodes];
    let mut qsum = vec![0i64; num_barcodes];
    for (b, q) in barcode.iter().zip(quality) {
        counts[*b as usize] += 1;
        qsum[*b as usize] += q;
    }
    let mean_q = counts
        .iter()
        .zip(&qsum)
        .map(|(c, q)| if *c > 0 { *q as f64 / *c as f64 } else { 0.0 })
        .collect();
    (counts, mean_q)
}

/// The GDA (Gaussian discriminant analysis) statistics: class priors, class
/// means and the pooled covariance, in two fused passes over the data.
#[derive(Clone, Debug, PartialEq)]
pub struct GdaModel {
    /// P(y = 1).
    pub phi: f64,
    /// Mean of class 0 (length cols).
    pub mu0: Vec<f64>,
    /// Mean of class 1.
    pub mu1: Vec<f64>,
    /// Pooled covariance, row-major cols × cols.
    pub sigma: Vec<f64>,
}

/// Compute the GDA model.
pub fn gda(x: &DenseMatrix, y: &[f64]) -> GdaModel {
    let (n, d) = (x.rows, x.cols);
    let mut mu0 = vec![0.0; d];
    let mut mu1 = vec![0.0; d];
    let mut n1 = 0usize;
    for i in 0..n {
        let row = x.row(i);
        if y[i] > 0.5 {
            n1 += 1;
            for j in 0..d {
                mu1[j] += row[j];
            }
        } else {
            for j in 0..d {
                mu0[j] += row[j];
            }
        }
    }
    let n0 = n - n1;
    for j in 0..d {
        if n0 > 0 {
            mu0[j] /= n0 as f64;
        }
        if n1 > 0 {
            mu1[j] /= n1 as f64;
        }
    }
    let mut sigma = vec![0.0; d * d];
    for i in 0..n {
        let row = x.row(i);
        let mu = if y[i] > 0.5 { &mu1 } else { &mu0 };
        for a in 0..d {
            let da = row[a] - mu[a];
            for b in 0..d {
                sigma[a * d + b] += da * (row[b] - mu[b]);
            }
        }
    }
    for v in &mut sigma {
        *v /= n as f64;
    }
    GdaModel {
        phi: n1 as f64 / n as f64,
        mu0,
        mu1,
        sigma,
    }
}

/// One k-means iteration: returns `(new_centroids, assignment)`. Fused
/// single pass: assignment, per-cluster sums and counts together.
pub fn kmeans_iter(x: &DenseMatrix, centroids: &DenseMatrix) -> (DenseMatrix, Vec<i64>) {
    let (n, d, k) = (x.rows, x.cols, centroids.rows);
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0i64; k];
    let mut assigned = Vec::with_capacity(n);
    for i in 0..n {
        let row = x.row(i);
        let mut best = (f64::INFINITY, 0usize);
        for c in 0..k {
            let cen = centroids.row(c);
            let mut dist = 0.0;
            for j in 0..d {
                let diff = row[j] - cen[j];
                dist += diff * diff;
            }
            if dist < best.0 {
                best = (dist, c);
            }
        }
        assigned.push(best.1 as i64);
        counts[best.1] += 1;
        for j in 0..d {
            sums[best.1 * d + j] += row[j];
        }
    }
    let mut data = vec![0.0; k * d];
    for c in 0..k {
        let cnt = counts[c].max(1) as f64;
        for j in 0..d {
            data[c * d + j] = sums[c * d + j] / cnt;
        }
    }
    (
        DenseMatrix {
            data,
            rows: k,
            cols: d,
        },
        assigned,
    )
}

/// One logistic-regression gradient step with the standard sigmoid, fused
/// over samples (the Column-to-Row traversal order).
pub fn logreg_iter(x: &DenseMatrix, y: &[f64], theta: &[f64], alpha: f64) -> Vec<f64> {
    let (n, d) = (x.rows, x.cols);
    let mut grad = vec![0.0f64; d];
    for i in 0..n {
        let row = x.row(i);
        let mut dot = 0.0;
        for j in 0..d {
            dot += row[j] * theta[j];
        }
        let hyp = 1.0 / (1.0 + (-dot).exp());
        let err = y[i] - hyp;
        for j in 0..d {
            grad[j] += row[j] * err;
        }
    }
    (0..d).map(|j| theta[j] + alpha * grad[j]).collect()
}

/// One PageRank iteration (pull model over the reverse graph):
/// `rank'(v) = (1-d)/N + d * Σ rank(u)/deg(u)` over in-neighbors `u`.
pub fn pagerank_iter(fwd: &CsrGraph, rev: &CsrGraph, ranks: &[f64], damping: f64) -> Vec<f64> {
    let n = fwd.num_vertices();
    let base = (1.0 - damping) / n as f64;
    (0..n)
        .map(|v| {
            let mut sum = 0.0;
            for &u in rev.neighbors(v) {
                let deg = fwd.degree(u as usize);
                if deg > 0 {
                    sum += ranks[u as usize] / deg as f64;
                }
            }
            base + damping * sum
        })
        .collect()
}

/// Triangle counting on an undirected (symmetrized) graph via sorted
/// adjacency intersection, counting each triangle once.
pub fn triangles(g: &CsrGraph) -> u64 {
    let n = g.num_vertices();
    let mut count = 0u64;
    for u in 0..n {
        for &v in g.neighbors(u) {
            let v = v as usize;
            if v <= u {
                continue;
            }
            // Intersect neighbors(u) ∩ neighbors(v), counting w > v.
            let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
            while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => a = &a[1..],
                    std::cmp::Ordering::Greater => b = &b[1..],
                    std::cmp::Ordering::Equal => {
                        if x as usize > v {
                            count += 1;
                        }
                        a = &a[1..];
                        b = &b[1..];
                    }
                }
            }
        }
    }
    count
}

/// One sequential Gibbs sweep over all variables with a counter-based RNG
/// so parallel samplers can reproduce the exact same coin flips per
/// (variable, sweep).
pub fn gibbs_sweep(fg: &FactorGraph, assignment: &mut [i8], sweep: u64, seed: u64) {
    for v in 0..fg.num_vars() {
        let field = fg.local_field(v, assignment);
        let p = 1.0 / (1.0 + (-2.0 * field).exp());
        let u = hash_unit(seed, sweep, v as u64);
        assignment[v] = if u < p { 1 } else { -1 };
    }
}

/// Deterministic per-(seed, sweep, variable) uniform sample in [0, 1).
pub fn hash_unit(seed: u64, sweep: u64, v: u64) -> f64 {
    let mut z =
        seed ^ (sweep.wrapping_mul(0x9E3779B97F4A7C15)) ^ (v.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_data::tpch;

    #[test]
    fn q1_totals_match_row_count() {
        let rows = tpch::gen_lineitems(5000, 1);
        let cols = tpch::to_columns(&rows);
        let out = q1(&cols);
        let total: i64 = out.iter().map(|r| r.count).sum();
        let expect = rows
            .iter()
            .filter(|r| r.ship_date <= Q1_SHIP_CUTOFF)
            .count() as i64;
        assert_eq!(total, expect);
        for r in &out {
            assert!(r.sum_disc_price <= r.sum_base_price);
            assert!(r.sum_charge >= r.sum_disc_price);
        }
    }

    #[test]
    fn gene_stats_count_everything() {
        let reads = dmll_data::gene::gen_reads(3000, 40, 10, 2);
        let cols = dmll_data::gene::to_columns(&reads);
        let (counts, mean_q) = gene_barcode_stats(&cols.barcode, &cols.quality, 40);
        assert_eq!(counts.iter().sum::<i64>(), 3000);
        for (c, q) in counts.iter().zip(&mean_q) {
            if *c > 0 {
                assert!((10.0..=60.0).contains(q));
            }
        }
    }

    #[test]
    fn gda_recovers_class_means() {
        // Two well-separated classes.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            if i % 2 == 0 {
                data.extend([0.0, 0.0]);
                y.push(0.0);
            } else {
                data.extend([10.0, -10.0]);
                y.push(1.0);
            }
        }
        let x = DenseMatrix {
            data,
            rows: 100,
            cols: 2,
        };
        let m = gda(&x, &y);
        assert!((m.phi - 0.5).abs() < 1e-12);
        assert_eq!(m.mu0, vec![0.0, 0.0]);
        assert_eq!(m.mu1, vec![10.0, -10.0]);
        // Zero within-class variance here.
        assert!(m.sigma.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn kmeans_converges_to_true_centroids() {
        let (x, cents, truth) = dmll_data::matrix::gaussian_clusters(400, 3, 3, 0.1, 5);
        let (new_cents, assigned) = kmeans_iter(&x, &cents);
        // Starting at the true centroids, assignment matches ground truth.
        assert_eq!(assigned, truth);
        // New centroids stay near the true ones.
        for c in 0..3 {
            for j in 0..3 {
                assert!((new_cents.get(c, j) - cents.get(c, j)).abs() < 0.5);
            }
        }
    }

    #[test]
    fn logreg_improves_likelihood() {
        let (x, y) = dmll_data::matrix::labeled_binary(300, 4, 8);
        let theta0 = vec![0.0; 4];
        let nll = |theta: &[f64]| -> f64 {
            (0..x.rows)
                .map(|i| {
                    let dot: f64 = (0..4).map(|j| x.get(i, j) * theta[j]).sum();
                    let h: f64 = 1.0 / (1.0 + (-dot).exp());
                    let h = h.clamp(1e-9, 1.0 - 1e-9);
                    -(y[i] * h.ln() + (1.0 - y[i]) * (1.0 - h).ln())
                })
                .sum()
        };
        let mut theta = theta0.clone();
        for _ in 0..20 {
            theta = logreg_iter(&x, &y, &theta, 0.05);
        }
        assert!(
            nll(&theta) < nll(&theta0) * 0.9,
            "{} vs {}",
            nll(&theta),
            nll(&theta0)
        );
    }

    #[test]
    fn pagerank_preserves_mass() {
        let g = dmll_data::graph::rmat(8, 6, 3);
        let rev = g.reversed();
        let n = g.num_vertices();
        let mut ranks = vec![1.0 / n as f64; n];
        for _ in 0..5 {
            ranks = pagerank_iter(&g, &rev, &ranks, 0.85);
        }
        let mass: f64 = ranks.iter().sum();
        // Dangling nodes leak a bit of mass; it stays bounded.
        assert!(mass > 0.5 && mass <= 1.0 + 1e-9, "{mass}");
        assert!(ranks.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn triangle_count_on_known_graph() {
        // K4 has 4 triangles.
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let g = CsrGraph::from_edges(4, &edges).symmetrized();
        assert_eq!(triangles(&g), 4);
        // A square (no diagonals) has none.
        let sq = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).symmetrized();
        assert_eq!(triangles(&sq), 0);
    }

    #[test]
    fn gibbs_respects_strong_bias() {
        let fg = FactorGraph {
            bias: vec![5.0, -5.0],
            factors: vec![],
            adj_offsets: vec![0, 0, 0],
            adj: vec![],
        };
        let mut asg = vec![-1i8, 1];
        let mut ones = [0i32; 2];
        for sweep in 0..200 {
            gibbs_sweep(&fg, &mut asg, sweep, 7);
            for v in 0..2 {
                if asg[v] == 1 {
                    ones[v] += 1;
                }
            }
        }
        assert!(ones[0] > 190, "{ones:?}");
        assert!(ones[1] < 10, "{ones:?}");
    }

    #[test]
    fn hash_unit_is_uniform_ish() {
        let samples: Vec<f64> = (0..10_000).map(|i| hash_unit(1, 2, i)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
        assert!(samples.iter().all(|u| (0.0..1.0).contains(u)));
    }
}
