//! A PowerGraph-like vertex-centric execution model.
//!
//! PowerGraph executes gather/apply/scatter over a vertex-cut partitioning:
//! efficient C++ but with library indirection on every edge, mirror-vertex
//! synchronization over the network on clusters, and locality-oblivious
//! allocation on big NUMA machines. Both systems "push the required data to
//! local nodes and then perform the computation locally" (§6.2), so the
//! network component is comparable to DMLL's and the difference is in
//! generated-code quality.

use dmll_runtime::{ClusterSpec, SimBreakdown};

/// Graph-workload statistics consumed by the graph-system models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphWorkload {
    /// Vertices.
    pub vertices: f64,
    /// Directed edges.
    pub edges: f64,
    /// Arithmetic per edge (flops).
    pub flops_per_edge: f64,
    /// Bytes touched per edge (source data + accumulator).
    pub bytes_per_edge: f64,
    /// Bytes of per-vertex state.
    pub vertex_state_bytes: f64,
    /// Iterations (supersteps).
    pub iterations: f64,
}

/// Tunable overheads of the PowerGraph-like engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerGraphModel {
    /// Multiplier on per-edge arithmetic (virtual gather/apply/scatter
    /// dispatch, generic vertex-program plumbing).
    pub library_compute_factor: f64,
    /// Multiplier on memory traffic (adjacency indirection).
    pub indirection_bytes_factor: f64,
    /// Bytes exchanged per replicated (mirror) vertex per superstep.
    pub mirror_sync_bytes: f64,
    /// Average replication factor of the vertex cut.
    pub replication_factor: f64,
}

impl Default for PowerGraphModel {
    fn default() -> Self {
        PowerGraphModel {
            library_compute_factor: 2.5,
            indirection_bytes_factor: 2.0,
            mirror_sync_bytes: 16.0,
            replication_factor: 5.0,
        }
    }
}

impl PowerGraphModel {
    /// Simulate `iterations` supersteps of a graph workload over all cores.
    pub fn simulate(&self, w: &GraphWorkload, cluster: &ClusterSpec) -> SimBreakdown {
        self.simulate_with_cores(w, cluster, None)
    }

    /// Simulate with an explicit per-node core count (Figure 7 scaling).
    pub fn simulate_with_cores(
        &self,
        w: &GraphWorkload,
        cluster: &ClusterSpec,
        cores_per_node: Option<usize>,
    ) -> SimBreakdown {
        let spec = cluster.node;
        let nodes = cluster.nodes.max(1) as f64;
        let cores = cores_per_node
            .unwrap_or(spec.total_cores())
            .clamp(1, spec.total_cores()) as f64
            * nodes;
        let flops = w.edges * w.flops_per_edge * self.library_compute_factor * w.iterations;
        let bytes = w.edges * w.bytes_per_edge * self.indirection_bytes_factor * w.iterations;
        // Locality-oblivious allocation: near one socket of bandwidth/node.
        let bw = (spec.socket_mem_bw * 1.3).min(cores / nodes * spec.core_mem_bw) * nodes;
        let compute = flops / (cores * spec.core_flops);
        let memory = bytes / bw;
        let mut out = SimBreakdown::default();
        let t = compute.max(memory);
        if compute >= memory {
            out.compute = t;
        } else {
            out.memory = t;
        }
        if cluster.nodes > 1 {
            // Mirror synchronization each superstep.
            let sync = w.vertices * self.replication_factor * self.mirror_sync_bytes * w.iterations
                / (cluster.network_bw * nodes);
            out.network = sync + cluster.network_latency * 4.0 * w.iterations;
        }
        out
    }
}

/// The same workload executed by DMLL's generated code on the graph DSL
/// (OptiGraph): full native code quality, NUMA-aware placement, remote
/// portions of the graph fetched through distributed-array reads.
pub fn dmll_graph_time(
    w: &GraphWorkload,
    cluster: &ClusterSpec,
    cores: usize,
    numa_aware: bool,
) -> SimBreakdown {
    let spec = cluster.node;
    let nodes = cluster.nodes.max(1) as f64;
    let cores = cores.clamp(1, spec.total_cores());
    let sockets = spec.sockets_for_cores(cores);
    let flops = w.edges * w.flops_per_edge * w.iterations;
    let bytes = w.edges * w.bytes_per_edge * w.iterations;
    let bw_local = if numa_aware {
        spec.aggregate_bw(sockets)
    } else {
        spec.socket_mem_bw
    }
    .min(cores as f64 * spec.core_mem_bw)
        * nodes;
    // Graph access is partially random: effective bandwidth discount, plus
    // inter-socket traffic for the non-local fraction of neighbors.
    let random_discount = 0.45;
    let compute = flops / (cores as f64 * nodes * spec.core_flops);
    let mut memory = bytes / (bw_local * random_discount);
    if sockets > 1 {
        let cross = (sockets - 1) as f64 / sockets as f64;
        memory += bytes * cross * 0.3 / (spec.interconnect_bw * sockets as f64);
    }
    let mut out = SimBreakdown::default();
    let t = compute.max(memory);
    if compute >= memory {
        out.compute = t;
    } else {
        out.memory = t;
    }
    if cluster.nodes > 1 {
        // Same high-level model: push data to local caches each superstep;
        // the transfer volume is comparable to PowerGraph's mirror sync.
        let sync =
            w.vertices * w.vertex_state_bytes * w.iterations * 6.0 / (cluster.network_bw * nodes);
        out.network = sync + cluster.network_latency * 4.0 * w.iterations;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_runtime::MachineSpec;

    fn pagerank_workload() -> GraphWorkload {
        GraphWorkload {
            vertices: 4.8e6,
            edges: 69e6,
            flops_per_edge: 3.0,
            bytes_per_edge: 24.0,
            vertex_state_bytes: 8.0,
            iterations: 1.0,
        }
    }

    #[test]
    fn dmll_beats_powergraph_in_shared_memory() {
        // §6.2: "in a NUMA machine … the efficiency of the generated code
        // has a large impact" — the paper reports up to 11x.
        let m = ClusterSpec::single(MachineSpec::numa_4x12());
        let w = pagerank_workload();
        let pg = PowerGraphModel::default().simulate(&w, &m).total();
        let dm = dmll_graph_time(&w, &m, 48, true).total();
        let ratio = pg / dm;
        assert!((2.0..20.0).contains(&ratio), "{ratio:.1}x");
    }

    #[test]
    fn cluster_times_are_communication_dominated() {
        // §6.2: on the 4-node cluster "most of the execution time is spent
        // transferring the graph over the network", so the two systems end
        // up comparable.
        let c = ClusterSpec::gpu_4();
        let w = pagerank_workload();
        let pg = PowerGraphModel::default().simulate(&w, &c);
        let dm = dmll_graph_time(&w, &c, 12, true);
        assert!(pg.network > pg.compute + pg.memory, "{pg:?}");
        let ratio = pg.total() / dm.total();
        assert!(
            (0.5..3.0).contains(&ratio),
            "comparable overall: {ratio:.2}"
        );
    }

    #[test]
    fn single_numa_machine_beats_the_cluster() {
        // The paper's observation: for graph analytics, one big-memory NUMA
        // machine outperforms the small cluster.
        let numa = ClusterSpec::single(MachineSpec::numa_4x12());
        let c = ClusterSpec::gpu_4();
        let w = pagerank_workload();
        let on_numa = dmll_graph_time(&w, &numa, 48, true).total();
        let on_cluster = dmll_graph_time(&w, &c, 12, true).total();
        assert!(on_numa < on_cluster, "{on_numa} vs {on_cluster}");
    }
}
