#![warn(missing_docs)]

//! # Baselines
//!
//! Everything DMLL is compared against in §6:
//!
//! * [`handopt`] — hand-optimized native Rust implementations of every
//!   benchmark (the "C++" column of Table 2). These double as the
//!   correctness oracles for the DMLL-staged applications.
//! * [`spark`] — a Spark-like execution model: per-stage task overheads,
//!   JVM boxing/GC factors, serialization between stages, shuffles over the
//!   network, and no NUMA-aware allocation (the JVM cannot pin memory
//!   regions, §6.1).
//! * [`powergraph`] — a PowerGraph-like vertex-centric model:
//!   gather/apply/scatter with per-edge messages, efficient C++ library but
//!   indirection-heavy data structures.
//! * [`delite`] — the shared-memory Delite runtime without the DMLL
//!   additions (re-exported from the runtime's cost model).
//! * [`dimmwitted`] — the DimmWitted-style Gibbs sampler model with
//!   pointer-chasing factor-graph storage.
//! * [`features`] — the programming-model feature matrix of Table 1.

pub mod dimmwitted;
pub mod features;
pub mod handopt;
pub mod powergraph;
pub mod spark;

/// The Delite baseline is DMLL's cost model with locality-oblivious
/// allocation and scheduling; see
/// [`dmll_runtime::ExecMode::DeliteShared`].
pub mod delite {
    pub use dmll_runtime::ExecMode;
}
