//! A DimmWitted-style Gibbs sampling model (§6.3).
//!
//! DimmWitted samples factor graphs with per-socket model replicas and
//! Hogwild! updates within each socket. Its hand-written implementation
//! stores the factor graph with "more pointer indirections … for the sake
//! of user-friendly abstractions", which is where DMLL's 2–3× advantage
//! comes from (unwrapped arrays of primitives).

use dmll_runtime::{ClusterSpec, SimBreakdown};

/// Gibbs workload statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GibbsWorkload {
    /// Variables in the factor graph.
    pub variables: f64,
    /// Average factors per variable.
    pub factors_per_var: f64,
    /// Full sweeps over the variables.
    pub sweeps: f64,
}

impl GibbsWorkload {
    fn flops(&self) -> f64 {
        // Per variable: gather factor weights, logistic, update.
        self.variables * self.sweeps * (self.factors_per_var * 4.0 + 20.0)
    }

    fn bytes(&self) -> f64 {
        // Factor weights + neighbor states per variable.
        self.variables * self.sweeps * (self.factors_per_var * 24.0 + 16.0)
    }
}

/// Time for the DimmWitted implementation: per-socket replicas (near-linear
/// socket scaling) but pointer-heavy storage.
pub fn dimmwitted_time(w: &GibbsWorkload, cluster: &ClusterSpec, cores: usize) -> SimBreakdown {
    gibbs_time_impl(w, cluster, cores, 2.4, 2.2)
}

/// Time for DMLL's generated implementation: the same per-socket-replica /
/// Hogwild-within-socket strategy (nested parallelism), but unwrapped
/// arrays of primitives.
pub fn dmll_gibbs_time(w: &GibbsWorkload, cluster: &ClusterSpec, cores: usize) -> SimBreakdown {
    gibbs_time_impl(w, cluster, cores, 1.0, 1.0)
}

/// GPU execution of the sampler: "limited by the random memory accesses
/// into the factor graph, which greatly reduces the achievable bandwidth".
pub fn dmll_gibbs_gpu_time(w: &GibbsWorkload, cluster: &ClusterSpec) -> SimBreakdown {
    let gpu = cluster.node.gpu.expect("GPU node required");
    let flops = w.flops();
    let bytes = w.bytes();
    // Random gathers: a small fraction of peak bandwidth is achievable.
    let bw = gpu.mem_bw * 0.06;
    let compute = flops / (gpu.flops * 0.3);
    let memory = bytes / bw;
    let mut out = SimBreakdown::default();
    if compute >= memory {
        out.compute = compute;
    } else {
        out.memory = memory;
    }
    out.pcie = bytes / w.sweeps.max(1.0) / gpu.pcie_bw;
    out.overhead = gpu.launch_overhead * w.sweeps;
    out
}

fn gibbs_time_impl(
    w: &GibbsWorkload,
    cluster: &ClusterSpec,
    cores: usize,
    compute_factor: f64,
    bytes_factor: f64,
) -> SimBreakdown {
    let spec = cluster.node;
    let cores = cores.clamp(1, spec.total_cores());
    let sockets = spec.sockets_for_cores(cores);
    let flops = w.flops() * compute_factor;
    let bytes = w.bytes() * bytes_factor;
    // Per-socket replicas: each socket works out of its own memory, so both
    // systems scale across sockets; random access discounts bandwidth.
    let bw = (spec.aggregate_bw(sockets) * 0.5).min(cores as f64 * spec.core_mem_bw);
    let compute = flops / (cores as f64 * spec.core_flops);
    let memory = bytes / bw;
    // Exchanging the per-socket models' variable states at the end of each
    // sweep (one byte per boolean variable).
    let combine =
        w.variables * 1.0 * (sockets as f64 - 1.0).max(0.0) * w.sweeps / spec.interconnect_bw;
    let mut out = SimBreakdown::default();
    if compute >= memory {
        out.compute = compute;
    } else {
        out.memory = memory;
    }
    out.network = combine;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_runtime::MachineSpec;

    fn workload() -> GibbsWorkload {
        GibbsWorkload {
            variables: 1e7,
            factors_per_var: 10.0,
            sweeps: 1.0,
        }
    }

    fn numa() -> ClusterSpec {
        ClusterSpec::single(MachineSpec::numa_4x12())
    }

    #[test]
    fn dmll_2_to_3x_faster_than_dimmwitted() {
        // §6.3: "over 2x faster sequentially and 3x faster with multi-core".
        let w = workload();
        let seq = dimmwitted_time(&w, &numa(), 1).total() / dmll_gibbs_time(&w, &numa(), 1).total();
        let par =
            dimmwitted_time(&w, &numa(), 48).total() / dmll_gibbs_time(&w, &numa(), 48).total();
        assert!((1.8..3.5).contains(&seq), "sequential ratio {seq:.2}");
        assert!((1.8..4.0).contains(&par), "parallel ratio {par:.2}");
    }

    #[test]
    fn both_scale_across_sockets() {
        // Fig. 8 right: near-linear scaling for both systems.
        let w = workload();
        for time_fn in [dimmwitted_time, dmll_gibbs_time] {
            let t12 = time_fn(&w, &numa(), 12).total();
            let t48 = time_fn(&w, &numa(), 48).total();
            let scaling = t12 / t48;
            assert!(scaling > 2.2, "4 sockets give {scaling:.1}x over 1");
        }
    }

    #[test]
    fn gpu_limited_by_random_access() {
        let w = workload();
        let gpu = dmll_gibbs_gpu_time(&w, &ClusterSpec::gpu_4()).total();
        let cpu48 = dmll_gibbs_time(&w, &numa(), 48).total();
        assert!(
            gpu > cpu48,
            "random factor-graph access keeps the GPU below 48 CPU cores: {gpu} vs {cpu48}"
        );
    }
}
