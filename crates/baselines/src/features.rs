//! The programming-model feature matrix of Table 1.

/// Programming-model features compared in Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feature {
    /// Rich data parallelism beyond map/reduce.
    RichDataParallelism,
    /// Nested programming (parallel constructs may nest logically).
    NestedProgramming,
    /// Nested parallelism actually exploited at runtime.
    NestedParallelism,
    /// Operations over multiple collections at once.
    MultipleCollections,
    /// Arbitrary random reads of parallel collections.
    RandomReads,
}

/// Hardware targets compared in Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hardware {
    /// Basic multi-core.
    MultiCore,
    /// NUMA-aware big-memory machines.
    Numa,
    /// Distributed clusters.
    Clusters,
    /// GPUs.
    Gpus,
}

/// A row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemRow {
    /// System name.
    pub name: &'static str,
    /// Supported programming-model features.
    pub features: &'static [Feature],
    /// Supported hardware targets.
    pub hardware: &'static [Hardware],
}

use Feature::*;
use Hardware::*;

/// Table 1, in the paper's chronological order.
pub fn table1() -> Vec<SystemRow> {
    vec![
        SystemRow {
            name: "MapReduce",
            features: &[],
            hardware: &[Clusters],
        },
        SystemRow {
            name: "DryadLINQ",
            features: &[RichDataParallelism, NestedProgramming],
            hardware: &[Clusters],
        },
        SystemRow {
            name: "Thrust",
            features: &[RichDataParallelism],
            hardware: &[Gpus],
        },
        SystemRow {
            name: "Scala Collections",
            features: &[
                RichDataParallelism,
                NestedProgramming,
                NestedParallelism,
                MultipleCollections,
                RandomReads,
            ],
            hardware: &[MultiCore],
        },
        SystemRow {
            name: "Delite",
            features: &[
                RichDataParallelism,
                NestedProgramming,
                MultipleCollections,
                RandomReads,
            ],
            hardware: &[MultiCore, Gpus],
        },
        SystemRow {
            name: "Spark",
            features: &[RichDataParallelism, NestedProgramming],
            hardware: &[Clusters],
        },
        SystemRow {
            name: "Lime",
            features: &[NestedProgramming, NestedParallelism, RandomReads],
            hardware: &[MultiCore, Clusters, Gpus],
        },
        SystemRow {
            name: "PowerGraph",
            features: &[RandomReads],
            hardware: &[MultiCore, Clusters],
        },
        SystemRow {
            name: "Dandelion",
            features: &[RichDataParallelism, NestedProgramming, MultipleCollections],
            hardware: &[MultiCore, Clusters, Gpus],
        },
        SystemRow {
            name: "DMLL",
            features: &[
                RichDataParallelism,
                NestedProgramming,
                NestedParallelism,
                MultipleCollections,
                RandomReads,
            ],
            hardware: &[MultiCore, Numa, Clusters, Gpus],
        },
    ]
}

/// Render the matrix as fixed-width text (for the `table1` harness binary).
pub fn render() -> String {
    let features = [
        ("Rich data par.", RichDataParallelism),
        ("Nested prog.", NestedProgramming),
        ("Nested par.", NestedParallelism),
        ("Multi colls", MultipleCollections),
        ("Random reads", RandomReads),
    ];
    let hardware = [
        ("Multi-core", MultiCore),
        ("NUMA", Numa),
        ("Clusters", Clusters),
        ("GPUs", Gpus),
    ];
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "System"));
    let labels = features
        .iter()
        .map(|(l, _)| *l)
        .chain(hardware.iter().map(|(l, _)| *l));
    for label in labels {
        out.push_str(&format!("{label:<16}"));
    }
    out.push('\n');
    for row in table1() {
        out.push_str(&format!("{:<18}", row.name));
        for (_, f) in &features {
            out.push_str(&format!(
                "{:<16}",
                if row.features.contains(f) { "●" } else { "" }
            ));
        }
        for (_, h) in &hardware {
            out.push_str(&format!(
                "{:<16}",
                if row.hardware.contains(h) { "●" } else { "" }
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dmll_is_feature_and_hardware_complete() {
        let rows = table1();
        let dmll = rows.iter().find(|r| r.name == "DMLL").unwrap();
        assert_eq!(dmll.features.len(), 5);
        assert_eq!(dmll.hardware.len(), 4);
        // No other system covers all hardware targets.
        for r in &rows {
            if r.name != "DMLL" {
                assert!(r.hardware.len() < 4, "{}", r.name);
                assert!(
                    !r.hardware.contains(&Numa),
                    "{}: only DMLL does NUMA",
                    r.name
                );
            }
        }
    }

    #[test]
    fn ten_systems_in_order() {
        let rows = table1();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].name, "MapReduce");
        assert_eq!(rows.last().unwrap().name, "DMLL");
    }

    #[test]
    fn render_contains_all_systems() {
        let s = render();
        for r in table1() {
            assert!(s.contains(r.name), "{s}");
        }
    }
}
