//! A Spark-like execution model.
//!
//! Spark runs the same logical plan but pays, relative to generated native
//! code (§6): JVM boxing/virtual-dispatch overhead on every element,
//! garbage-created intermediate objects (extra memory traffic), per-stage
//! task scheduling overhead, serialization at stage boundaries and shuffles,
//! and — on big NUMA machines — no way to perform NUMA-aware allocation
//! from the JVM, capping achievable bandwidth near a single socket.

use dmll_runtime::{ClusterSpec, LoopProfile, SimBreakdown};

/// Tunable overheads of the Spark-like system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SparkModel {
    /// Multiplier on arithmetic (boxing, megamorphic dispatch, JIT limits).
    pub jvm_compute_factor: f64,
    /// Multiplier on memory traffic (object headers, pointer chasing, GC).
    pub boxing_bytes_factor: f64,
    /// Seconds of scheduling overhead per stage wave.
    pub task_overhead: f64,
    /// Per-core serialization throughput (bytes/s) at stage boundaries.
    pub ser_bw: f64,
    /// Fraction of a single socket's bandwidth the JVM can exploit.
    pub numa_bw_fraction: f64,
}

impl Default for SparkModel {
    fn default() -> Self {
        SparkModel {
            jvm_compute_factor: 6.0,
            boxing_bytes_factor: 3.0,
            task_overhead: 0.08,
            ser_bw: 250e6,
            numa_bw_fraction: 1.2,
        }
    }
}

impl SparkModel {
    /// Simulate the loop list as a sequence of Spark stages over `cores`
    /// per node (all cores by default).
    pub fn simulate(
        &self,
        profiles: &[LoopProfile],
        cluster: &ClusterSpec,
        cores: Option<usize>,
    ) -> SimBreakdown {
        let spec = cluster.node;
        let nodes = cluster.nodes.max(1);
        let cores = cores
            .unwrap_or(spec.total_cores())
            .clamp(1, spec.total_cores());
        let total_cores = (cores * nodes) as f64;
        // JVM bandwidth cap: no NUMA placement, bounded by one socket-ish.
        let bw_node =
            (spec.socket_mem_bw * self.numa_bw_fraction).min(cores as f64 * spec.core_mem_bw);
        let mut out = SimBreakdown::default();
        for p in profiles {
            let flops = p.total_flops() * self.jvm_compute_factor;
            let bytes = p.total_bytes() * self.boxing_bytes_factor;
            let compute = flops / (total_cores * spec.core_flops);
            let memory = bytes / (bw_node * nodes as f64);
            let t = compute.max(memory);
            if compute >= memory {
                out.compute += t;
            } else {
                out.memory += t;
            }
            // Stage boundary: serialize the stage output (and shuffle it
            // over the network for bucket/grouping stages on a cluster).
            let stage_out = p.iterations * p.output_bytes_per_iter + p.combine_bytes;
            out.overhead += self.task_overhead;
            out.overhead += stage_out / (self.ser_bw * total_cores);
            if nodes > 1 {
                let net = if p.is_bucket {
                    // Shuffle: all grouped bytes cross the network once.
                    stage_out / (cluster.network_bw * nodes as f64)
                } else {
                    p.combine_bytes / cluster.network_bw
                };
                out.network += net
                    + p.broadcast_bytes / cluster.network_bw
                    + cluster.network_latency * 2.0 * (nodes as f64).log2().max(1.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_runtime::{simulate_loops, ExecMode, MachineSpec};

    fn stream_profile() -> LoopProfile {
        LoopProfile {
            iterations: 10_000_000.0,
            flops_per_iter: 10.0,
            stream_bytes_per_iter: 48.0,
            local_bytes_per_iter: 16.0,
            output_bytes_per_iter: 8.0,
            combine_bytes: 1024.0,
            partitioned: true,
            ..Default::default()
        }
    }

    #[test]
    fn spark_much_slower_than_dmll_on_numa() {
        let cluster = ClusterSpec::single(MachineSpec::numa_4x12());
        let p = [stream_profile()];
        let spark = SparkModel::default().simulate(&p, &cluster, None).total();
        let dmll = simulate_loops(&p, &cluster, &ExecMode::DmllNumaAware { cores: 48 }).total();
        let ratio = spark / dmll;
        assert!(
            ratio > 5.0,
            "paper reports up to 40x on the NUMA box; model gives {ratio:.1}x"
        );
    }

    #[test]
    fn gap_shrinks_on_weak_cluster_nodes() {
        // §6.2: on m1.xlarge nodes the difference is much smaller because
        // each machine has few resources and both systems distribute alike.
        let amazon = ClusterSpec::amazon_20();
        let numa = ClusterSpec::single(MachineSpec::numa_4x12());
        let p = [stream_profile()];
        let spark_amazon = SparkModel::default().simulate(&p, &amazon, None).total();
        let dmll_amazon = simulate_loops(&p, &amazon, &ExecMode::Cluster).total();
        let spark_numa = SparkModel::default().simulate(&p, &numa, None).total();
        let dmll_numa = simulate_loops(&p, &numa, &ExecMode::DmllNumaAware { cores: 48 }).total();
        let ratio_amazon = spark_amazon / dmll_amazon;
        let ratio_numa = spark_numa / dmll_numa;
        assert!(
            ratio_amazon < ratio_numa,
            "cluster gap {ratio_amazon:.1}x should be below NUMA gap {ratio_numa:.1}x"
        );
    }

    #[test]
    fn shuffle_charged_for_grouping_stages() {
        let amazon = ClusterSpec::amazon_20();
        let mut p = stream_profile();
        p.is_bucket = true;
        p.output_bytes_per_iter = 64.0;
        let with_shuffle = SparkModel::default().simulate(&[p.clone()], &amazon, None);
        p.is_bucket = false;
        let without = SparkModel::default().simulate(&[p], &amazon, None);
        assert!(with_shuffle.network > without.network * 2.0);
    }

    #[test]
    fn per_stage_overhead_accumulates() {
        let cluster = ClusterSpec::single(MachineSpec::numa_4x12());
        let p = stream_profile();
        let one = SparkModel::default().simulate(std::slice::from_ref(&p), &cluster, None);
        let three = SparkModel::default().simulate(&[p.clone(), p.clone(), p], &cluster, None);
        assert!(three.overhead > one.overhead * 2.5);
    }
}
