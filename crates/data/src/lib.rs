#![warn(missing_docs)]

//! # Synthetic dataset generators
//!
//! Deterministic (seeded) stand-ins for the paper's datasets:
//!
//! | Paper dataset | Generator |
//! |---|---|
//! | TPC-H SF5 lineitem (5.3 GB) | [`tpch::gen_lineitems`] — same schema & key skew, scaled down |
//! | LiveJournal social graph (1.1 GB) | [`graph::rmat`] — R-MAT with LiveJournal-like skew |
//! | 500k × 100 dense matrices (835 MB) | [`matrix`] — Gaussian clusters / labeled classes |
//! | 3.5M gene reads (689 MB) | [`gene::gen_reads`] — barcoded reads over gene ids |
//! | DeepDive factor graphs | [`factor::gen_factor_graph`] — pairwise factors |
//!
//! Every generator takes an explicit seed so experiments are reproducible.

pub mod factor;
pub mod gene;
pub mod graph;
pub mod matrix;
pub mod tpch;

pub use factor::{FactorGraph, PairFactor};
pub use gene::Read;
pub use graph::CsrGraph;
pub use tpch::LineItem;
