//! TPC-H lineitem generator (the Query 1 input).

use rand::prelude::*;

/// One `lineitem` row, restricted to the Query 1 columns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineItem {
    /// `l_quantity`.
    pub quantity: f64,
    /// `l_extendedprice`.
    pub extended_price: f64,
    /// `l_discount` (0.0–0.1).
    pub discount: f64,
    /// `l_tax` (0.0–0.08).
    pub tax: f64,
    /// `l_returnflag` encoded as 0 = 'A', 1 = 'N', 2 = 'R'.
    pub return_flag: i64,
    /// `l_linestatus` encoded as 0 = 'F', 1 = 'O'.
    pub line_status: i64,
    /// `l_shipdate` as days since epoch (TPC-H range 1992-01-02..1998-12-01).
    pub ship_date: i64,
}

/// Days-since-epoch bound used by Query 1's `shipdate <= date '1998-12-01' -
/// interval '90' day` predicate.
pub const Q1_SHIP_CUTOFF: i64 = 10_490;

/// Generate `n` lineitem rows with TPC-H-like value distributions
/// (quantity 1–50, realistic flag/status correlation with ship dates).
pub fn gen_lineitems(n: usize, seed: u64) -> Vec<LineItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let ship_date = rng.gen_range(8_035..10_560); // 1992..1998-12
            let returned = rng.gen_bool(0.25);
            // Older shipments are final, newer ones open (as in TPC-H).
            let line_status = i64::from(ship_date > 9_400 && !returned);
            let return_flag = if returned {
                if rng.gen_bool(0.5) {
                    0 // 'A'
                } else {
                    2 // 'R'
                }
            } else {
                1 // 'N'
            };
            LineItem {
                quantity: rng.gen_range(1..=50) as f64,
                extended_price: rng.gen_range(900.0..105_000.0),
                discount: rng.gen_range(0..=10) as f64 / 100.0,
                tax: rng.gen_range(0..=8) as f64 / 100.0,
                return_flag,
                line_status,
                ship_date,
            }
        })
        .collect()
}

/// Column-wise (struct-of-arrays) view of a lineitem table, the layout the
/// AoS→SoA pass produces and the interpreter consumes.
#[derive(Clone, Debug, Default)]
pub struct LineItemColumns {
    /// Quantities.
    pub quantity: Vec<f64>,
    /// Extended prices.
    pub extended_price: Vec<f64>,
    /// Discounts.
    pub discount: Vec<f64>,
    /// Taxes.
    pub tax: Vec<f64>,
    /// Return flags.
    pub return_flag: Vec<i64>,
    /// Line statuses.
    pub line_status: Vec<i64>,
    /// Ship dates.
    pub ship_date: Vec<i64>,
}

/// Split rows into columns.
pub fn to_columns(rows: &[LineItem]) -> LineItemColumns {
    let mut c = LineItemColumns::default();
    for r in rows {
        c.quantity.push(r.quantity);
        c.extended_price.push(r.extended_price);
        c.discount.push(r.discount);
        c.tax.push(r.tax);
        c.return_flag.push(r.return_flag);
        c.line_status.push(r.line_status);
        c.ship_date.push(r.ship_date);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = gen_lineitems(1000, 42);
        let b = gen_lineitems(1000, 42);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = gen_lineitems(1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn value_ranges() {
        for li in gen_lineitems(2000, 1) {
            assert!((1.0..=50.0).contains(&li.quantity));
            assert!((0.0..=0.1).contains(&li.discount));
            assert!((0.0..=0.08).contains(&li.tax));
            assert!((0..=2).contains(&li.return_flag));
            assert!((0..=1).contains(&li.line_status));
        }
    }

    #[test]
    fn q1_groups_all_present() {
        // The classic four (flag, status) groups of Query 1 all occur.
        let rows = gen_lineitems(20_000, 7);
        let mut seen = std::collections::BTreeSet::new();
        for r in &rows {
            if r.ship_date <= Q1_SHIP_CUTOFF {
                seen.insert((r.return_flag, r.line_status));
            }
        }
        assert!(seen.len() >= 4, "{seen:?}");
    }

    #[test]
    fn columns_align() {
        let rows = gen_lineitems(100, 9);
        let cols = to_columns(&rows);
        assert_eq!(cols.quantity.len(), 100);
        assert_eq!(cols.quantity[17], rows[17].quantity);
        assert_eq!(cols.return_flag[55], rows[55].return_flag);
    }
}
