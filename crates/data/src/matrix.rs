//! Dense matrix generators for the machine-learning benchmarks.

use rand::prelude::*;

/// A row-major dense matrix with its shape.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    /// Row-major data of length `rows * cols`.
    pub data: Vec<f64>,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
}

impl DenseMatrix {
    /// Element `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// Uniform random matrix in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix {
        data: (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect(),
        rows,
        cols,
    }
}

/// Rows drawn from `k` Gaussian clusters (the k-means workload). Returns the
/// matrix, the true centroids (k × cols) and the true assignment per row.
pub fn gaussian_clusters(
    rows: usize,
    cols: usize,
    k: usize,
    spread: f64,
    seed: u64,
) -> (DenseMatrix, DenseMatrix, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<f64> = (0..k * cols).map(|_| rng.gen_range(-10.0..10.0)).collect();
    let mut data = Vec::with_capacity(rows * cols);
    let mut truth = Vec::with_capacity(rows);
    for _ in 0..rows {
        let c = rng.gen_range(0..k);
        truth.push(c as i64);
        for j in 0..cols {
            let noise: f64 = rng.sample::<f64, _>(rand::distributions::Standard) - 0.5;
            data.push(centroids[c * cols + j] + noise * 2.0 * spread);
        }
    }
    (
        DenseMatrix { data, rows, cols },
        DenseMatrix {
            data: centroids,
            rows: k,
            cols,
        },
        truth,
    )
}

/// A binary-labeled dataset with linearly separable-ish classes (logistic
/// regression / GDA workload). Returns `(x, y)` with `y ∈ {0.0, 1.0}`.
pub fn labeled_binary(rows: usize, cols: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut data = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut dot = 0.0;
        for wj in w.iter().take(cols) {
            let v: f64 = rng.gen_range(-1.0..1.0);
            data.push(v);
            dot += v * wj;
        }
        let noise: f64 = rng.gen_range(-0.3..0.3);
        y.push(f64::from(dot + noise > 0.0));
    }
    (DenseMatrix { data, rows, cols }, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_determinism() {
        let a = uniform(10, 5, -1.0, 1.0, 3);
        let b = uniform(10, 5, -1.0, 1.0, 3);
        assert_eq!(a, b);
        assert_eq!(a.data.len(), 50);
        assert!(a.data.iter().all(|v| (-1.0..1.0).contains(v)));
        assert_eq!(a.get(2, 3), a.data[2 * 5 + 3]);
        assert_eq!(a.row(1).len(), 5);
    }

    #[test]
    fn clusters_are_separable() {
        let (m, cents, truth) = gaussian_clusters(300, 4, 3, 0.2, 11);
        assert_eq!(m.rows, 300);
        assert_eq!(cents.rows, 3);
        // Each row is closest to its true centroid for tight spread.
        let mut correct = 0;
        for (i, &label) in truth.iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for c in 0..3 {
                let d: f64 = (0..4)
                    .map(|j| (m.get(i, j) - cents.get(c, j)).powi(2))
                    .sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 as i64 == label {
                correct += 1;
            }
        }
        assert!(correct > 290, "{correct}/300");
    }

    #[test]
    fn labels_correlate_with_features() {
        let (x, y) = labeled_binary(500, 6, 21);
        assert_eq!(x.rows, 500);
        assert_eq!(y.len(), 500);
        let ones = y.iter().filter(|v| **v == 1.0).count();
        assert!(ones > 100 && ones < 400, "balanced-ish: {ones}");
    }
}
