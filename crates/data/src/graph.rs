//! Graph generation (R-MAT) and the CSR structure used by PageRank and
//! Triangle Counting.

use rand::prelude::*;

/// A directed graph in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` with v's out-edges.
    pub offsets: Vec<i64>,
    /// Edge targets, sorted within each vertex.
    pub targets: Vec<i64>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[i64] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Build from an edge list (deduplicates and drops self-loops).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> CsrGraph {
        let mut adj: Vec<Vec<i64>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u != v && u < n && v < n {
                adj[u].push(v as i64);
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(list);
            offsets.push(targets.len() as i64);
        }
        CsrGraph { offsets, targets }
    }

    /// The reverse graph (in-edges become out-edges) — what the push↔pull
    /// transformation switches between.
    pub fn reversed(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges());
        for v in 0..n {
            for &t in self.neighbors(v) {
                edges.push((t as usize, v));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// Make the graph undirected (symmetrize), as Triangle Counting needs.
    pub fn symmetrized(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges() * 2);
        for v in 0..n {
            for &t in self.neighbors(v) {
                edges.push((v, t as usize));
                edges.push((t as usize, v));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }
}

/// R-MAT generator with LiveJournal-like skew
/// (`a=0.57, b=0.19, c=0.19, d=0.05`).
///
/// `scale` gives `2^scale` vertices; `edge_factor` edges per vertex.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        edges.push((u, v));
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 0), (0, 1), (3, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4, "dup and self-loop dropped");
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn reversal_inverts_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[1]);
        assert_eq!(r.reversed(), g, "double reversal is identity");
    }

    #[test]
    fn symmetrize() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let s = g.symmetrized();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0]);
    }

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let g1 = rmat(10, 8, 5);
        let g2 = rmat(10, 8, 5);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1024);
        assert!(g1.num_edges() > 4000, "{}", g1.num_edges());
        // Power-law-ish: the max degree dwarfs the average.
        let max_deg = (0..g1.num_vertices()).map(|v| g1.degree(v)).max().unwrap();
        let avg = g1.num_edges() as f64 / g1.num_vertices() as f64;
        assert!(max_deg as f64 > avg * 8.0, "max {max_deg} vs avg {avg:.1}");
    }
}
