//! Gene barcoding reads (the "Gene Barcoding" benchmark).
//!
//! The real workload groups millions of sequencer reads by molecular
//! barcode and reduces each group (consensus/counting). We generate reads
//! carrying a barcode and a gene id with realistic group-size skew.

use rand::prelude::*;

/// One sequencer read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Read {
    /// Molecular barcode.
    pub barcode: i64,
    /// Gene the read maps to.
    pub gene: i64,
    /// Base-call quality score (0–60).
    pub quality: i64,
}

/// Generate `n` reads over `barcodes` barcodes and `genes` genes with a
/// skewed (Zipf-ish) barcode distribution.
pub fn gen_reads(n: usize, barcodes: usize, genes: usize, seed: u64) -> Vec<Read> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Zipf via inverse-power sampling.
    let skew = 0.8f64;
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            let b = ((barcodes as f64) * u.powf(1.0 / (1.0 - skew))).min(barcodes as f64 - 1.0);
            Read {
                barcode: b as i64,
                gene: rng.gen_range(0..genes) as i64,
                quality: rng.gen_range(10..=60),
            }
        })
        .collect()
}

/// Column layout of a read set.
#[derive(Clone, Debug, Default)]
pub struct ReadColumns {
    /// Barcodes.
    pub barcode: Vec<i64>,
    /// Genes.
    pub gene: Vec<i64>,
    /// Qualities.
    pub quality: Vec<i64>,
}

/// Split reads into columns.
pub fn to_columns(reads: &[Read]) -> ReadColumns {
    let mut c = ReadColumns::default();
    for r in reads {
        c.barcode.push(r.barcode);
        c.gene.push(r.gene);
        c.quality.push(r.quality);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(gen_reads(500, 50, 20, 1), gen_reads(500, 50, 20, 1));
    }

    #[test]
    fn ranges_and_skew() {
        let reads = gen_reads(20_000, 100, 30, 2);
        assert!(reads.iter().all(|r| r.barcode < 100 && r.gene < 30));
        // Skew: the most popular barcode sees far more than the mean.
        let mut counts = vec![0usize; 100];
        for r in &reads {
            counts[r.barcode as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max > 3 * (20_000 / 100), "max group {max}");
    }

    #[test]
    fn columns_align() {
        let reads = gen_reads(64, 8, 4, 3);
        let cols = to_columns(&reads);
        assert_eq!(cols.barcode.len(), 64);
        assert_eq!(cols.gene[10], reads[10].gene);
    }
}
