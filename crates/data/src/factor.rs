//! Factor graphs for Gibbs sampling (§6.3, the DeepDive/DimmWitted
//! workload).
//!
//! We generate pairwise (Ising-style) factor graphs over boolean variables:
//! each factor connects two variables with a weight; the conditional
//! distribution of a variable given its neighbors is a logistic function of
//! the weighted sum — exactly the structure DimmWitted samples.

use rand::prelude::*;

/// A pairwise factor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairFactor {
    /// First variable.
    pub a: usize,
    /// Second variable.
    pub b: usize,
    /// Coupling weight.
    pub weight: f64,
}

/// A factor graph over boolean variables with per-variable bias and
/// pairwise factors, stored in CSR-like adjacency for fast sampling.
#[derive(Clone, Debug, PartialEq)]
pub struct FactorGraph {
    /// Per-variable bias weight.
    pub bias: Vec<f64>,
    /// Factors.
    pub factors: Vec<PairFactor>,
    /// `adj_offsets[v]..adj_offsets[v+1]` indexes `adj` with the factor ids
    /// touching v.
    pub adj_offsets: Vec<usize>,
    /// Factor indices per variable.
    pub adj: Vec<usize>,
}

impl FactorGraph {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.bias.len()
    }

    /// Factor ids touching `v`.
    pub fn factors_of(&self, v: usize) -> &[usize] {
        &self.adj[self.adj_offsets[v]..self.adj_offsets[v + 1]]
    }

    /// The weighted sum a variable sees from its neighbors under the given
    /// assignment (the Gibbs conditional's logit).
    pub fn local_field(&self, v: usize, assignment: &[i8]) -> f64 {
        let mut field = self.bias[v];
        for &f in self.factors_of(v) {
            let fac = self.factors[f];
            let other = if fac.a == v { fac.b } else { fac.a };
            field += fac.weight * f64::from(assignment[other]);
        }
        field
    }
}

/// Generate a random factor graph with `vars` variables and
/// `factors_per_var` pairwise factors per variable on average.
pub fn gen_factor_graph(vars: usize, factors_per_var: usize, seed: u64) -> FactorGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let bias: Vec<f64> = (0..vars).map(|_| rng.gen_range(-0.5..0.5)).collect();
    let nf = vars * factors_per_var / 2;
    let factors: Vec<PairFactor> = (0..nf)
        .map(|_| {
            let a = rng.gen_range(0..vars);
            let mut b = rng.gen_range(0..vars);
            if b == a {
                b = (b + 1) % vars;
            }
            PairFactor {
                a,
                b,
                weight: rng.gen_range(-1.0..1.0),
            }
        })
        .collect();
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); vars];
    for (i, f) in factors.iter().enumerate() {
        lists[f.a].push(i);
        lists[f.b].push(i);
    }
    let mut adj_offsets = Vec::with_capacity(vars + 1);
    let mut adj = Vec::new();
    adj_offsets.push(0);
    for l in lists {
        adj.extend(l);
        adj_offsets.push(adj.len());
    }
    FactorGraph {
        bias,
        factors,
        adj_offsets,
        adj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_consistent() {
        let g = gen_factor_graph(100, 6, 4);
        assert_eq!(g.num_vars(), 100);
        assert_eq!(g.factors.len(), 300);
        // Every adjacency entry points to a factor touching that variable.
        for v in 0..100 {
            for &f in g.factors_of(v) {
                let fac = g.factors[f];
                assert!(fac.a == v || fac.b == v);
            }
        }
    }

    #[test]
    fn local_field_reflects_neighbors() {
        let g = FactorGraph {
            bias: vec![0.1, -0.2],
            factors: vec![PairFactor {
                a: 0,
                b: 1,
                weight: 2.0,
            }],
            adj_offsets: vec![0, 1, 2],
            adj: vec![0, 0],
        };
        let field = g.local_field(0, &[1, 1]);
        assert!((field - 2.1).abs() < 1e-12);
        let field = g.local_field(0, &[1, -1]);
        assert!((field + 1.9).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        assert_eq!(gen_factor_graph(50, 4, 9), gen_factor_graph(50, 4, 9));
    }
}
