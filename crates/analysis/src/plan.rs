//! Access-plan export (§4.2 → the executor).
//!
//! The stencil and partitioning analyses decide *where data should live*;
//! this module turns their reports into a per-loop **access plan** the
//! runtime data plane can act on without re-running any analysis:
//!
//! * `Interval` stencil over a `Partitioned` collection → the collection is
//!   split on the shared region boundary map and each task reads only its
//!   aligned slice (plus an explicit halo where offsets cross a boundary);
//! * `Const` / `All` stencils — and every `Local` collection — → one replica
//!   per region (a broadcast);
//! * `Unknown` stencil over a `Partitioned` collection → the reads cannot be
//!   localized, so the loop serves that collection from the shared path at
//!   runtime (the paper's "fall back to runtime data movement") and the
//!   executor bumps a surfaced fallback counter.
//!
//! A fallback is **explained** when the partitioning analysis also warned
//! about the same symbol; the locality bench gates on zero *unexplained*
//! fallbacks.

use crate::driver::AnalysisResult;
use crate::partition::DataLayout;
use crate::stencil::Stencil;
use dmll_core::{Block, Const, Def, Exp, Multiloop, Program, Sym};
use std::collections::{BTreeMap, BTreeSet};

/// Where one collection read by one loop is placed across regions.
///
/// "Region" is deliberately dimension-agnostic: the same plan drives the
/// NUMA data plane (regions = sockets, `shard.rs`) and the cluster data
/// plane (regions = nodes, `cluster.rs`), so one `LoopPlan` describes both
/// levels of the machine hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Split on the shared region boundary map; tasks read aligned slices
    /// plus an explicit halo where affine offsets cross a region boundary.
    /// The halo extents are in elements per side; region boundaries
    /// (socket or node) exchange exactly these margins.
    Partitioned {
        /// Elements of overlap staged *below* each region's lower bound.
        halo_lo: u32,
        /// Elements of overlap staged *above* each region's upper bound.
        halo_hi: u32,
    },
    /// One replica per region.
    Broadcast,
    /// Served from the shared path at runtime; counted and surfaced.
    Fallback,
}

impl Placement {
    /// The halo a `Partitioned` placement stages per side, `(0, 0)` for
    /// the other placements.
    pub fn halo(&self) -> (u32, u32) {
        match *self {
            Placement::Partitioned { halo_lo, halo_hi } => (halo_lo, halo_hi),
            _ => (0, 0),
        }
    }
}

/// Halo staged for `Interval` reads. The stencil lattice collapses affine
/// offsets without tracking their extent, so the exporter stages one
/// element of overlap per side — enough for the ±1 stencils the analyses
/// admit today, and checked end-to-end by the cluster bit-identity gate
/// (an under-staged window surfaces as a mismatch, never silently).
pub const INTERVAL_HALO: u32 = 1;

/// Provenance of one loop's trip count, decided statically per nesting
/// site. The executor's batch tier keys its strategy on exactly this
/// split: `Static` and `Invariant` nested trips run on the rectangular
/// columnar path (one trip count for all lanes), while `DataDependent`
/// trips vary per lane and take the segmented (CSR-flattened) path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripCount {
    /// A compile-time literal; the iteration space is a known rectangle.
    Static(i64),
    /// Bound outside the enclosing loop's blocks: unknown until runtime
    /// but identical for every lane of the enclosing loop.
    Invariant,
    /// Bound inside the enclosing loop (from the index or values derived
    /// from it), so each lane may iterate a different number of times.
    DataDependent,
}

/// The access plan for a single multiloop, keyed by the collections it reads.
#[derive(Clone, Debug, Default)]
pub struct LoopPlan {
    /// Placement per collection read inside the loop.
    pub placements: BTreeMap<Sym, Placement>,
    /// Number of `Fallback` placements.
    pub fallbacks: usize,
    /// `Fallback` placements with no matching partition warning. The §4.2
    /// driver always warns when it gives up on a read, so anything counted
    /// here indicates the analyses disagree and the bench gate fails.
    pub unexplained_fallbacks: usize,
    /// Trip-count provenance of every loop nested inside this one, in
    /// pre-order. Empty for flat loops.
    pub nested_trips: Vec<TripCount>,
}

/// The whole program's access plan plus the partition diagnostics.
#[derive(Clone, Debug, Default)]
pub struct ProgramPlan {
    /// Per-loop plans, keyed by the loop's first output symbol (the same key
    /// `StencilReport::per_loop` uses).
    pub per_loop: BTreeMap<Sym, LoopPlan>,
    /// Human-readable partition warnings, in analysis order.
    pub warnings: Vec<String>,
}

impl ProgramPlan {
    /// The plan for the loop whose first output is `out`, if any.
    pub fn loop_plan(&self, out: Sym) -> Option<&LoopPlan> {
        self.per_loop.get(&out)
    }

    /// Total `Fallback` placements across all loops.
    pub fn total_fallbacks(&self) -> usize {
        self.per_loop.values().map(|l| l.fallbacks).sum()
    }

    /// Total unexplained fallbacks across all loops (bench gate: zero).
    pub fn total_unexplained(&self) -> usize {
        self.per_loop.values().map(|l| l.unexplained_fallbacks).sum()
    }
}

/// Export an [`AnalysisResult`] as an executor-facing [`ProgramPlan`].
pub fn export(result: &AnalysisResult) -> ProgramPlan {
    let mut plan = ProgramPlan {
        warnings: result
            .partition
            .warnings
            .iter()
            .map(|w| match w.sym {
                Some(s) => format!("{s}: {}", w.message),
                None => w.message.clone(),
            })
            .collect(),
        ..ProgramPlan::default()
    };
    for (&out, stencils) in &result.stencils.per_loop {
        let mut lp = LoopPlan::default();
        for (&col, &st) in stencils {
            let layout = result.partition.layout_of(col);
            let placement = match (st, layout) {
                (Stencil::Interval, DataLayout::Partitioned) => Placement::Partitioned {
                    halo_lo: INTERVAL_HALO,
                    halo_hi: INTERVAL_HALO,
                },
                (Stencil::Unknown | Stencil::Gather(_), DataLayout::Partitioned) => {
                    Placement::Fallback
                }
                _ => Placement::Broadcast,
            };
            if placement == Placement::Fallback {
                lp.fallbacks += 1;
                let warned = result
                    .partition
                    .warnings
                    .iter()
                    .any(|w| w.sym == Some(col));
                if !warned {
                    lp.unexplained_fallbacks += 1;
                }
            }
            lp.placements.insert(col, placement);
        }
        plan.per_loop.insert(out, lp);
    }
    plan
}

/// Classify the trip-count provenance of every loop nested inside each
/// top-level loop, keyed by the top-level loop's first output symbol (the
/// same key [`ProgramPlan::per_loop`] uses). Pre-order per loop.
///
/// Symbols are bound once program-wide, so a symbol seen bound anywhere
/// inside the enclosing loop's blocks is exactly a symbol the lanes can
/// disagree on — no scope tracking is needed beyond membership.
pub fn trip_counts(program: &Program) -> BTreeMap<Sym, Vec<TripCount>> {
    let mut map = BTreeMap::new();
    for stmt in &program.body.stmts {
        if let Def::Loop(ml) = &stmt.def {
            let Some(&out) = stmt.lhs.first() else {
                continue;
            };
            let mut bound = BTreeSet::new();
            let mut trips = Vec::new();
            walk_gen_blocks(ml, &mut bound, &mut trips);
            map.insert(out, trips);
        }
    }
    map
}

/// Attach nested trip-count provenance to an exported plan.
pub fn annotate_trips(plan: &mut ProgramPlan, program: &Program) {
    for (out, trips) in trip_counts(program) {
        plan.per_loop.entry(out).or_default().nested_trips = trips;
    }
}

fn walk_gen_blocks(ml: &Multiloop, bound: &mut BTreeSet<Sym>, out: &mut Vec<TripCount>) {
    for gen in &ml.gens {
        for b in gen.blocks() {
            walk_block(b, bound, out);
        }
    }
}

fn walk_block(b: &Block, bound: &mut BTreeSet<Sym>, out: &mut Vec<TripCount>) {
    bound.extend(b.params.iter().copied());
    for stmt in &b.stmts {
        if let Def::Loop(inner) = &stmt.def {
            out.push(classify_size(&inner.size, bound));
            walk_gen_blocks(inner, bound, out);
        }
        bound.extend(stmt.lhs.iter().copied());
    }
}

fn classify_size(size: &Exp, bound: &BTreeSet<Sym>) -> TripCount {
    match size {
        Exp::Const(Const::I64(v)) => TripCount::Static(*v),
        // Loop sizes are I64-typed; a non-integer literal cannot occur in
        // a well-typed program, but it is at least lane-invariant.
        Exp::Const(_) => TripCount::Invariant,
        Exp::Sym(s) if bound.contains(s) => TripCount::DataDependent,
        Exp::Sym(_) => TripCount::Invariant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::analyze;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    /// An element-aligned map over a partitioned collection: Partitioned
    /// placement, no fallbacks.
    #[test]
    fn aligned_read_is_partitioned() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| st.add(e, e));
        let mut p = st.finish(&doubled);
        let plan = export(&analyze(&mut p));
        assert_eq!(plan.total_fallbacks(), 0, "{plan:?}");
        assert_eq!(plan.total_unexplained(), 0);
        assert!(
            plan.per_loop.values().any(|lp| lp
                .placements
                .values()
                .any(|p| matches!(p, Placement::Partitioned { .. }))),
            "{plan:?}"
        );
    }

    /// A data-dependent gather `x[ix[i]]` from a partitioned collection:
    /// Fallback placement that the partition analysis explains with a
    /// warning on the same symbol.
    #[test]
    fn random_read_is_explained_fallback() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let ix = st.input("ix", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&ix);
        let gathered = st.collect(&n, move |st, i| {
            let j = st.read(&ix, i);
            st.read(&x, &j)
        });
        let mut p = st.finish(&gathered);
        let plan = export(&analyze(&mut p));
        assert!(plan.total_fallbacks() >= 1, "{plan:?}");
        assert_eq!(
            plan.total_unexplained(),
            0,
            "driver must warn whenever it falls back: {plan:?}"
        );
        assert!(!plan.warnings.is_empty());
    }

    /// Three nested loops under one outer collect: a constant-trip inner
    /// loop, one sized by a symbol bound outside the outer loop, and one
    /// sized by `deg[i]` — static, invariant and data-dependent, in order.
    #[test]
    fn nested_trip_provenance_is_classified() {
        let mut st = Stage::new();
        let deg = st.input("deg", Ty::arr(Ty::I64), LayoutHint::Local);
        let k = st.input("k", Ty::I64, LayoutHint::Local);
        let n = st.len(&deg);
        let zero = st.lit_i(0);
        let out = st.collect(&n, |st, i| {
            let four = st.lit_i(4);
            let a = st.reduce(&four, |_st, j| j.clone(), |st, x, y| st.add(x, y), Some(&zero));
            let b = st.reduce(&k, |_st, j| j.clone(), |st, x, y| st.add(x, y), Some(&zero));
            let d = st.read(&deg, i);
            let c = st.reduce(&d, |_st, j| j.clone(), |st, x, y| st.add(x, y), Some(&zero));
            let ab = st.add(&a, &b);
            st.add(&ab, &c)
        });
        let mut p = st.finish(&out);

        let trips = trip_counts(&p);
        assert_eq!(trips.len(), 1, "{trips:?}");
        let nested = trips.values().next().unwrap();
        assert_eq!(
            nested,
            &vec![
                TripCount::Static(4),
                TripCount::Invariant,
                TripCount::DataDependent
            ],
            "{trips:?}"
        );

        let mut plan = export(&analyze(&mut p));
        annotate_trips(&mut plan, &p);
        assert!(
            plan.per_loop
                .values()
                .any(|lp| lp.nested_trips.contains(&TripCount::DataDependent)),
            "{plan:?}"
        );
    }
}
