//! Partitioning analysis — Algorithm 1 (§4.1).
//!
//! A forward dataflow over the program's top-level statements. Data sources
//! carry user layout annotations; everything else is derived by "move the
//! computation to the data":
//!
//! * a parallel pattern consuming only `Local` data produces `Local` data;
//! * a pattern consuming `Partitioned` data is itself distributed — its
//!   `Collect` outputs are `Partitioned` when the loop traverses partitioned
//!   data element-aligned (an `Interval` stencil), while reductions and
//!   bucket results come back `Local`;
//! * `Local` values consumed by a distributed loop are *broadcast*;
//! * sequential operations may not consume partitioned data unless
//!   whitelisted (e.g. reading a length field), otherwise the analysis
//!   warns, matching the paper's `warn()`.

use crate::stencil::{Stencil, StencilReport};
use dmll_core::visit::free_syms;
use dmll_core::{Def, LayoutHint, Program, Sym, Ty};
use std::collections::HashMap;
use std::fmt;

/// Where a value lives (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DataLayout {
    /// Allocated entirely within one memory region.
    #[default]
    Local,
    /// Spread across memory regions / machines.
    Partitioned,
}

impl fmt::Display for DataLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataLayout::Local => write!(f, "Local"),
            DataLayout::Partitioned => write!(f, "Partitioned"),
        }
    }
}

/// A diagnostic raised by the analysis (the paper's `warn()`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// The symbol the warning concerns, when known.
    pub sym: Option<Sym>,
    /// Human-readable description.
    pub message: String,
}

/// The result of the partitioning analysis.
#[derive(Clone, Debug, Default)]
pub struct PartitionReport {
    /// Layout of every top-level symbol.
    pub layouts: HashMap<Sym, DataLayout>,
    /// Local values that must be broadcast to distributed loops.
    pub broadcasts: Vec<Sym>,
    /// Pairs of partitioned collections consumed by the same loop with
    /// aligned accesses — the runtime must co-partition them.
    pub copartitioned: Vec<(Sym, Sym)>,
    /// Diagnostics.
    pub warnings: Vec<Warning>,
}

impl PartitionReport {
    /// The layout of a symbol (Local if never assigned).
    pub fn layout_of(&self, s: Sym) -> DataLayout {
        self.layouts.get(&s).copied().unwrap_or_default()
    }

    /// True when any warning was produced.
    pub fn has_warnings(&self) -> bool {
        !self.warnings.is_empty()
    }
}

/// Run the partitioning analysis given the program's stencils.
pub fn analyze(program: &Program, stencils: &StencilReport) -> PartitionReport {
    let mut report = PartitionReport::default();
    let tys = dmll_core::typecheck::infer(program).ok();
    for input in &program.inputs {
        let layout = match input.layout {
            LayoutHint::Partitioned => DataLayout::Partitioned,
            LayoutHint::Local => DataLayout::Local,
        };
        report.layouts.insert(input.sym, layout);
    }

    for stmt in &program.body.stmts {
        match &stmt.def {
            Def::Loop(ml) => {
                let out = stmt.lhs.first().copied();
                let loop_stencils = out.and_then(|o| stencils.per_loop.get(&o));
                let reads: Vec<Sym> = {
                    // Free symbols of the whole loop statement.
                    let mut tmp = dmll_core::Block::ret(vec![], dmll_core::Exp::unit());
                    tmp.stmts.push(stmt.clone());
                    free_syms(&tmp).into_iter().collect()
                };
                let partitioned_inputs: Vec<Sym> = reads
                    .iter()
                    .copied()
                    .filter(|s| report.layout_of(*s) == DataLayout::Partitioned)
                    .collect();
                if partitioned_inputs.is_empty() {
                    // Consumes only Local data: outputs Local.
                    for s in &stmt.lhs {
                        report.layouts.insert(*s, DataLayout::Local);
                    }
                    continue;
                }
                // Distributed loop: check input stencils.
                let mut interval_inputs = Vec::new();
                for &p in &partitioned_inputs {
                    match loop_stencils.and_then(|m| m.get(&p)).copied() {
                        Some(Stencil::Interval) => interval_inputs.push(p),
                        Some(Stencil::Unknown) => report.warnings.push(Warning {
                            sym: Some(p),
                            message: format!(
                                "partitioned collection {p} accessed with an Unknown stencil; \
                                 falling back to runtime data movement"
                            ),
                        }),
                        Some(Stencil::Gather(via)) => report.warnings.push(Warning {
                            sym: Some(p),
                            message: format!(
                                "partitioned collection {p} is gathered through co-traversed \
                                 index column {via} (push-style graph access); reads stay \
                                 data-dependent, so the runtime serves them from the shared path"
                            ),
                        }),
                        Some(Stencil::All) => report.warnings.push(Warning {
                            sym: Some(p),
                            message: format!(
                                "partitioned collection {p} is consumed entirely per iteration; \
                                 it will be broadcast"
                            ),
                        }),
                        // Const or not read as a collection: fine.
                        _ => {}
                    }
                }
                // Local inputs of a distributed loop are broadcast.
                for &s in &reads {
                    if report.layout_of(s) == DataLayout::Local && !report.broadcasts.contains(&s) {
                        report.broadcasts.push(s);
                    }
                }
                // Aligned partitioned inputs must be co-partitioned.
                for pair in interval_inputs.windows(2) {
                    report.copartitioned.push((pair[0], pair[1]));
                }
                // Outputs: Collects over partitioned intervals stay
                // partitioned; reductions and buckets come back Local.
                let traverses_partitioned = !interval_inputs.is_empty();
                for (gen, s) in ml.gens.iter().zip(&stmt.lhs) {
                    let layout = if gen.output_is_partitionable() && traverses_partitioned {
                        DataLayout::Partitioned
                    } else {
                        DataLayout::Local
                    };
                    report.layouts.insert(*s, layout);
                }
            }
            Def::StructGet { obj, .. } => {
                // Projections of a partitioned record: collection fields
                // stay partitioned, scalar metadata (rows/cols) is local —
                // and reading it is always allowed (the paper's size-field
                // whitelist example).
                let src = obj
                    .as_sym()
                    .map(|s| report.layout_of(s))
                    .unwrap_or_default();
                let out_ty = tys.as_ref().and_then(|t| t.get(&stmt.lhs[0]));
                let layout = match (src, out_ty) {
                    (DataLayout::Partitioned, Some(Ty::Arr(_))) => DataLayout::Partitioned,
                    _ => DataLayout::Local,
                };
                report.layouts.insert(stmt.lhs[0], layout);
            }
            Def::ArrayLen(_) | Def::BucketLen(_) => {
                // Whitelisted: length is a metadata field.
                report.layouts.insert(stmt.lhs[0], DataLayout::Local);
            }
            Def::Extern {
                name,
                args,
                whitelisted,
                ..
            } => {
                let touches_partitioned = args.iter().any(|a| {
                    a.as_sym()
                        .is_some_and(|s| report.layout_of(s) == DataLayout::Partitioned)
                });
                if touches_partitioned && !whitelisted {
                    report.warnings.push(Warning {
                        sym: stmt.lhs.first().copied(),
                        message: format!(
                            "sequential operation `{name}` consumes partitioned data; \
                             it must run at a single location"
                        ),
                    });
                }
                for s in &stmt.lhs {
                    report.layouts.insert(*s, DataLayout::Local);
                }
            }
            other => {
                // Any other sequential op touching partitioned data warns
                // (e.g. a top-level random read of a distributed array).
                let mut touches = false;
                dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                    if let dmll_core::Exp::Sym(s) = e {
                        if report.layout_of(*s) == DataLayout::Partitioned {
                            touches = true;
                        }
                    }
                });
                if touches {
                    report.warnings.push(Warning {
                        sym: stmt.lhs.first().copied(),
                        message: "sequential operation consumes partitioned data".to_string(),
                    });
                }
                for s in &stmt.lhs {
                    report.layouts.insert(*s, DataLayout::Local);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_frontend::Stage;

    #[test]
    fn map_over_partitioned_stays_partitioned() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| {
            let two = st.lit_f(2.0);
            st.mul(e, &two)
        });
        let total = st.sum(&doubled);
        let p = st.finish(&total);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        let doubled_sym = doubled.exp.as_sym().unwrap();
        let total_sym = total.exp.as_sym().unwrap();
        assert_eq!(rep.layout_of(doubled_sym), DataLayout::Partitioned);
        assert_eq!(
            rep.layout_of(total_sym),
            DataLayout::Local,
            "reduce is Local"
        );
        assert!(!rep.has_warnings(), "{:?}", rep.warnings);
    }

    #[test]
    fn local_only_loop_stays_local() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let out = st.map(&x, |st, e| st.mul(e, e));
        let p = st.finish(&out);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert_eq!(rep.layout_of(out.exp.as_sym().unwrap()), DataLayout::Local);
    }

    #[test]
    fn broadcast_of_local_inputs_recorded() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let c = st.input("centroid", Ty::arr(Ty::F64), LayoutHint::Local);
        let out = st.map(&x, |st, e| {
            let z = st.lit_i(0);
            let c0 = st.read(&c, &z);
            st.sub(e, &c0)
        });
        let p = st.finish(&out);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert!(
            rep.broadcasts.contains(&c.exp.as_sym().unwrap()),
            "{:?}",
            rep.broadcasts
        );
    }

    #[test]
    fn zip_of_two_partitioned_is_copartitioned() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let z = st.zip_with(&x, &y, |st, a, b| st.add(a, b));
        let p = st.finish(&z);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert_eq!(rep.copartitioned.len(), 1);
        assert_eq!(
            rep.layout_of(z.exp.as_sym().unwrap()),
            DataLayout::Partitioned
        );
    }

    #[test]
    fn gather_stencil_warns_with_named_index_column() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let idx = st.input("idx", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let out = st.map(&idx, |st, e| st.read(&x, e));
        let p = st.finish(&out);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        let x_sym = x.exp.as_sym().unwrap();
        let w = rep
            .warnings
            .iter()
            .find(|w| w.sym == Some(x_sym))
            .expect("gathered collection warns");
        assert!(
            w.message.contains("push-style graph access"),
            "{}",
            w.message
        );
        assert!(
            w.message
                .contains(&idx.exp.as_sym().unwrap().to_string()),
            "warning names the index column: {}",
            w.message
        );
    }

    #[test]
    fn unknown_stencil_warns() {
        // Arithmetic on the gathered index drops provenance: plain Unknown.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let idx = st.input("idx", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let out = st.map(&idx, |st, e| {
            let one = st.lit_i(1);
            let j = st.add(e, &one);
            st.read(&x, &j)
        });
        let p = st.finish(&out);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert!(rep.warnings.iter().any(|w| w.message.contains("Unknown")));
    }

    #[test]
    fn sequential_read_of_partitioned_warns() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let z = st.lit_i(3);
        let v = st.read(&x, &z); // top-level sequential access
        let p = st.finish(&v);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert!(rep.has_warnings());
    }

    #[test]
    fn length_field_is_whitelisted() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let p = st.finish(&n);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert!(!rep.has_warnings(), "{:?}", rep.warnings);
    }

    #[test]
    fn whitelisted_extern_is_silent_unwhitelisted_warns() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let ok = st.extern_call("meta", &[&x], Ty::I64, false, true);
        let _bad = st.extern_call("mutate", &[&x], Ty::Unit, true, false);
        let p = st.finish(&ok);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert_eq!(rep.warnings.len(), 1, "{:?}", rep.warnings);
        assert!(rep.warnings[0].message.contains("mutate"));
    }

    #[test]
    fn matrix_projection_layouts() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let data = m.data(&mut st);
        let rows = m.rows(&mut st);
        let out = st.map(&data, |st, e| st.mul(e, e));
        let pair = st.tuple(&[&out, &rows]);
        let p = st.finish(&pair);
        let stencils = crate::stencil::analyze(&p);
        let rep = analyze(&p, &stencils);
        assert_eq!(
            rep.layout_of(data.exp.as_sym().unwrap()),
            DataLayout::Partitioned,
            "collection field of a partitioned matrix"
        );
        assert_eq!(
            rep.layout_of(rows.exp.as_sym().unwrap()),
            DataLayout::Local,
            "scalar metadata is local and whitelisted"
        );
        assert_eq!(
            rep.layout_of(out.exp.as_sym().unwrap()),
            DataLayout::Partitioned
        );
    }
}
