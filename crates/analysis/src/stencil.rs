//! Read-stencil analysis (§4.2).
//!
//! For every top-level multiloop and every external collection it reads, the
//! analysis classifies the access pattern with standard affine analysis of
//! the index expression relative to the loop index:
//!
//! * [`Stencil::Interval`] — the loop index selects the i-th element / row
//!   (`data(i * cols + j)` with `cols` invariant): the runtime can split the
//!   collection on interval boundaries so all accesses stay local;
//! * [`Stencil::Const`] — a loop-invariant index: broadcast one element;
//! * [`Stencil::All`] — the whole collection is consumed at each index
//!   (inner full scans, e.g. the centroids in k-means): broadcast it;
//! * [`Stencil::Gather`] — a data-dependent index that was itself loaded
//!   element-aligned from another collection (`ranks(src(i))`, the
//!   push-style graph access): still served dynamically, but the analysis
//!   names the index column instead of giving up;
//! * [`Stencil::Unknown`] — a data-dependent index: either replicate or trap
//!   and fetch remotely at runtime.
//!
//! Per-collection stencils from different loops are joined with
//! `Const < Interval < All < Gather < Unknown`.

use dmll_core::visit::{def_blocks, free_syms};
use dmll_core::{Block, Def, Exp, Program, Sym};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// The access pattern of one collection inside one multiloop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stencil {
    /// Loop-invariant index: one element per loop, broadcast it.
    Const,
    /// Affine in the loop index: partition on interval boundaries.
    Interval,
    /// Entire collection consumed per iteration: broadcast the collection.
    All,
    /// Data-dependent index loaded element-aligned from the named index
    /// column (push-style graph gather, e.g. `ranks(edge_src(i))`). The
    /// reads still cannot be localized, but the fallback is understood:
    /// the runtime serves them from the shared path.
    Gather(Sym),
    /// Data-dependent index: replicate or fetch dynamically.
    Unknown,
}

impl Stencil {
    /// Lattice join (most conservative wins).
    pub fn join(self, other: Stencil) -> Stencil {
        self.max(other)
    }

    /// True when the runtime can partition the collection without dynamic
    /// communication for this access.
    pub fn is_local_friendly(self) -> bool {
        matches!(self, Stencil::Interval)
    }
}

impl fmt::Display for Stencil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stencil::Const => write!(f, "Const"),
            Stencil::Interval => write!(f, "Interval"),
            Stencil::All => write!(f, "All"),
            Stencil::Gather(via) => write!(f, "Gather(via {via})"),
            Stencil::Unknown => write!(f, "Unknown"),
        }
    }
}

/// Stencils for every top-level multiloop of a program.
#[derive(Clone, Debug, Default)]
pub struct StencilReport {
    /// Per loop (keyed by its first output symbol), the stencil of each
    /// external collection it reads.
    pub per_loop: HashMap<Sym, HashMap<Sym, Stencil>>,
    /// Per-collection join across all loops.
    pub global: HashMap<Sym, Stencil>,
}

impl StencilReport {
    /// The global stencil of a collection, if it is read by any loop.
    pub fn global_of(&self, collection: Sym) -> Option<Stencil> {
        self.global.get(&collection).copied()
    }
}

/// Compute stencils for every **top-level** multiloop (the loops the runtime
/// distributes).
pub fn analyze(program: &Program) -> StencilReport {
    let mut report = StencilReport::default();
    for stmt in &program.body.stmts {
        let Def::Loop(ml) = &stmt.def else { continue };
        let Some(&out) = stmt.lhs.first() else {
            continue;
        };
        let mut per: HashMap<Sym, Stencil> = HashMap::new();
        for gen in &ml.gens {
            for cb in gen.blocks() {
                // Component blocks that take the loop index classify against
                // their parameter; the reducer (two params) sees no index —
                // its reads of external arrays are Unknown-ish but operate
                // on reduction values; classify with no outer index.
                let outer = if cb.params.len() == 1 {
                    Some(cb.params[0])
                } else {
                    None
                };
                classify_block(cb, outer, &mut Ctx::new(cb), &mut per);
            }
        }
        for (&arr, &st) in &per {
            report
                .global
                .entry(arr)
                .and_modify(|g| *g = g.join(st))
                .or_insert(st);
        }
        report.per_loop.insert(out, per);
    }
    report
}

/// What we know about a symbol inside the loop body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Form {
    /// Invariant with respect to the loop (defined outside or derived from
    /// invariants only).
    Inv,
    /// Exactly the loop index.
    Outer,
    /// A row-aligned affine function of the loop index: `i*c + (unit inner
    /// or invariant offsets)` — the per-iteration footprint is a contiguous
    /// interval of the flattened representation.
    OuterLinear,
    /// A unit-stride inner-loop index (plus invariants): a scan whose span
    /// does not depend on the outer index.
    Inner,
    /// An inner index scaled by an invariant (e.g. `j*cols`): a strided scan
    /// covering the collection.
    InnerScaled,
    /// Depends on the outer index but with a footprint spanning the whole
    /// collection per iteration (e.g. the column access `j*cols + i`).
    Spread,
    /// The result of an element-aligned read of the named external
    /// collection (`src(i)` with an Interval index): a data-dependent value
    /// whose provenance is a co-traversed index column. Using it as an
    /// index is the push-style graph gather.
    GatherIdx(Sym),
    /// Anything else (data-dependent).
    Opaque,
}

/// Per-block symbol-form environment. Symbols not bound within the analyzed
/// loop are invariant by construction.
struct Ctx {
    forms: HashMap<Sym, Form>,
    bound_inside: BTreeSet<Sym>,
}

impl Ctx {
    fn new(root: &Block) -> Ctx {
        let mut bound_inside = BTreeSet::new();
        fn collect(b: &Block, out: &mut BTreeSet<Sym>) {
            out.extend(b.params.iter().copied());
            for s in &b.stmts {
                out.extend(s.lhs.iter().copied());
                for nb in def_blocks(&s.def) {
                    collect(nb, out);
                }
            }
        }
        collect(root, &mut bound_inside);
        Ctx {
            forms: HashMap::new(),
            bound_inside,
        }
    }

    fn form_of_exp(&self, e: &Exp, outer: Option<Sym>) -> Form {
        match e {
            Exp::Const(_) => Form::Inv,
            Exp::Sym(s) => {
                if Some(*s) == outer {
                    Form::Outer
                } else if let Some(f) = self.forms.get(s) {
                    *f
                } else if self.bound_inside.contains(s) {
                    // Bound inside but not yet classified (e.g. a reducer
                    // parameter): opaque.
                    Form::Opaque
                } else {
                    Form::Inv
                }
            }
        }
    }
}

fn combine_add(a: Form, b: Form) -> Form {
    use Form::*;
    match (a, b) {
        (Opaque, _) | (_, Opaque) => Opaque,
        // Arithmetic on a gathered index loses the provenance.
        (GatherIdx(_), _) | (_, GatherIdx(_)) => Opaque,
        (Inv, Inv) => Inv,
        // Row-aligned combinations.
        (Outer, Inv) | (Inv, Outer) => OuterLinear,
        (OuterLinear, Inv) | (Inv, OuterLinear) => OuterLinear,
        (OuterLinear, Inner) | (Inner, OuterLinear) => OuterLinear,
        (Outer, Inner) | (Inner, Outer) => OuterLinear,
        // Inner scans.
        (Inner, Inv) | (Inv, Inner) => Inner,
        (Inner, Inner) => InnerScaled,
        (InnerScaled, Inv) | (Inv, InnerScaled) => InnerScaled,
        (InnerScaled, Inner) | (Inner, InnerScaled) => InnerScaled,
        // A scaled inner scan offset by the outer index spans the whole
        // collection per iteration (column access).
        (InnerScaled, Outer)
        | (Outer, InnerScaled)
        | (InnerScaled, OuterLinear)
        | (OuterLinear, InnerScaled) => Spread,
        // Doubling the outer index breaks interval alignment.
        (Outer | OuterLinear, Outer | OuterLinear) => Spread,
        (Spread, _) | (_, Spread) => Spread,
        (InnerScaled, InnerScaled) => InnerScaled,
    }
}

fn combine_mul(a: Form, b: Form) -> Form {
    use Form::*;
    match (a, b) {
        (Inv, Inv) => Inv,
        (Outer, Inv) | (Inv, Outer) => OuterLinear,
        (Inner, Inv) | (Inv, Inner) => InnerScaled,
        (InnerScaled, Inv) | (Inv, InnerScaled) => InnerScaled,
        _ => Opaque,
    }
}

/// Walk a component block classifying reads; `outer` is the distributed
/// loop's index parameter (None inside reducers), and nested loop params are
/// registered as `Inner`.
fn classify_block(b: &Block, outer: Option<Sym>, ctx: &mut Ctx, per: &mut HashMap<Sym, Stencil>) {
    for stmt in &b.stmts {
        match &stmt.def {
            Def::ArrayRead { arr, index } => {
                let iform = ctx.form_of_exp(index, outer);
                let mut res = Form::Opaque;
                if let Some(a) = arr.as_sym() {
                    if !ctx.bound_inside.contains(&a) {
                        let st = match iform {
                            Form::Outer | Form::OuterLinear => Stencil::Interval,
                            Form::Inv => Stencil::Const,
                            Form::Inner | Form::InnerScaled | Form::Spread => Stencil::All,
                            Form::GatherIdx(via) => Stencil::Gather(via),
                            Form::Opaque => Stencil::Unknown,
                        };
                        per.entry(a).and_modify(|g| *g = g.join(st)).or_insert(st);
                        // An element-aligned load from an external column
                        // yields a value whose provenance we keep: indexing
                        // another collection with it is a push-style gather
                        // through `a`, not an arbitrary Unknown access.
                        if matches!(iform, Form::Outer | Form::OuterLinear) {
                            res = Form::GatherIdx(a);
                        }
                    }
                }
                ctx.forms.insert(stmt.lhs[0], res);
            }
            Def::Prim { op, args } => {
                let form = match op {
                    dmll_core::PrimOp::Add | dmll_core::PrimOp::Sub => combine_add(
                        ctx.form_of_exp(&args[0], outer),
                        ctx.form_of_exp(&args[1], outer),
                    ),
                    dmll_core::PrimOp::Mul => combine_mul(
                        ctx.form_of_exp(&args[0], outer),
                        ctx.form_of_exp(&args[1], outer),
                    ),
                    // Decomposing a flattened inner index (`t / cols`,
                    // `t % cols`) stays an inner scan.
                    dmll_core::PrimOp::Div | dmll_core::PrimOp::Rem => {
                        match (
                            ctx.form_of_exp(&args[0], outer),
                            ctx.form_of_exp(&args[1], outer),
                        ) {
                            (Form::Inv, Form::Inv) => Form::Inv,
                            (Form::Inner | Form::InnerScaled, Form::Inv) => Form::Inner,
                            _ => Form::Opaque,
                        }
                    }
                    _ => {
                        if args.iter().all(|a| ctx.form_of_exp(a, outer) == Form::Inv) {
                            Form::Inv
                        } else {
                            Form::Opaque
                        }
                    }
                };
                ctx.forms.insert(stmt.lhs[0], form);
            }
            Def::Loop(ml) => {
                // Nested loop: its params are Inner; its body classified
                // with the same outer index.
                let _ = ml;
                for nb in def_blocks(&stmt.def) {
                    if nb.params.len() == 1 {
                        ctx.forms.insert(nb.params[0], Form::Inner);
                    } else {
                        for p in &nb.params {
                            ctx.forms.insert(*p, Form::Opaque);
                        }
                    }
                    classify_block(nb, outer, ctx, per);
                }
                for s in &stmt.lhs {
                    ctx.forms.insert(*s, Form::Opaque);
                }
            }
            other => {
                // Invariant-in, invariant-out for pure scalar ops; opaque
                // otherwise.
                let mut all_inv = true;
                dmll_core::visit::for_each_exp_shallow(other, &mut |e| {
                    if ctx.form_of_exp(e, outer) != Form::Inv {
                        all_inv = false;
                    }
                });
                // Free variables of nested blocks count too.
                for nb in def_blocks(other) {
                    for s in free_syms(nb) {
                        if ctx.form_of_exp(&Exp::Sym(s), outer) != Form::Inv {
                            all_inv = false;
                        }
                    }
                    classify_block(nb, outer, ctx, per);
                }
                let f = if all_inv { Form::Inv } else { Form::Opaque };
                for s in &stmt.lhs {
                    ctx.forms.insert(*s, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    #[test]
    fn join_is_conservative_max() {
        assert_eq!(Stencil::Const.join(Stencil::Interval), Stencil::Interval);
        assert_eq!(Stencil::Interval.join(Stencil::All), Stencil::All);
        assert_eq!(Stencil::All.join(Stencil::Unknown), Stencil::Unknown);
        assert_eq!(
            Stencil::All.join(Stencil::Gather(Sym(1))),
            Stencil::Gather(Sym(1))
        );
        assert_eq!(
            Stencil::Gather(Sym(1)).join(Stencil::Unknown),
            Stencil::Unknown
        );
        assert!(Stencil::Interval.is_local_friendly());
        assert!(!Stencil::All.is_local_friendly());
    }

    #[test]
    fn elementwise_map_is_interval() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let out = st.map(&x, |st, e| st.mul(e, e));
        let p = st.finish(&out);
        let rep = analyze(&p);
        assert_eq!(
            rep.global_of(x.exp.as_sym().unwrap()),
            Some(Stencil::Interval)
        );
    }

    #[test]
    fn matrix_row_access_is_interval() {
        // collect over rows, inner loop over cols reading data(i*cols + j).
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let rows = m.rows(&mut st);
        let data = m.data(&mut st);
        let cols = m.cols(&mut st);
        let zero = st.lit_f(0.0);
        let sums = st.collect(&rows, |st, i| {
            let data = data.clone();
            let cols2 = cols.clone();
            let i = i.clone();
            st.reduce(
                &cols,
                move |st, j| {
                    let base = st.mul(&i, &cols2);
                    let idx = st.add(&base, j);
                    st.read(&data, &idx)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let p = st.finish(&sums);
        let rep = analyze(&p);
        assert_eq!(
            rep.global_of(data.exp.as_sym().unwrap()),
            Some(Stencil::Interval)
        );
    }

    #[test]
    fn constant_index_is_const() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.lit_i(10);
        let out = st.collect(&n, |st, _i| {
            let z = st.lit_i(0);
            st.read(&x, &z)
        });
        let p = st.finish(&out);
        let rep = analyze(&p);
        assert_eq!(rep.global_of(x.exp.as_sym().unwrap()), Some(Stencil::Const));
    }

    #[test]
    fn full_inner_scan_is_all() {
        // For each i, sum the entire y: y must be broadcast.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Local);
        let out = st.map(&x, |st, e| {
            let sy = st.sum(&y);
            st.add(e, &sy)
        });
        let p = st.finish(&out);
        let rep = analyze(&p);
        assert_eq!(rep.global_of(y.exp.as_sym().unwrap()), Some(Stencil::All));
        assert_eq!(
            rep.global_of(x.exp.as_sym().unwrap()),
            Some(Stencil::Interval)
        );
    }

    #[test]
    fn gather_through_index_column_is_named() {
        // x(idx(i)): the push-style gather through a co-traversed index
        // array — data-dependent, but the provenance is kept.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let idx = st.input("idx", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let out = st.map(&idx, |st, e| st.read(&x, e));
        let p = st.finish(&out);
        let rep = analyze(&p);
        let via = idx.exp.as_sym().unwrap();
        assert_eq!(rep.global_of(x.exp.as_sym().unwrap()), Some(Stencil::Gather(via)));
        assert_eq!(rep.global_of(via), Some(Stencil::Interval));
    }

    #[test]
    fn arithmetic_on_gathered_index_is_unknown() {
        // x(idx(i) + 1): once the gathered value is computed with, the
        // provenance is gone and the access is a plain Unknown.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let idx = st.input("idx", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let out = st.map(&idx, |st, e| {
            let one = st.lit_i(1);
            let j = st.add(e, &one);
            st.read(&x, &j)
        });
        let p = st.finish(&out);
        let rep = analyze(&p);
        assert_eq!(
            rep.global_of(x.exp.as_sym().unwrap()),
            Some(Stencil::Unknown)
        );
    }

    #[test]
    fn global_join_across_loops() {
        // One loop reads x element-wise, another scans it fully.
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let n = st.lit_i(5);
        let b = st.collect(&n, |st, _i| st.sum(&x));
        let t1 = st.sum(&a);
        let t2 = st.sum(&b);
        let pair = st.tuple(&[&t1, &t2]);
        let p = st.finish(&pair);
        let rep = analyze(&p);
        assert_eq!(rep.global_of(x.exp.as_sym().unwrap()), Some(Stencil::All));
    }

    #[test]
    fn shifted_affine_access_is_interval() {
        // x(i + 1) is still an interval access (contiguous per index).
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.lit_i(8);
        let out = st.collect(&n, |st, i| {
            let one = st.lit_i(1);
            let j = st.add(i, &one);
            st.read(&x, &j)
        });
        let p = st.finish(&out);
        let rep = analyze(&p);
        assert_eq!(
            rep.global_of(x.exp.as_sym().unwrap()),
            Some(Stencil::Interval)
        );
    }
}
