//! Stencil-driven transformation (§4.2) and the combined analysis entry
//! point.
//!
//! "If any stencil is Unknown we attempt to apply a set of rewrite rules to
//! improve the access patterns. […] These rules do not overlap and we only
//! try to apply a single rule at a time rather than an exponential
//! combination of them. If all available transformations fail, we fall back
//! to transferring data at runtime."
//!
//! We additionally treat an `All` stencil over a *partitioned* collection as
//! problematic: broadcasting the primary dataset to every node defeats
//! distribution (the paper's own motivation for transforming the
//! shared-memory k-means and the textbook logistic regression).

use crate::partition::{self, PartitionReport};
use crate::stencil::{self, Stencil, StencilReport};
use dmll_core::{Def, LayoutHint, Program, Sym, Ty};
use dmll_transform::rewrite::fixpoint;
use std::collections::BTreeSet;

/// Everything the runtime needs to place data and work.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Read stencils per top-level loop and globally per collection.
    pub stencils: StencilReport,
    /// Layouts, broadcasts, co-partitioning and warnings.
    pub partition: PartitionReport,
    /// Names of Figure 3 rules applied to repair problematic stencils.
    pub repairs: Vec<String>,
}

/// Collections rooted in partitioned inputs: the input symbols themselves
/// plus top-level collection projections of partitioned records
/// (`matrix.data`).
fn partitioned_roots(program: &Program) -> BTreeSet<Sym> {
    let mut roots: BTreeSet<Sym> = program
        .inputs
        .iter()
        .filter(|i| i.layout == LayoutHint::Partitioned)
        .map(|i| i.sym)
        .collect();
    let tys = dmll_core::typecheck::infer(program).ok();
    for stmt in &program.body.stmts {
        if let Def::StructGet { obj, .. } = &stmt.def {
            if obj.as_sym().is_some_and(|s| roots.contains(&s)) {
                let is_coll = tys
                    .as_ref()
                    .and_then(|t| t.get(&stmt.lhs[0]))
                    .is_some_and(|t| matches!(t, Ty::Arr(_)));
                if is_coll {
                    roots.insert(stmt.lhs[0]);
                }
            }
        }
    }
    roots
}

fn find_problem(program: &Program) -> Option<(Sym, Stencil)> {
    let roots = partitioned_roots(program);
    let rep = stencil::analyze(program);
    for (&coll, &st) in &rep.global {
        if roots.contains(&coll)
            && matches!(st, Stencil::All | Stencil::Gather(_) | Stencil::Unknown)
        {
            return Some((coll, st));
        }
    }
    None
}

/// Attempt the Figure 3 rewrites, one at a time, until no partitioned
/// collection is read with an `All`/`Unknown` stencil or no rule helps.
/// Returns the names of the rules that were kept.
pub fn improve_stencils(program: &mut Program) -> Vec<String> {
    let mut applied = Vec::new();
    for _ in 0..8 {
        let Some((coll, _)) = find_problem(program) else {
            break;
        };
        type Rule = fn(&mut Program) -> dmll_transform::PassReport;
        let rules: [(&str, Rule); 3] = [
            (
                "Conditional Reduce",
                dmll_transform::conditional_reduce::run,
            ),
            ("GroupBy-Reduce", dmll_transform::groupby_reduce::run),
            (
                "Column-to-Row Reduce",
                dmll_transform::interchange::column_to_row,
            ),
        ];
        let snapshot = program.clone();
        let mut fixed = false;
        for (name, rule) in rules {
            let rep = fixpoint(program, rule);
            if !rep.changed() {
                continue;
            }
            renormalize(program);
            let still_bad = find_problem(program)
                .map(|(c, _)| c == coll)
                .unwrap_or(false);
            if still_bad {
                *program = snapshot.clone();
            } else {
                applied.push(name.to_string());
                fixed = true;
                break;
            }
        }
        if !fixed {
            // Paper: fall back to transferring data at runtime; the
            // partitioning analysis will emit the warning.
            break;
        }
    }
    applied
}

/// Light cleanup after a repair so the stencil analysis sees the normalized
/// loop structure.
fn renormalize(program: &mut Program) {
    fixpoint(program, dmll_transform::fusion::run);
    fixpoint(program, dmll_transform::horizontal::run);
    dmll_transform::cleanup::cse(program);
    fixpoint(program, dmll_transform::code_motion::run);
    fixpoint(program, dmll_transform::cleanup::copy_elim);
    dmll_transform::cleanup::dce(program);
}

/// Run stencil repair, the stencil analysis and the partitioning analysis.
pub fn analyze(program: &mut Program) -> AnalysisResult {
    let repairs = improve_stencils(program);
    let stencils = stencil::analyze(program);
    let partition = partition::analyze(program, &stencils);
    AnalysisResult {
        stencils,
        partition,
        repairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::DataLayout;
    use dmll_frontend::{Stage, Val};
    use dmll_interp::{eval, Value};
    use rand::prelude::*;

    /// Shared-memory k-means update (conditional reduces over the whole
    /// matrix inside a per-cluster loop): as written, the matrix would be
    /// broadcast.
    fn kmeans_update() -> Program {
        let mut st = Stage::new();
        let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
        let assigned = st.input("assigned", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let k = st.lit_i(3);
        let rows = matrix.rows(&mut st);
        let sums = st.collect(&k, |st, i| {
            let i = i.clone();
            let a = assigned.clone();
            let m = matrix.clone();
            st.reduce_if(
                &rows,
                Some(move |st: &mut Stage, j: &Val| {
                    let aj = st.read(&a, j);
                    st.eq(&aj, &i)
                }),
                move |st, j| m.row(st, j),
                |st, x, y| st.vec_add(x, y),
                None,
            )
        });
        st.finish(&sums)
    }

    #[test]
    fn kmeans_matrix_stencil_repaired_by_conditional_reduce() {
        let mut p = kmeans_update();
        let p0 = p.clone();
        // Before: the matrix data is consumed whole per cluster.
        assert!(find_problem(&p).is_some(), "{p}");
        let repairs = improve_stencils(&mut p);
        assert!(
            repairs.iter().any(|r| r == "Conditional Reduce"),
            "{repairs:?}"
        );
        assert!(find_problem(&p).is_none(), "{p}");
        // Semantics preserved.
        let mut rng = StdRng::seed_from_u64(3);
        let (rows, cols) = (12, 3);
        let inputs = vec![
            (
                "matrix",
                Value::matrix(
                    (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    rows,
                    cols,
                ),
            ),
            (
                "assigned",
                Value::i64_arr((0..rows).map(|_| rng.gen_range(0..3)).collect()),
            ),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn logreg_textbook_repaired_by_column_to_row() {
        // Outer loop over features, inner reduce over samples: column
        // access spans the whole matrix per feature.
        let mut st = Stage::new();
        let x = st.input_matrix("x", LayoutHint::Partitioned);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let cols = x.cols(&mut st);
        let rows = x.rows(&mut st);
        let zero = st.lit_f(0.0);
        let grad = st.collect(&cols, |st, j| {
            let j = j.clone();
            let x2 = x.clone();
            let y2 = y.clone();
            st.reduce(
                &rows,
                move |st, i| {
                    let xij = x2.get(st, i, &j);
                    let yi = st.read(&y2, i);
                    st.mul(&xij, &yi)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let mut p = st.finish(&grad);
        let p0 = p.clone();
        assert!(find_problem(&p).is_some(), "{p}");
        let repairs = improve_stencils(&mut p);
        assert!(
            repairs.iter().any(|r| r == "Column-to-Row Reduce"),
            "{repairs:?}"
        );
        assert!(find_problem(&p).is_none(), "{p}");
        let inputs = [
            ("x", Value::matrix(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3)),
            ("y", Value::f64_arr(vec![0.5, -1.0])),
        ];
        assert_eq!(eval(&p0, &inputs).unwrap(), eval(&p, &inputs).unwrap());
    }

    #[test]
    fn genuinely_random_access_falls_back_with_warning() {
        // Graph-style gather: no rule can fix it; the stencil analysis
        // names the index column, the partition analysis warns, and the
        // runtime will move data dynamically (§5 remote reads).
        let mut st = Stage::new();
        let values = st.input("values", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let nbrs = st.input("nbrs", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let gathered = st.map(&nbrs, |st, e| st.read(&values, e));
        let total = st.sum(&gathered);
        let mut p = st.finish(&total);
        let result = analyze(&mut p);
        assert!(result.repairs.is_empty(), "{:?}", result.repairs);
        assert_eq!(
            result.stencils.global_of(values.exp.as_sym().unwrap()),
            Some(Stencil::Gather(nbrs.exp.as_sym().unwrap()))
        );
        assert!(result.partition.has_warnings());
    }

    #[test]
    fn clean_pipeline_has_no_repairs_or_warnings() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let mut p = st.finish(&s);
        let result = analyze(&mut p);
        assert!(result.repairs.is_empty());
        assert!(!result.partition.has_warnings());
        assert_eq!(
            result.partition.layout_of(x.exp.as_sym().unwrap()),
            DataLayout::Partitioned
        );
    }

    #[test]
    fn column_access_classified_as_all() {
        // Direct check of the Spread form: x(i*cols + j) with i inner.
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let data = m.data(&mut st);
        let cols = m.cols(&mut st);
        let rows = m.rows(&mut st);
        let zero = st.lit_f(0.0);
        let col_sums = st.collect(&cols, |st, j| {
            let d = data.clone();
            let c = cols.clone();
            let j = j.clone();
            st.reduce(
                &rows,
                move |st, i| {
                    let base = st.mul(i, &c);
                    let idx = st.add(&base, &j);
                    st.read(&d, &idx)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let p = st.finish(&col_sums);
        let rep = stencil::analyze(&p);
        assert_eq!(
            rep.global_of(data.exp.as_sym().unwrap()),
            Some(Stencil::All),
            "column-major access must not be Interval"
        );
    }
}
