#![warn(missing_docs)]

//! # DMLL distribution analyses (§4)
//!
//! * [`stencil`] — the read-stencil analysis: classify every collection read
//!   inside a multiloop as `Interval` / `Const` / `All` / `Unknown` using
//!   affine analysis of the index expression, then join per-collection
//!   stencils across loops.
//! * [`partition`] — the partitioning analysis (Algorithm 1): a forward
//!   dataflow that propagates `Local` / `Partitioned` layouts from annotated
//!   data sources through parallel patterns, warning on sequential
//!   consumption of partitioned data (with a whitelist).
//! * [`plan`] — exports the two reports as a per-loop access plan
//!   (partition / broadcast / fallback per collection) that the runtime
//!   data plane consumes directly.
//! * [`driver`] — ties the two together per §4.2: when a partitioned
//!   collection is read with a problematic stencil, attempt the Figure 3
//!   rewrites one at a time and keep whichever repairs the access pattern;
//!   otherwise fall back to runtime data movement with a warning.

pub mod driver;
pub mod partition;
pub mod plan;
pub mod stencil;

pub use driver::{analyze, improve_stencils, AnalysisResult};
pub use partition::{DataLayout, PartitionReport, Warning};
pub use plan::{
    annotate_trips, export as export_plan, trip_counts, LoopPlan, Placement, ProgramPlan, TripCount,
};
pub use stencil::{Stencil, StencilReport};
