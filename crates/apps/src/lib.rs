#![warn(missing_docs)]

//! # Benchmark applications (§6)
//!
//! Every workload of the paper's evaluation, written against the implicitly
//! parallel `dmll-frontend` API exactly as its source listing suggests, and
//! validated against the hand-optimized native implementations in
//! `dmll-baselines`:
//!
//! | Benchmark | Module | Headline transformations (Table 2) |
//! |---|---|---|
//! | TPC-H Query 1 | [`q1`] | GroupBy-Reduce, pipeline fusion, AoS→SoA, CSE, DFE |
//! | Gene Barcoding | [`gene`] | pipeline fusion, DFE |
//! | GDA | [`gda`] | pipeline fusion, horizontal fusion, CSE |
//! | k-means | [`kmeans`] | Conditional Reduce, Row-to-Column Reduce, fusion |
//! | Logistic Regression | [`logreg`] | Column-to-Row + Row-to-Column Reduce |
//! | PageRank | [`pagerank`] | push↔pull (domain-specific), pipeline fusion |
//! | Triangle Counting | [`triangles`] | push↔pull (domain-specific), pipeline fusion |
//! | Gibbs Sampling | [`gibbs`] | nested parallelism (per-socket replicas) |
//!
//! Each module exposes `stage_*` constructors returning the
//! [`dmll_core::Program`] plus runners that execute via `dmll-interp` and
//! decode the outputs.

pub mod gda;
pub mod gene;
pub mod gibbs;
pub mod kmeans;
pub mod logreg;
pub mod pagerank;
pub mod q1;
pub mod triangles;
pub mod util;
