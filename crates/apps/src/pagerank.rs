//! PageRank in both the *pull* model (common in shared memory) and the
//! *push* model (common in distributed systems).
//!
//! The push↔pull switch is the domain-specific transformation Table 2 lists
//! for the graph benchmarks: pull gathers in-neighbor ranks with random
//! reads (an `Unknown` stencil — the fundamental communication of graph
//! problems, §4.2); push re-expresses the same computation as a
//! `BucketReduce` over the edge list keyed by destination vertex.

use dmll_core::{LayoutHint, Program, Ty};
use dmll_data::graph::CsrGraph;
use dmll_frontend::Stage;
use dmll_interp::{eval, EvalError, Value};

/// Stage one pull-model iteration.
/// Inputs: `rev_offsets`, `rev_targets` (reverse CSR), `out_degree`,
/// `ranks`. Output: new ranks.
pub fn stage_pagerank_pull(damping: f64) -> Program {
    let mut st = Stage::new();
    let offs = st.input("rev_offsets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let targets = st.input("rev_targets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let degree = st.input("out_degree", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let ranks = st.input("ranks", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let n = st.len(&ranks);
    let nf = st.i2f(&n);
    let d = st.lit_f(damping);
    let one = st.lit_f(1.0);
    let keep = st.sub(&one, &d);
    let base = st.div(&keep, &nf);
    let new_ranks = st.collect(&n, |st, v| {
        let start = st.read(&offs, v);
        let onei = st.lit_i(1);
        let v1 = st.add(v, &onei);
        let end = st.read(&offs, &v1);
        let m = st.sub(&end, &start);
        let zero = st.lit_f(0.0);
        let targets = targets.clone();
        let degree = degree.clone();
        let ranks = ranks.clone();
        let start2 = start.clone();
        let sum = st.reduce(
            &m,
            move |st, t| {
                let idx = st.add(&start2, t);
                let u = st.read(&targets, &idx);
                let deg = st.read(&degree, &u);
                let r = st.read(&ranks, &u);
                let contrib = st.div(&r, &deg);
                let z = st.lit_f(0.0);
                let pos = st.gt(&deg, &z);
                st.mux(&pos, &contrib, &z)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let damped = st.mul(&d, &sum);
        st.add(&base, &damped)
    });
    st.finish(&new_ranks)
}

/// Stage one push-model iteration over the edge list: contributions are
/// bucket-reduced by destination, then each vertex looks its total up.
/// Inputs: `edge_src`, `edge_dst`, `out_degree`, `ranks`.
pub fn stage_pagerank_push(damping: f64) -> Program {
    let mut st = Stage::new();
    let src = st.input("edge_src", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let dst = st.input("edge_dst", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let degree = st.input("out_degree", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let ranks = st.input("ranks", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let e = st.len(&src);
    let n = st.len(&ranks);
    let nf = st.i2f(&n);
    let d = st.lit_f(damping);
    let one = st.lit_f(1.0);
    let keep = st.sub(&one, &d);
    let base = st.div(&keep, &nf);
    let fzero = st.lit_f(0.0);
    let dst2 = dst.clone();
    let contribs = st.bucket_reduce(
        &e,
        move |st, i| st.read(&dst2, i),
        move |st, i| {
            let u = st.read(&src, i);
            let r = st.read(&ranks, &u);
            let deg = st.read(&degree, &u);
            st.div(&r, &deg)
        },
        |st, a, b| st.add(a, b),
        Some(&fzero),
    );
    let new_ranks = st.collect(&n, |st, v| {
        let z = st.lit_f(0.0);
        let sum = st.bucket_get(&contribs, v, Some(&z));
        let damped = st.mul(&d, &sum);
        st.add(&base, &damped)
    });
    st.finish(&new_ranks)
}

/// Inputs shared by both models plus the model-specific graph encoding.
pub fn inputs_pull(g: &CsrGraph, ranks: &[f64]) -> Vec<(&'static str, Value)> {
    let rev = g.reversed();
    let deg: Vec<f64> = (0..g.num_vertices()).map(|v| g.degree(v) as f64).collect();
    vec![
        ("rev_offsets", Value::i64_arr(rev.offsets.clone())),
        ("rev_targets", Value::i64_arr(rev.targets.clone())),
        ("out_degree", Value::f64_arr(deg)),
        ("ranks", Value::f64_arr(ranks.to_vec())),
    ]
}

/// Edge-list encoding for the push model.
pub fn inputs_push(g: &CsrGraph, ranks: &[f64]) -> Vec<(&'static str, Value)> {
    let mut src = Vec::with_capacity(g.num_edges());
    let mut dst = Vec::with_capacity(g.num_edges());
    for v in 0..g.num_vertices() {
        for &t in g.neighbors(v) {
            src.push(v as i64);
            dst.push(t);
        }
    }
    let deg: Vec<f64> = (0..g.num_vertices()).map(|v| g.degree(v) as f64).collect();
    vec![
        ("edge_src", Value::i64_arr(src)),
        ("edge_dst", Value::i64_arr(dst)),
        ("out_degree", Value::f64_arr(deg)),
        ("ranks", Value::f64_arr(ranks.to_vec())),
    ]
}

/// Run one iteration of either staged model.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(program: &Program, inputs: &[(&str, Value)]) -> Result<Vec<f64>, EvalError> {
    Ok(eval(program, inputs)?.to_f64_vec().expect("rank vector"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_analysis::Stencil;
    use dmll_baselines::handopt;
    use dmll_data::graph::rmat;

    #[test]
    fn pull_matches_handopt_exactly() {
        let g = rmat(7, 4, 3);
        let n = g.num_vertices();
        let ranks = vec![1.0 / n as f64; n];
        let p = stage_pagerank_pull(0.85);
        let got = run(&p, &inputs_pull(&g, &ranks)).unwrap();
        let want = handopt::pagerank_iter(&g, &g.reversed(), &ranks, 0.85);
        assert!(crate::util::close(&got, &want, 1e-12));
    }

    #[test]
    fn push_agrees_with_pull() {
        let g = rmat(6, 5, 9);
        let n = g.num_vertices();
        let ranks: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let pull = stage_pagerank_pull(0.85);
        let push = stage_pagerank_push(0.85);
        let a = run(&pull, &inputs_pull(&g, &ranks)).unwrap();
        let b = run(&push, &inputs_push(&g, &ranks)).unwrap();
        // Different summation orders: tolerance comparison.
        assert!(crate::util::close(&a, &b, 1e-9));
    }

    #[test]
    fn pull_gather_is_unknown_stencil() {
        // The fundamental communication of graph problems: the ranks array
        // is read at data-dependent indices, and no Fig. 3 rule repairs it.
        let mut p = stage_pagerank_pull(0.85);
        let result = dmll_analysis::analyze(&mut p);
        let ranks_sym = p.input("ranks").unwrap().sym;
        assert_eq!(result.stencils.global_of(ranks_sym), Some(Stencil::Unknown));
        assert!(result.partition.has_warnings());
    }

    #[test]
    fn push_gather_is_named_not_unknown() {
        // The push model's per-edge reads `ranks(src(i))`/`degree(src(i))`
        // are data-dependent but recognized: the stencil names the edge_src
        // index column and the partition warning explains the fallback
        // instead of an anonymous Unknown counter bump.
        let mut p = stage_pagerank_push(0.85);
        let result = dmll_analysis::analyze(&mut p);
        let src_sym = p.input("edge_src").unwrap().sym;
        let ranks_sym = p.input("ranks").unwrap().sym;
        let deg_sym = p.input("out_degree").unwrap().sym;
        assert_eq!(
            result.stencils.global_of(ranks_sym),
            Some(Stencil::Gather(src_sym))
        );
        assert_eq!(
            result.stencils.global_of(deg_sym),
            Some(Stencil::Gather(src_sym))
        );
        let explained = |sym| {
            result
                .partition
                .warnings
                .iter()
                .any(|w| w.sym == Some(sym) && w.message.contains("push-style graph access"))
        };
        assert!(explained(ranks_sym), "{:?}", result.partition.warnings);
        assert!(explained(deg_sym), "{:?}", result.partition.warnings);
        // The exported plan still falls back (the communication is real),
        // but every fallback is explained.
        let plan = dmll_analysis::plan::export(&result);
        assert!(plan.total_fallbacks() >= 2, "{plan:?}");
        assert_eq!(plan.total_unexplained(), 0, "{plan:?}");
    }

    #[test]
    fn repeated_iterations_converge() {
        let g = rmat(6, 6, 11);
        let n = g.num_vertices();
        let p = stage_pagerank_pull(0.85);
        let mut ranks = vec![1.0 / n as f64; n];
        let mut delta = f64::INFINITY;
        for _ in 0..40 {
            let next = run(&p, &inputs_pull(&g, &ranks)).unwrap();
            delta = ranks
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>();
            ranks = next;
        }
        assert!(delta < 1e-3, "converged: {delta}");
    }
}
