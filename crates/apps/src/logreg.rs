//! Logistic regression — the paper's loop-interchange example (§3.2).
//!
//! Staged in the textbook form: for each feature j, a nested summation over
//! the samples. The Column-to-Row Reduce rule restructures it to traverse
//! the sample dimension once (for CPUs/clusters); Row-to-Column restores
//! scalar reductions for the GPU kernel.

use dmll_core::{LayoutHint, MathFn, Program, Ty};
use dmll_data::matrix::DenseMatrix;
use dmll_frontend::Stage;
use dmll_interp::{eval, EvalError, Value};

/// Stage one gradient-ascent step with learning rate `alpha`.
/// Output: the updated parameter vector.
pub fn stage_logreg(alpha: f64) -> Program {
    let mut st = Stage::new();
    let x = st.input_matrix("x", LayoutHint::Partitioned);
    let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let theta = st.input("theta", Ty::arr(Ty::F64), LayoutHint::Local);
    let cols = x.cols(&mut st);
    let rows = x.rows(&mut st);
    let alpha = st.lit_f(alpha);
    let zero = st.lit_f(0.0);
    let new_theta = st.collect(&cols, |st, j| {
        let jc = j.clone();
        let x2 = x.clone();
        let y2 = y.clone();
        let th = theta.clone();
        let gradient = st.reduce(
            &rows,
            move |st, i| {
                let xij = x2.get(st, i, &jc);
                let yi = st.read(&y2, i);
                // hyp = sigmoid(theta . x_i)
                let dot = x2.row_dot(st, i, &th);
                let nd = st.neg(&dot);
                let e = st.math(MathFn::Exp, &nd);
                let one = st.lit_f(1.0);
                let denom = st.add(&one, &e);
                let hyp = st.div(&one, &denom);
                let err = st.sub(&yi, &hyp);
                st.mul(&xij, &err)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let tj = st.read(&theta, j);
        let step = st.mul(&alpha, &gradient);
        st.add(&tj, &step)
    });
    st.finish(&new_theta)
}

/// Run one step; returns the new parameter vector.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(
    program: &Program,
    x: &DenseMatrix,
    y: &[f64],
    theta: &[f64],
) -> Result<Vec<f64>, EvalError> {
    let out = eval(
        program,
        &[
            ("x", crate::util::matrix_value(x)),
            ("y", Value::f64_arr(y.to_vec())),
            ("theta", Value::f64_arr(theta.to_vec())),
        ],
    )?;
    Ok(out.to_f64_vec().expect("theta vector"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_data::matrix::labeled_binary;
    use dmll_transform::{pipeline, Target};

    #[test]
    fn matches_handopt_step() {
        let (x, y) = labeled_binary(60, 4, 3);
        let theta = vec![0.05; 4];
        let p = stage_logreg(0.1);
        let got = run(&p, &x, &y, &theta).unwrap();
        let want = handopt::logreg_iter(&x, &y, &theta, 0.1);
        assert!(crate::util::close(&got, &want, 1e-9), "{got:?} vs {want:?}");
    }

    #[test]
    fn cluster_recipe_vectorizes_and_matches() {
        let (x, y) = labeled_binary(40, 3, 5);
        let theta = vec![0.0; 3];
        let mut p = stage_logreg(0.05);
        let baseline = run(&p, &x, &y, &theta).unwrap();
        let report = pipeline::optimize(&mut p, Target::Cluster);
        assert!(
            report.applied("Column-to-Row Reduce") >= 1,
            "{:?}",
            report.passes
        );
        let got = run(&p, &x, &y, &theta).unwrap();
        assert!(crate::util::close(&got, &baseline, 1e-12));
    }

    #[test]
    fn gpu_after_cluster_restores_scalar_reduces() {
        let (x, y) = labeled_binary(30, 3, 6);
        let theta = vec![0.0; 3];
        let mut p = stage_logreg(0.05);
        let baseline = run(&p, &x, &y, &theta).unwrap();
        pipeline::optimize(&mut p, Target::Cluster);
        let report = pipeline::optimize(&mut p, Target::Gpu);
        assert!(
            report.applied("Row-to-Column Reduce") >= 1,
            "{:?}",
            report.passes
        );
        let got = run(&p, &x, &y, &theta).unwrap();
        assert!(crate::util::close(&got, &baseline, 1e-12));
        // And the CUDA backend accepts the result.
        assert!(dmll_codegen::emit_cuda(&p).is_ok());
    }

    #[test]
    fn training_reduces_loss() {
        let (x, y) = labeled_binary(120, 4, 9);
        let p = stage_logreg(0.1);
        let mut theta = vec![0.0; 4];
        let loss = |theta: &[f64]| -> f64 {
            (0..x.rows)
                .map(|i| {
                    let dot: f64 = (0..4).map(|j| x.get(i, j) * theta[j]).sum();
                    let h = (1.0 / (1.0 + (-dot).exp())).clamp(1e-9, 1.0 - 1e-9);
                    -(y[i] * h.ln() + (1.0 - y[i]) * (1.0 - h).ln())
                })
                .sum()
        };
        let l0 = loss(&theta);
        for _ in 0..10 {
            theta = run(&p, &x, &y, &theta).unwrap();
        }
        assert!(loss(&theta) < l0, "{} -> {}", l0, loss(&theta));
    }
}
