//! Gene Barcoding: group sequencer reads by molecular barcode and reduce
//! each group (counts and mean quality).

use dmll_core::{LayoutHint, Program, Ty};
use dmll_frontend::Stage;
use dmll_interp::{eval, EvalError, Value};

/// Stage the pipeline. Output: `(barcodes, counts, mean_quality)`.
pub fn stage_gene() -> Program {
    let mut st = Stage::new();
    let barcode = st.input("barcode", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let quality = st.input("quality", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let n = st.len(&barcode);
    let izero = st.lit_i(0);
    let b1 = barcode.clone();
    let b2 = barcode.clone();
    let counts = st.bucket_reduce(
        &n,
        move |st, i| st.read(&b1, i),
        |st, _i| st.lit_i(1),
        |st, a, b| st.add(a, b),
        Some(&izero),
    );
    let qsums = st.bucket_reduce(
        &n,
        move |st, i| st.read(&b2, i),
        move |st, i| st.read(&quality, i),
        |st, a, b| st.add(a, b),
        Some(&izero),
    );
    let keys = st.bucket_keys(&counts);
    let cv = st.bucket_values(&counts);
    let qv = st.bucket_values(&qsums);
    let means = st.zip_with(&qv, &cv, |st, q, c| {
        let qf = st.i2f(q);
        let cf = st.i2f(c);
        st.div(&qf, &cf)
    });
    let out = st.tuple(&[&keys, &cv, &means]);
    st.finish(&out)
}

/// Decoded per-barcode statistics, sorted by barcode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BarcodeStats {
    /// Barcode id.
    pub barcode: i64,
    /// Read count.
    pub count: i64,
    /// Mean quality.
    pub mean_quality: f64,
}

/// Run and decode.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(
    program: &Program,
    barcode: &[i64],
    quality: &[i64],
) -> Result<Vec<BarcodeStats>, EvalError> {
    let out = eval(
        program,
        &[
            ("barcode", Value::i64_arr(barcode.to_vec())),
            ("quality", Value::i64_arr(quality.to_vec())),
        ],
    )?;
    let Value::Tuple(parts) = out else {
        return Err(EvalError::TypeMismatch("gene output".into()));
    };
    let keys = parts[0].to_i64_vec().expect("keys");
    let counts = parts[1].to_i64_vec().expect("counts");
    let means = parts[2].to_f64_vec().expect("means");
    let mut rows: Vec<BarcodeStats> = keys
        .into_iter()
        .enumerate()
        .map(|(i, barcode)| BarcodeStats {
            barcode,
            count: counts[i],
            mean_quality: means[i],
        })
        .collect();
    rows.sort_by_key(|r| r.barcode);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_core::printer::count_loops;
    use dmll_data::gene;
    use dmll_transform::{pipeline, Target};

    fn check(rows: &[BarcodeStats], barcode: &[i64], quality: &[i64], num: usize) {
        let (counts, means) = handopt::gene_barcode_stats(barcode, quality, num);
        for r in rows {
            assert_eq!(r.count, counts[r.barcode as usize], "{r:?}");
            assert!((r.mean_quality - means[r.barcode as usize]).abs() < 1e-9);
        }
        let nonzero = counts.iter().filter(|c| **c > 0).count();
        assert_eq!(rows.len(), nonzero);
    }

    #[test]
    fn matches_handopt() {
        let reads = gene::gen_reads(1500, 40, 8, 7);
        let cols = gene::to_columns(&reads);
        let p = stage_gene();
        let rows = run(&p, &cols.barcode, &cols.quality).unwrap();
        check(&rows, &cols.barcode, &cols.quality, 40);
    }

    #[test]
    fn optimizer_fuses_both_groupings() {
        let reads = gene::gen_reads(1000, 25, 4, 8);
        let cols = gene::to_columns(&reads);
        let mut p = stage_gene();
        let baseline = run(&p, &cols.barcode, &cols.quality).unwrap();
        let report = pipeline::optimize(&mut p, Target::Numa);
        assert!(
            report.applied("horizontal fusion") >= 1,
            "{:?}",
            report.passes
        );
        // One bucket traversal plus the mean zip.
        assert!(count_loops(&p) <= 2, "{p}");
        let rows = run(&p, &cols.barcode, &cols.quality).unwrap();
        assert_eq!(rows, baseline);
    }
}
