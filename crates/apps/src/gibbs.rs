//! Gibbs sampling on factor graphs (§6.3, the DeepDive/DimmWitted
//! workload).
//!
//! The paper's parallelization is *nested*: a distinct model replica per
//! socket (outer parallelism), Hogwild! updates across the threads of a
//! socket (inner parallelism), and averaging at the end. We stage the
//! data-parallel (Jacobi-style, synchronous) sweep as a multiloop — each
//! variable resamples from the *previous* assignment — and run one staged
//! program per replica with independent seeds, averaging the marginals,
//! which is exactly the replica structure with deterministic coin flips.

use dmll_baselines::handopt::hash_unit;
use dmll_core::{LayoutHint, Program, Ty};
use dmll_data::FactorGraph;
use dmll_frontend::Stage;
use dmll_interp::{EvalError, Interp, Value};

/// Stage one synchronous sweep. Inputs: the factor graph in flat arrays
/// (`bias`, `fac_a`, `fac_b`, `fac_w`, `adj_offsets`, `adj`), the current
/// `assignment` (±1 as i64), and `seed`/`sweep` scalars. Output: the new
/// assignment.
pub fn stage_gibbs_sweep() -> Program {
    let mut st = Stage::new();
    let bias = st.input("bias", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let fac_a = st.input("fac_a", Ty::arr(Ty::I64), LayoutHint::Local);
    let fac_b = st.input("fac_b", Ty::arr(Ty::I64), LayoutHint::Local);
    let fac_w = st.input("fac_w", Ty::arr(Ty::F64), LayoutHint::Local);
    let offs = st.input("adj_offsets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let adj = st.input("adj", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let assign = st.input("assignment", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let seed = st.input("seed", Ty::I64, LayoutHint::Local);
    let sweep = st.input("sweep", Ty::I64, LayoutHint::Local);
    let n = st.len(&bias);
    let one = st.lit_i(1);
    let new_assign = st.collect(&n, |st, v| {
        let start = st.read(&offs, v);
        let v1 = st.add(v, &one);
        let end = st.read(&offs, &v1);
        let m = st.sub(&end, &start);
        let b = st.read(&bias, v);
        let (adj, fa, fb, fw, asg) = (
            adj.clone(),
            fac_a.clone(),
            fac_b.clone(),
            fac_w.clone(),
            assign.clone(),
        );
        let start2 = start.clone();
        let v2 = v.clone();
        let field = st.reduce(
            &m,
            move |st, t| {
                let idx = st.add(&start2, t);
                let f = st.read(&adj, &idx);
                let a = st.read(&fa, &f);
                let bb = st.read(&fb, &f);
                let w = st.read(&fw, &f);
                let is_a = st.eq(&a, &v2);
                let other = st.mux(&is_a, &bb, &a);
                let s = st.read(&asg, &other);
                let sf = st.i2f(&s);
                st.mul(&w, &sf)
            },
            |st, a, b| st.add(a, b),
            Some(&b),
        );
        // p = sigmoid(2 * field); sample via the counter-based hash.
        let two = st.lit_f(2.0);
        let f2 = st.mul(&two, &field);
        let nf = st.neg(&f2);
        let e = st.math(dmll_core::MathFn::Exp, &nf);
        let onef = st.lit_f(1.0);
        let denom = st.add(&onef, &e);
        let p = st.div(&onef, &denom);
        let u = st.extern_call("hash_unit", &[&seed, &sweep, v], Ty::F64, false, false);
        let lt = st.lt(&u, &p);
        let pos = st.lit_i(1);
        let neg = st.lit_i(-1);
        st.mux(&lt, &pos, &neg)
    });
    st.finish(&new_assign)
}

/// Flat-array inputs for a factor graph.
pub fn inputs_for(
    fg: &FactorGraph,
    assignment: &[i8],
    seed: u64,
    sweep: u64,
) -> Vec<(&'static str, Value)> {
    vec![
        ("bias", Value::f64_arr(fg.bias.clone())),
        (
            "fac_a",
            Value::i64_arr(fg.factors.iter().map(|f| f.a as i64).collect()),
        ),
        (
            "fac_b",
            Value::i64_arr(fg.factors.iter().map(|f| f.b as i64).collect()),
        ),
        (
            "fac_w",
            Value::f64_arr(fg.factors.iter().map(|f| f.weight).collect()),
        ),
        (
            "adj_offsets",
            Value::i64_arr(fg.adj_offsets.iter().map(|o| *o as i64).collect()),
        ),
        (
            "adj",
            Value::i64_arr(fg.adj.iter().map(|a| *a as i64).collect()),
        ),
        (
            "assignment",
            Value::i64_arr(assignment.iter().map(|s| *s as i64).collect()),
        ),
        ("seed", Value::I64(seed as i64)),
        ("sweep", Value::I64(sweep as i64)),
    ]
}

/// The extern registry a Gibbs program needs: the counter-based
/// `hash_unit` coin flip. Shared by the apps runner and the tier bench so
/// every executor resolves the same handler.
pub fn externs() -> dmll_interp::Externs {
    let mut ex = dmll_interp::Externs::new();
    ex.insert("hash_unit", |args: &[Value]| {
        let seed = args[0].as_i64().unwrap_or(0) as u64;
        let sweep = args[1].as_i64().unwrap_or(0) as u64;
        let v = args[2].as_i64().unwrap_or(0) as u64;
        Ok(Value::F64(hash_unit(seed, sweep, v)))
    });
    ex
}

/// Run one staged sweep.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run_sweep(
    program: &Program,
    fg: &FactorGraph,
    assignment: &[i8],
    seed: u64,
    sweep: u64,
) -> Result<Vec<i8>, EvalError> {
    let interp = Interp::new(program).with_externs(externs());
    let inputs = inputs_for(fg, assignment, seed, sweep);
    let out = interp.run(&inputs)?;
    Ok(out
        .to_i64_vec()
        .expect("assignment")
        .into_iter()
        .map(|v| v as i8)
        .collect())
}

/// Reference Jacobi sweep in plain Rust (same coin flips).
pub fn jacobi_reference(fg: &FactorGraph, assignment: &[i8], seed: u64, sweep: u64) -> Vec<i8> {
    (0..fg.num_vars())
        .map(|v| {
            let field = fg.local_field(v, assignment);
            let p = 1.0 / (1.0 + (-2.0 * field).exp());
            if hash_unit(seed, sweep, v as u64) < p {
                1
            } else {
                -1
            }
        })
        .collect()
}

/// Run `sweeps` sweeps on `replicas` independent replicas (the per-socket
/// models) and average the positive-state marginals per variable.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run_replicated(
    program: &Program,
    fg: &FactorGraph,
    replicas: usize,
    sweeps: u64,
    seed: u64,
) -> Result<Vec<f64>, EvalError> {
    let n = fg.num_vars();
    let mut positive = vec![0.0f64; n];
    for r in 0..replicas {
        let mut asg = vec![1i8; n];
        for sweep in 0..sweeps {
            asg = run_sweep(program, fg, &asg, seed + r as u64 * 1_000_003, sweep)?;
            for (v, s) in asg.iter().enumerate() {
                if *s == 1 {
                    positive[v] += 1.0;
                }
            }
        }
    }
    let total = (replicas as f64) * (sweeps as f64);
    for p in &mut positive {
        *p /= total;
    }
    Ok(positive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_data::factor::gen_factor_graph;

    #[test]
    fn staged_sweep_matches_reference() {
        let fg = gen_factor_graph(60, 4, 5);
        let asg = vec![1i8; 60];
        let p = stage_gibbs_sweep();
        for sweep in 0..3 {
            let got = run_sweep(&p, &fg, &asg, 9, sweep).unwrap();
            let want = jacobi_reference(&fg, &asg, 9, sweep);
            assert_eq!(got, want, "sweep {sweep}");
        }
    }

    #[test]
    fn chains_are_deterministic_per_seed() {
        let fg = gen_factor_graph(40, 3, 6);
        let p = stage_gibbs_sweep();
        let m1 = run_replicated(&p, &fg, 2, 4, 100).unwrap();
        let m2 = run_replicated(&p, &fg, 2, 4, 100).unwrap();
        assert_eq!(m1, m2);
        let m3 = run_replicated(&p, &fg, 2, 4, 101).unwrap();
        assert_ne!(m1, m3);
    }

    #[test]
    fn marginals_follow_bias() {
        // Strongly biased isolated variables: the marginal should track the
        // bias sign.
        let fg = FactorGraph {
            bias: vec![3.0, -3.0, 3.0],
            factors: vec![],
            adj_offsets: vec![0, 0, 0, 0],
            adj: vec![],
        };
        let p = stage_gibbs_sweep();
        let marg = run_replicated(&p, &fg, 4, 25, 7).unwrap();
        assert!(marg[0] > 0.9, "{marg:?}");
        assert!(marg[1] < 0.1, "{marg:?}");
        assert!(marg[2] > 0.9, "{marg:?}");
    }

    #[test]
    fn missing_extern_is_reported() {
        let fg = gen_factor_graph(10, 2, 3);
        let p = stage_gibbs_sweep();
        let inputs = inputs_for(&fg, &[1i8; 10], 1, 0);
        let err = dmll_interp::eval(&p, &inputs).unwrap_err();
        assert_eq!(err, EvalError::UnknownExtern("hash_unit".into()));
    }
}
