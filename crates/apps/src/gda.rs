//! Gaussian Discriminant Analysis: class prior, per-class means and pooled
//! covariance. Iterates the dataset twice (means, then covariance) — the
//! paper notes GDA "iterates over its dataset twice".

use dmll_core::{LayoutHint, Program, Ty};
use dmll_data::matrix::DenseMatrix;
use dmll_frontend::{Stage, Val};
use dmll_interp::{eval, EvalError, Value};

/// Stage GDA for binary labels. Output:
/// `(phi, mu0, mu1, sigma_flat)` where `sigma_flat` is row-major d×d.
pub fn stage_gda() -> Program {
    let mut st = Stage::new();
    let x = st.input_matrix("x", LayoutHint::Partitioned);
    let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let rows = x.rows(&mut st);
    let cols = x.cols(&mut st);

    // Pass 1: per-class sums and counts (conditional vector reduces).
    let two = st.lit_i(2);
    let izero = st.lit_i(0);
    let class_stats = st.collect(&two, |st, c| {
        let cf = st.i2f(c);
        let c1 = cf.clone();
        let c2 = cf.clone();
        let y1 = y.clone();
        let y2 = y.clone();
        let m = x.clone();
        let sum = st.reduce_if(
            &rows,
            Some(move |st: &mut Stage, j: &Val| {
                let yj = st.read(&y1, j);
                st.eq(&yj, &c1)
            }),
            move |st, j| m.row(st, j),
            |st, a, b| st.vec_add(a, b),
            None,
        );
        let cnt = st.reduce_if(
            &rows,
            Some(move |st: &mut Stage, j: &Val| {
                let yj = st.read(&y2, j);
                st.eq(&yj, &c2)
            }),
            |st, _j| st.lit_i(1),
            |st, a, b| st.add(a, b),
            Some(&izero),
        );
        let one = st.lit_i(1);
        let safe = st.max(&cnt, &one);
        let cf2 = st.i2f(&safe);
        let mu = st.map(&sum, move |st, s| st.div(s, &cf2));
        st.tuple(&[&mu, &cnt])
    });
    let z = st.lit_i(0);
    let o = st.lit_i(1);
    let s0 = st.read(&class_stats, &z);
    let s1 = st.read(&class_stats, &o);
    let mu0 = st.tuple_get(&s0, 0);
    let mu1 = st.tuple_get(&s1, 0);
    let n1 = st.tuple_get(&s1, 1);
    let n1f = st.i2f(&n1);
    let rf = st.i2f(&rows);
    let phi = st.div(&n1f, &rf);

    // Pass 2: pooled covariance — a vector (length d²) reduction over rows.
    let d2 = st.mul(&cols, &cols);
    let sigma_sum = st.reduce(
        &rows,
        |st, i| {
            let m = x.clone();
            let yv = y.clone();
            let mu0 = mu0.clone();
            let mu1 = mu1.clone();
            let half = st.lit_f(0.5);
            let yi = st.read(&yv, i);
            let is1 = st.gt(&yi, &half);
            let i = i.clone();
            let colsv = m.cols(st);
            st.collect(&d2, move |st, t| {
                let a = st.div(t, &colsv);
                let b = st.rem(t, &colsv);
                let xa = m.get(st, &i, &a);
                let xb = m.get(st, &i, &b);
                let mu_a0 = st.read(&mu0, &a);
                let mu_a1 = st.read(&mu1, &a);
                let mu_b0 = st.read(&mu0, &b);
                let mu_b1 = st.read(&mu1, &b);
                let mu_a = st.mux(&is1, &mu_a1, &mu_a0);
                let mu_b = st.mux(&is1, &mu_b1, &mu_b0);
                let da = st.sub(&xa, &mu_a);
                let db = st.sub(&xb, &mu_b);
                st.mul(&da, &db)
            })
        },
        |st, a, b| st.vec_add(a, b),
        None,
    );
    let sigma = st.map(&sigma_sum, |st, s| st.div(s, &rf));
    let out = st.tuple(&[&phi, &mu0, &mu1, &sigma]);
    st.finish(&out)
}

/// Decoded GDA output.
#[derive(Clone, Debug, PartialEq)]
pub struct GdaOut {
    /// P(y = 1).
    pub phi: f64,
    /// Class-0 mean.
    pub mu0: Vec<f64>,
    /// Class-1 mean.
    pub mu1: Vec<f64>,
    /// Pooled covariance, row-major.
    pub sigma: Vec<f64>,
}

/// Run GDA.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(program: &Program, x: &DenseMatrix, y: &[f64]) -> Result<GdaOut, EvalError> {
    let out = eval(
        program,
        &[
            ("x", crate::util::matrix_value(x)),
            ("y", Value::f64_arr(y.to_vec())),
        ],
    )?;
    let Value::Tuple(parts) = out else {
        return Err(EvalError::TypeMismatch("gda output".into()));
    };
    Ok(GdaOut {
        phi: parts[0].as_f64().expect("phi"),
        mu0: parts[1].to_f64_vec().expect("mu0"),
        mu1: parts[2].to_f64_vec().expect("mu1"),
        sigma: parts[3].to_f64_vec().expect("sigma"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_data::matrix::labeled_binary;
    use dmll_transform::{pipeline, Target};

    #[test]
    fn matches_handopt() {
        let (x, y) = labeled_binary(80, 3, 12);
        let p = stage_gda();
        let got = run(&p, &x, &y).unwrap();
        let want = handopt::gda(&x, &y);
        assert!((got.phi - want.phi).abs() < 1e-12);
        assert!(crate::util::close(&got.mu0, &want.mu0, 1e-9));
        assert!(crate::util::close(&got.mu1, &want.mu1, 1e-9));
        assert!(crate::util::close(&got.sigma, &want.sigma, 1e-9));
    }

    #[test]
    fn numa_recipe_applies_conditional_reduce_and_matches() {
        let (x, y) = labeled_binary(50, 3, 13);
        let mut p = stage_gda();
        let baseline = run(&p, &x, &y).unwrap();
        let report = pipeline::optimize(&mut p, Target::Numa);
        assert!(
            report.applied("Conditional Reduce") >= 2,
            "{:?}",
            report.passes
        );
        let got = run(&p, &x, &y).unwrap();
        assert_eq!(got, baseline);
    }
}
