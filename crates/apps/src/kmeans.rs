//! k-means clustering — the paper's running example (Figure 1).
//!
//! Staged in the *shared-memory* style of Figure 1 (top): nearest-centroid
//! assignment, then per-cluster conditional reductions inside the centroid
//! update loop. The Conditional Reduce rule plus fusion turn this into the
//! distributed-friendly Figure 5 form automatically.

use dmll_core::{LayoutHint, Program};
use dmll_data::matrix::DenseMatrix;
use dmll_frontend::{Stage, Val};
use dmll_interp::{eval, EvalError, Value};

/// Stage one iteration for `k` clusters. Output:
/// `(new_centroid_rows, assignment)`.
pub fn stage_kmeans(k: i64) -> Program {
    let mut st = Stage::new();
    let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
    let clusters = st.input_matrix("clusters", LayoutHint::Local);
    let rows = matrix.rows(&mut st);
    let kv = st.lit_i(k);

    // Assignment: nearest centroid per row.
    let assigned = st.collect(&rows, |st, i| {
        let dists = clusters.map_rows(st, |st, c| matrix.row_dist2(st, i, &clusters, c));
        st.min_index(&dists)
    });

    // Update: conditional vector sum and count per cluster, then average.
    let izero = st.lit_i(0);
    let new_clusters = st.collect(&kv, |st, i| {
        let i1 = i.clone();
        let i2 = i.clone();
        let a1 = assigned.clone();
        let a2 = assigned.clone();
        let m = matrix.clone();
        let sum = st.reduce_if(
            &rows,
            Some(move |st: &mut Stage, j: &Val| {
                let aj = st.read(&a1, j);
                st.eq(&aj, &i1)
            }),
            move |st, j| m.row(st, j),
            |st, a, b| st.vec_add(a, b),
            None,
        );
        let cnt = st.reduce_if(
            &rows,
            Some(move |st: &mut Stage, j: &Val| {
                let aj = st.read(&a2, j);
                st.eq(&aj, &i2)
            }),
            |st, _j| st.lit_i(1),
            |st, a, b| st.add(a, b),
            Some(&izero),
        );
        let one = st.lit_i(1);
        let safe = st.max(&cnt, &one);
        let cf = st.i2f(&safe);
        st.map(&sum, move |st, s| st.div(s, &cf))
    });
    let out = st.tuple(&[&new_clusters, &assigned]);
    st.finish(&out)
}

/// Stage one iteration in the *distributed-memory* style of Figure 1
/// (bottom): explicitly shuffle rows with `groupRowsBy`, then average each
/// group — `clusteredData.map(e => e.sum / e.count)`.
///
/// After the GroupBy-Reduce rule and fusion, this formulation and
/// [`stage_kmeans`] reach the same optimized single-traversal shape (§3.2:
/// "we end up with the exact same optimized code").
pub fn stage_kmeans_grouped(k: i64) -> Program {
    let mut st = Stage::new();
    let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
    let clusters = st.input_matrix("clusters", LayoutHint::Local);
    let rows = matrix.rows(&mut st);
    let _ = k;

    // groupRowsBy: rows keyed by nearest centroid.
    let m1 = matrix.clone();
    let c1 = clusters.clone();
    let grouped = st.bucket_collect(
        &rows,
        move |st, i| {
            let dists = c1.map_rows(st, |st, c| m1.row_dist2(st, i, &c1, c));
            st.min_index(&dists)
        },
        {
            let m2 = matrix.clone();
            move |st, i| m2.row(st, i)
        },
    );
    let keys = st.bucket_keys(&grouped);
    let vals = st.bucket_values(&grouped);
    // clusteredData.map(e => e.sum / e.count)
    let means = st.map(&vals, |st, bucket| {
        let sum = st.reduce_elems(bucket, |st, a, b| st.vec_add(a, b));
        let n = st.len(bucket);
        let nf = st.i2f(&n);
        st.map(&sum, move |st, v| st.div(v, &nf))
    });
    let out = st.tuple(&[&keys, &means]);
    st.finish(&out)
}

/// Run the grouped formulation; returns key-sorted `(centroid, cluster id)`
/// rows (empty clusters are absent, as `groupBy` semantics imply).
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run_grouped(
    program: &Program,
    x: &DenseMatrix,
    centroids: &DenseMatrix,
) -> Result<Vec<(i64, Vec<f64>)>, EvalError> {
    let out = eval(
        program,
        &[
            ("matrix", crate::util::matrix_value(x)),
            ("clusters", crate::util::matrix_value(centroids)),
        ],
    )?;
    let Value::Tuple(parts) = out else {
        return Err(EvalError::TypeMismatch("kmeans output".into()));
    };
    let keys = parts[0].to_i64_vec().expect("keys");
    let means = parts[1].as_arr().expect("means");
    let mut rows: Vec<(i64, Vec<f64>)> = keys
        .into_iter()
        .enumerate()
        .map(|(i, key)| {
            (
                key,
                means.get(i).expect("row").to_f64_vec().expect("floats"),
            )
        })
        .collect();
    rows.sort_by_key(|(k, _)| *k);
    Ok(rows)
}

/// Run one iteration; returns `(new_centroids, assignment)`.
///
/// # Errors
///
/// Propagates interpreter failures. Note: a cluster with no members keeps
/// the paper's semantics of an empty reduce — callers should seed centroids
/// from data points.
pub fn run(
    program: &Program,
    x: &DenseMatrix,
    centroids: &DenseMatrix,
) -> Result<(DenseMatrix, Vec<i64>), EvalError> {
    let out = eval(
        program,
        &[
            ("matrix", crate::util::matrix_value(x)),
            ("clusters", crate::util::matrix_value(centroids)),
        ],
    )?;
    let Value::Tuple(parts) = out else {
        return Err(EvalError::TypeMismatch("kmeans output".into()));
    };
    let cents = crate::util::rows_to_matrix(&parts[0]);
    let assigned = parts[1].to_i64_vec().expect("assignment");
    Ok((cents, assigned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_data::matrix::gaussian_clusters;
    use dmll_transform::{pipeline, Target};

    #[test]
    fn matches_handopt_iteration() {
        let (x, cents, _) = gaussian_clusters(120, 3, 3, 0.3, 17);
        let p = stage_kmeans(3);
        let (got_c, got_a) = run(&p, &x, &cents).unwrap();
        let (want_c, want_a) = handopt::kmeans_iter(&x, &cents);
        assert_eq!(got_a, want_a);
        assert!(crate::util::close(&got_c.data, &want_c.data, 1e-9));
    }

    #[test]
    fn cluster_recipe_preserves_results() {
        let (x, cents, _) = gaussian_clusters(80, 4, 3, 0.4, 23);
        let mut p = stage_kmeans(3);
        let baseline = run(&p, &x, &cents).unwrap();
        let report = pipeline::optimize(&mut p, Target::Cluster);
        assert!(
            report.applied("Conditional Reduce") >= 2,
            "{:?}",
            report.passes
        );
        assert!(
            report.applied("horizontal fusion") >= 1,
            "{:?}",
            report.passes
        );
        let (got_c, got_a) = run(&p, &x, &cents).unwrap();
        assert_eq!(got_a, baseline.1);
        assert!(crate::util::close(&got_c.data, &baseline.0.data, 1e-12));
    }

    #[test]
    fn iterating_converges_on_separable_data() {
        let (x, _, truth) = gaussian_clusters(90, 2, 3, 0.1, 31);
        // Seed centroids from the first occurrence of each true cluster.
        let mut seeds = Vec::new();
        for c in 0..3 {
            let idx = truth.iter().position(|t| *t == c).unwrap();
            seeds.extend_from_slice(x.row(idx));
        }
        let mut cents = DenseMatrix {
            data: seeds,
            rows: 3,
            cols: 2,
        };
        let p = stage_kmeans(3);
        for _ in 0..5 {
            let (next, _) = run(&p, &x, &cents).unwrap();
            cents = next;
        }
        // Final assignment should agree with ground truth up to relabeling;
        // with per-cluster seeds the labels line up directly.
        let (_, assigned) = run(&p, &x, &cents).unwrap();
        let agree = assigned.iter().zip(&truth).filter(|(a, t)| a == t).count();
        assert!(agree as f64 > 0.95 * truth.len() as f64, "{agree}");
    }
}

#[cfg(test)]
mod figure1_tests {
    use super::*;
    use dmll_data::matrix::gaussian_clusters;
    use dmll_transform::{pipeline, Target};

    /// The paper's claim for its running example: the shared-memory and the
    /// groupBy formulations converge to the same optimized computation.
    #[test]
    fn both_figure1_formulations_agree() {
        let (x, cents, _) = gaussian_clusters(60, 3, 3, 0.4, 41);
        let shared = stage_kmeans(3);
        let grouped = stage_kmeans_grouped(3);
        let (shared_c, shared_a) = run(&shared, &x, &cents).unwrap();
        let grouped_rows = run_grouped(&grouped, &x, &cents).unwrap();
        // Every non-empty cluster's mean matches the shared-memory result.
        for (key, mean) in &grouped_rows {
            let row = &shared_c.data
                [(*key as usize) * shared_c.cols..(*key as usize + 1) * shared_c.cols];
            assert!(
                crate::util::close(mean, row, 1e-9),
                "cluster {key}: {mean:?} vs {row:?}"
            );
        }
        // Clusters present in the grouped output are exactly those with
        // members under the shared assignment.
        let mut present: Vec<i64> = shared_a.clone();
        present.sort_unstable();
        present.dedup();
        let keys: Vec<i64> = grouped_rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, present);
    }

    /// GroupBy-Reduce fires on the grouped formulation and preserves its
    /// results — the §3.2 "same optimized code" path.
    #[test]
    fn grouped_formulation_optimizes_via_groupby_reduce() {
        let (x, cents, _) = gaussian_clusters(50, 2, 3, 0.4, 43);
        let mut p = stage_kmeans_grouped(3);
        let baseline = run_grouped(&p, &x, &cents).unwrap();
        let report = pipeline::optimize(&mut p, Target::Cluster);
        assert!(report.applied("GroupBy-Reduce") >= 1, "{:?}", report.passes);
        let got = run_grouped(&p, &x, &cents).unwrap();
        assert_eq!(got.len(), baseline.len());
        for ((k1, m1), (k2, m2)) in got.iter().zip(&baseline) {
            assert_eq!(k1, k2);
            assert!(crate::util::close(m1, m2, 1e-12));
        }
    }
}
