//! Triangle counting: for every vertex, count neighbor pairs that are
//! themselves connected; every triangle is seen from its three corners, so
//! the total divides by three.
//!
//! Edge-membership tests binary-search the sorted adjacency rows of the
//! CSR itself (the same structure the hand-optimized baseline uses), so
//! memory stays `O(edges)` at any scale. The search is unrolled to a fixed
//! number of halving steps — straight-line integer code the batch tier
//! vectorizes — and the nested per-vertex pair loop has a data-dependent
//! trip count (`deg²`), exercising the segmented batch path. A dense
//! `n×n`-indicator variant is kept as a differential reference for small
//! graphs.

use dmll_core::{LayoutHint, Program, Ty};
use dmll_data::graph::CsrGraph;
use dmll_frontend::Stage;
use dmll_interp::{eval, EvalError, Value};

/// Unrolled binary-search depth: a `lower_bound` over a window of `n`
/// elements converges in `floor(log2 n) + 1` halvings, so 17 steps cover
/// rows of up to 2^16 neighbors. [`inputs_for`] asserts the bound.
const SEARCH_STEPS: usize = 17;

/// Maximum row degree the unrolled search supports.
pub const MAX_DEGREE: usize = 1 << (SEARCH_STEPS - 1);

/// Stage the count for an undirected graph, testing edge membership by
/// binary search over the sorted CSR rows.
/// Inputs: `offsets`, `targets` (symmetrized CSR), `n_vertices`.
/// Output: the triangle count.
pub fn stage_triangles() -> Program {
    let mut st = Stage::new();
    let offs = st.input("offsets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let targets = st.input("targets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let nv = st.input("n_vertices", Ty::I64, LayoutHint::Local);
    let one = st.lit_i(1);
    let two = st.lit_i(2);
    let izero = st.lit_i(0);
    // Clamp index for speculative mid-point reads once the window is
    // empty; never used for a live comparison. Safe even for an edgeless
    // graph (-1): a zero-trip pair loop never executes the body.
    let m = st.len(&targets);
    let mlast = st.sub(&m, &one);
    let per_vertex = st.collect(&nv, |st, v| {
        let start = st.read(&offs, v);
        let v1 = st.add(v, &one);
        let end = st.read(&offs, &v1);
        let deg = st.sub(&end, &start);
        let pairs = st.mul(&deg, &deg);
        let offs = offs.clone();
        let targets = targets.clone();
        let start2 = start.clone();
        let deg2 = deg.clone();
        let (one, two, mlast) = (one.clone(), two.clone(), mlast.clone());
        st.reduce(
            &pairs,
            move |st, t| {
                let i = st.div(t, &deg2);
                let j = st.rem(t, &deg2);
                let ordered = st.lt(&i, &j);
                let ai = st.add(&start2, &i);
                let aj = st.add(&start2, &j);
                let a = st.read(&targets, &ai);
                let b = st.read(&targets, &aj);
                // lower_bound for `b` in the sorted row of `a`. Each step
                // halves `[lo, hi)`; exhausted windows keep lo == hi.
                let a1 = st.add(&a, &one);
                let mut lo = st.read(&offs, &a);
                let hi_end = st.read(&offs, &a1);
                let mut hi = hi_end.clone();
                for _ in 0..SEARCH_STEPS {
                    let live = st.lt(&lo, &hi);
                    let span = st.add(&lo, &hi);
                    let mid = st.div(&span, &two);
                    let midc = st.min(&mid, &mlast);
                    let probe = st.read(&targets, &midc);
                    let right = st.lt(&probe, &b);
                    let go_right = st.and(&live, &right);
                    let left = st.not(&right);
                    let go_left = st.and(&live, &left);
                    let mid1 = st.add(&mid, &one);
                    lo = st.mux(&go_right, &mid1, &lo);
                    hi = st.mux(&go_left, &mid, &hi);
                }
                let in_row = st.lt(&lo, &hi_end);
                let loc = st.min(&lo, &mlast);
                let hit = st.read(&targets, &loc);
                let is_b = st.eq(&hit, &b);
                let found = st.and(&in_row, &is_b);
                let counted = st.and(&ordered, &found);
                let one_i = st.lit_i(1);
                let zero_i = st.lit_i(0);
                st.mux(&counted, &one_i, &zero_i)
            },
            |st, a, b| st.add(a, b),
            Some(&izero),
        )
    });
    let total = st.sum(&per_vertex);
    let three = st.lit_i(3);
    let count = st.div(&total, &three);
    st.finish(&count)
}

/// Stage the dense-indicator variant: membership via an `n×n` 0/1 array.
/// Kept as the differential reference for the CSR search at small `n`.
/// Inputs: `offsets`, `targets`, `adj`, `n_vertices`.
pub fn stage_triangles_dense() -> Program {
    let mut st = Stage::new();
    let offs = st.input("offsets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let targets = st.input("targets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let adj = st.input("adj", Ty::arr(Ty::I64), LayoutHint::Local);
    let nv = st.input("n_vertices", Ty::I64, LayoutHint::Local);
    let one = st.lit_i(1);
    let izero = st.lit_i(0);
    let per_vertex = st.collect(&nv, |st, v| {
        let start = st.read(&offs, v);
        let v1 = st.add(v, &one);
        let end = st.read(&offs, &v1);
        let deg = st.sub(&end, &start);
        let pairs = st.mul(&deg, &deg);
        let targets = targets.clone();
        let adj = adj.clone();
        let nv = nv.clone();
        let start2 = start.clone();
        let deg2 = deg.clone();
        st.reduce(
            &pairs,
            move |st, t| {
                let i = st.div(t, &deg2);
                let j = st.rem(t, &deg2);
                let lt = st.lt(&i, &j);
                let ai = st.add(&start2, &i);
                let aj = st.add(&start2, &j);
                let a = st.read(&targets, &ai);
                let b = st.read(&targets, &aj);
                let row = st.mul(&a, &nv);
                let idx = st.add(&row, &b);
                let connected = st.read(&adj, &idx);
                let z = st.lit_i(0);
                st.mux(&lt, &connected, &z)
            },
            |st, a, b| st.add(a, b),
            Some(&izero),
        )
    });
    let total = st.sum(&per_vertex);
    let three = st.lit_i(3);
    let count = st.div(&total, &three);
    st.finish(&count)
}

/// Build the CSR inputs from a symmetrized graph.
///
/// # Panics
///
/// Panics if any vertex exceeds [`MAX_DEGREE`] neighbors (the unrolled
/// search depth would not converge).
pub fn inputs_for(g: &CsrGraph) -> Vec<(&'static str, Value)> {
    let max_deg = (0..g.num_vertices())
        .map(|v| g.neighbors(v).len())
        .max()
        .unwrap_or(0);
    assert!(
        max_deg <= MAX_DEGREE,
        "vertex degree {max_deg} exceeds the unrolled search bound {MAX_DEGREE}"
    );
    vec![
        ("offsets", Value::i64_arr(g.offsets.clone())),
        ("targets", Value::i64_arr(g.targets.clone())),
        ("n_vertices", Value::I64(g.num_vertices() as i64)),
    ]
}

/// Build the dense-indicator inputs from a symmetrized graph.
///
/// # Panics
///
/// Panics if the graph is too large for a dense indicator (> 4096 vertices).
pub fn inputs_for_dense(g: &CsrGraph) -> Vec<(&'static str, Value)> {
    let n = g.num_vertices();
    assert!(
        n <= 4096,
        "dense adjacency indicator limited to small graphs"
    );
    let mut adj = vec![0i64; n * n];
    for v in 0..n {
        for &t in g.neighbors(v) {
            adj[v * n + t as usize] = 1;
        }
    }
    vec![
        ("offsets", Value::i64_arr(g.offsets.clone())),
        ("targets", Value::i64_arr(g.targets.clone())),
        ("adj", Value::i64_arr(adj)),
        ("n_vertices", Value::I64(n as i64)),
    ]
}

/// Run the count.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(program: &Program, g: &CsrGraph) -> Result<u64, EvalError> {
    let out = eval(program, &inputs_for(g))?;
    Ok(out.as_i64().expect("count") as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_data::graph::{rmat, CsrGraph};

    #[test]
    fn counts_k4() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .symmetrized();
        let p = stage_triangles();
        assert_eq!(run(&p, &g).unwrap(), 4);
    }

    #[test]
    fn zero_triangles_in_cycle() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).symmetrized();
        let p = stage_triangles();
        assert_eq!(run(&p, &g).unwrap(), 0);
    }

    #[test]
    fn matches_handopt_on_rmat() {
        let g = rmat(6, 4, 21).symmetrized();
        let p = stage_triangles();
        assert_eq!(run(&p, &g).unwrap(), handopt::triangles(&g));
    }

    /// The CSR binary-search membership must agree with the dense
    /// indicator wherever the indicator fits.
    #[test]
    fn csr_search_matches_dense_indicator() {
        let csr = stage_triangles();
        let dense = stage_triangles_dense();
        for seed in [7, 21, 33] {
            let g = rmat(6, 5, seed).symmetrized();
            let via_csr = run(&csr, &g).unwrap();
            let via_dense = eval(&dense, &inputs_for_dense(&g))
                .unwrap()
                .as_i64()
                .expect("count") as u64;
            assert_eq!(via_csr, via_dense, "seed {seed}");
        }
    }

    /// The nested pair loop's trip count varies per vertex (`deg²`), so
    /// the batch tier must take the segmented path — no scalar fallback.
    #[test]
    fn pair_loop_batches_segmented() {
        // ≥ BLOCK vertices so the outer loop runs full columnar blocks
        // (a smaller graph would drain entirely through the scalar tail).
        let g = rmat(10, 6, 9).symmetrized();
        let p = stage_triangles();
        let before = dmll_interp::tier_totals();
        let opts = dmll_interp::ParallelOptions::new(1);
        let (out, report) =
            dmll_interp::eval_parallel_report(&p, &inputs_for(&g), &opts).unwrap();
        let after = dmll_interp::tier_totals();
        assert_eq!(out.as_i64().expect("count") as u64, handopt::triangles(&g));
        assert!(report.batched_loops >= 1, "{report:?}");
        assert!(
            after.segmented_blocks > before.segmented_blocks,
            "pair loop never took the segmented path: {after:?}"
        );
        assert_eq!(
            after.fallback_loops, before.fallback_loops,
            "triangles must not fall back: {after:?}"
        );
    }

    #[test]
    fn optimizer_keeps_count_correct() {
        let g = rmat(5, 5, 22).symmetrized();
        let mut p = stage_triangles();
        let want = handopt::triangles(&g);
        dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Numa);
        assert_eq!(run(&p, &g).unwrap(), want);
    }
}
