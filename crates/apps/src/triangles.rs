//! Triangle counting: for every vertex, count neighbor pairs that are
//! themselves connected; every triangle is seen from its three corners, so
//! the total divides by three.
//!
//! Edge-membership tests use a dense adjacency indicator at these simulation
//! scales (the hand-optimized baseline uses sorted-adjacency intersection,
//! as the real system would).

use dmll_core::{LayoutHint, Program, Ty};
use dmll_data::graph::CsrGraph;
use dmll_frontend::Stage;
use dmll_interp::{eval, EvalError, Value};

/// Stage the count for an undirected graph.
/// Inputs: `offsets`, `targets` (symmetrized CSR), `adj` (dense n×n 0/1
/// indicator), `n_vertices`. Output: the triangle count.
pub fn stage_triangles() -> Program {
    let mut st = Stage::new();
    let offs = st.input("offsets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let targets = st.input("targets", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let adj = st.input("adj", Ty::arr(Ty::I64), LayoutHint::Local);
    let nv = st.input("n_vertices", Ty::I64, LayoutHint::Local);
    let one = st.lit_i(1);
    let izero = st.lit_i(0);
    let per_vertex = st.collect(&nv, |st, v| {
        let start = st.read(&offs, v);
        let v1 = st.add(v, &one);
        let end = st.read(&offs, &v1);
        let deg = st.sub(&end, &start);
        let pairs = st.mul(&deg, &deg);
        let targets = targets.clone();
        let adj = adj.clone();
        let nv = nv.clone();
        let start2 = start.clone();
        let deg2 = deg.clone();
        st.reduce(
            &pairs,
            move |st, t| {
                let i = st.div(t, &deg2);
                let j = st.rem(t, &deg2);
                let lt = st.lt(&i, &j);
                let ai = st.add(&start2, &i);
                let aj = st.add(&start2, &j);
                let a = st.read(&targets, &ai);
                let b = st.read(&targets, &aj);
                let row = st.mul(&a, &nv);
                let idx = st.add(&row, &b);
                let connected = st.read(&adj, &idx);
                let z = st.lit_i(0);
                st.mux(&lt, &connected, &z)
            },
            |st, a, b| st.add(a, b),
            Some(&izero),
        )
    });
    let total = st.sum(&per_vertex);
    let three = st.lit_i(3);
    let count = st.div(&total, &three);
    st.finish(&count)
}

/// Build the inputs from a symmetrized graph.
///
/// # Panics
///
/// Panics if the graph is too large for a dense indicator (> 4096 vertices).
pub fn inputs_for(g: &CsrGraph) -> Vec<(&'static str, Value)> {
    let n = g.num_vertices();
    assert!(
        n <= 4096,
        "dense adjacency indicator limited to small graphs"
    );
    let mut adj = vec![0i64; n * n];
    for v in 0..n {
        for &t in g.neighbors(v) {
            adj[v * n + t as usize] = 1;
        }
    }
    vec![
        ("offsets", Value::i64_arr(g.offsets.clone())),
        ("targets", Value::i64_arr(g.targets.clone())),
        ("adj", Value::i64_arr(adj)),
        ("n_vertices", Value::I64(n as i64)),
    ]
}

/// Run the count.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(program: &Program, g: &CsrGraph) -> Result<u64, EvalError> {
    let out = eval(program, &inputs_for(g))?;
    Ok(out.as_i64().expect("count") as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_data::graph::{rmat, CsrGraph};

    #[test]
    fn counts_k4() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
            .symmetrized();
        let p = stage_triangles();
        assert_eq!(run(&p, &g).unwrap(), 4);
    }

    #[test]
    fn zero_triangles_in_cycle() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).symmetrized();
        let p = stage_triangles();
        assert_eq!(run(&p, &g).unwrap(), 0);
    }

    #[test]
    fn matches_handopt_on_rmat() {
        let g = rmat(6, 4, 21).symmetrized();
        let p = stage_triangles();
        assert_eq!(run(&p, &g).unwrap(), handopt::triangles(&g));
    }

    #[test]
    fn optimizer_keeps_count_correct() {
        let g = rmat(5, 5, 22).symmetrized();
        let mut p = stage_triangles();
        let want = handopt::triangles(&g);
        dmll_transform::pipeline::optimize(&mut p, dmll_transform::Target::Numa);
        assert_eq!(run(&p, &g).unwrap(), want);
    }
}
