//! TPC-H Query 1: filter by ship date, group by (returnflag, linestatus),
//! five aggregates — the paper's flagship data-querying benchmark.
//!
//! The query is staged the way a user writes it: a `filter` feeding five
//! independent `groupByReduce`s over the record collection. The optimizer
//! turns that into exactly the hand-written shape: horizontal fusion merges
//! the five aggregations into one traversal, pipeline fusion folds the
//! filter into the generator conditions, AoS→SoA splits the record input
//! into primitive columns, and DFE drops unused ones.

use dmll_core::{LayoutHint, Program, StructTy, Ty};
use dmll_data::tpch::{LineItemColumns, Q1_SHIP_CUTOFF};
use dmll_frontend::{Stage, Val};
use dmll_interp::{eval, EvalError, StructVal, Value};
use std::sync::Arc;

/// The lineitem record type as staged.
pub fn lineitem_ty() -> StructTy {
    StructTy::new(
        "LineItem",
        vec![
            ("quantity".into(), Ty::F64),
            ("extended_price".into(), Ty::F64),
            ("discount".into(), Ty::F64),
            ("tax".into(), Ty::F64),
            ("return_flag".into(), Ty::I64),
            ("line_status".into(), Ty::I64),
            ("ship_date".into(), Ty::I64),
        ],
    )
}

fn group_key(st: &mut Stage, item: &Val) -> Val {
    let flag = st.field(item, "return_flag");
    let status = st.field(item, "line_status");
    let two = st.lit_i(2);
    let f2 = st.mul(&flag, &two);
    st.add(&f2, &status)
}

/// Stage the query. Output: a 6-tuple
/// `(keys, sum_qty, sum_base_price, sum_disc_price, sum_charge, count)`.
pub fn stage_q1() -> Program {
    let mut st = Stage::new();
    let items = st.input(
        "items",
        Ty::arr(Ty::Struct(lineitem_ty())),
        LayoutHint::Partitioned,
    );
    let cutoff = st.lit_i(Q1_SHIP_CUTOFF);
    let valid = st.filter(&items, |st, item| {
        let d = st.field(item, "ship_date");
        st.le(&d, &cutoff)
    });
    let fzero = st.lit_f(0.0);
    let izero = st.lit_i(0);

    let sum_qty = st.group_by_reduce(
        &valid,
        group_key,
        |st, item| st.field(item, "quantity"),
        |st, a, b| st.add(a, b),
        Some(&fzero),
    );
    let sum_base = st.group_by_reduce(
        &valid,
        group_key,
        |st, item| st.field(item, "extended_price"),
        |st, a, b| st.add(a, b),
        Some(&fzero),
    );
    let sum_disc = st.group_by_reduce(
        &valid,
        group_key,
        |st, item| {
            let p = st.field(item, "extended_price");
            let d = st.field(item, "discount");
            let one = st.lit_f(1.0);
            let m = st.sub(&one, &d);
            st.mul(&p, &m)
        },
        |st, a, b| st.add(a, b),
        Some(&fzero),
    );
    let sum_charge = st.group_by_reduce(
        &valid,
        group_key,
        |st, item| {
            let p = st.field(item, "extended_price");
            let d = st.field(item, "discount");
            let t = st.field(item, "tax");
            let one = st.lit_f(1.0);
            let m = st.sub(&one, &d);
            let disc = st.mul(&p, &m);
            let tm = st.add(&one, &t);
            st.mul(&disc, &tm)
        },
        |st, a, b| st.add(a, b),
        Some(&fzero),
    );
    let count = st.group_by_reduce(
        &valid,
        group_key,
        |st, _item| st.lit_i(1),
        |st, a, b| st.add(a, b),
        Some(&izero),
    );

    let keys = st.bucket_keys(&sum_qty);
    let v_qty = st.bucket_values(&sum_qty);
    let v_base = st.bucket_values(&sum_base);
    let v_disc = st.bucket_values(&sum_disc);
    let v_charge = st.bucket_values(&sum_charge);
    let v_count = st.bucket_values(&count);
    let out = st.tuple(&[&keys, &v_qty, &v_base, &v_disc, &v_charge, &v_count]);
    st.finish(&out)
}

/// The lineitem table as a boxed record collection (pre-SoA input).
pub fn boxed_items(cols: &LineItemColumns) -> Value {
    // One shared type allocation across every row: consumers that walk the
    // collection can validate the record shape by pointer, not by name.
    let ty = Arc::new(lineitem_ty());
    let n = cols.quantity.len();
    Value::boxed_arr(
        (0..n)
            .map(|i| {
                Value::Struct(Arc::new(StructVal {
                    ty: ty.clone(),
                    fields: vec![
                        Value::F64(cols.quantity[i]),
                        Value::F64(cols.extended_price[i]),
                        Value::F64(cols.discount[i]),
                        Value::F64(cols.tax[i]),
                        Value::I64(cols.return_flag[i]),
                        Value::I64(cols.line_status[i]),
                        Value::I64(cols.ship_date[i]),
                    ],
                }))
            })
            .collect(),
    )
}

/// Per-column inputs matching whatever the (possibly SoA-transformed)
/// program declares.
pub fn inputs_for(program: &Program, cols: &LineItemColumns) -> Vec<(String, Value)> {
    program
        .inputs
        .iter()
        .map(|i| {
            let v = match i.name.as_str() {
                "items" => boxed_items(cols),
                "items.quantity" => Value::f64_arr(cols.quantity.clone()),
                "items.extended_price" => Value::f64_arr(cols.extended_price.clone()),
                "items.discount" => Value::f64_arr(cols.discount.clone()),
                "items.tax" => Value::f64_arr(cols.tax.clone()),
                "items.return_flag" => Value::i64_arr(cols.return_flag.clone()),
                "items.line_status" => Value::i64_arr(cols.line_status.clone()),
                "items.ship_date" => Value::i64_arr(cols.ship_date.clone()),
                other => panic!("unexpected input {other}"),
            };
            (i.name.clone(), v)
        })
        .collect()
}

/// A decoded, key-sorted result row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Q1Out {
    /// `return_flag * 2 + line_status`.
    pub key: i64,
    /// Aggregates in Table 2 order.
    pub sum_qty: f64,
    /// `sum(extendedprice)`.
    pub sum_base_price: f64,
    /// `sum(extendedprice * (1 - discount))`.
    pub sum_disc_price: f64,
    /// `sum(extendedprice * (1 - discount) * (1 + tax))`.
    pub sum_charge: f64,
    /// Row count.
    pub count: i64,
}

/// Run the query and decode the result, sorted by group key.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run(program: &Program, cols: &LineItemColumns) -> Result<Vec<Q1Out>, EvalError> {
    let inputs = inputs_for(program, cols);
    let borrowed: Vec<(&str, Value)> = inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let out = eval(program, &borrowed)?;
    let Value::Tuple(parts) = out else {
        return Err(EvalError::TypeMismatch("q1 output".into()));
    };
    let keys = parts[0].to_i64_vec().expect("keys");
    let qty = parts[1].to_f64_vec().expect("qty");
    let base = parts[2].to_f64_vec().expect("base");
    let disc = parts[3].to_f64_vec().expect("disc");
    let charge = parts[4].to_f64_vec().expect("charge");
    let count = parts[5].to_i64_vec().expect("count");
    let mut rows: Vec<Q1Out> = keys
        .into_iter()
        .enumerate()
        .map(|(i, key)| Q1Out {
            key,
            sum_qty: qty[i],
            sum_base_price: base[i],
            sum_disc_price: disc[i],
            sum_charge: charge[i],
            count: count[i],
        })
        .collect();
    rows.sort_by_key(|r| r.key);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_baselines::handopt;
    use dmll_core::printer::count_loops;
    use dmll_data::tpch;
    use dmll_transform::{pipeline, Target};

    fn check_against_handopt(rows: &[Q1Out], cols: &LineItemColumns) {
        let expected = handopt::q1(cols);
        assert_eq!(rows.len(), expected.len());
        for (got, want) in rows.iter().zip(&expected) {
            assert_eq!(got.key, want.return_flag * 2 + want.line_status);
            assert_eq!(got.count, want.count);
            assert!(
                (got.sum_qty - want.sum_qty).abs() < 1e-6,
                "{got:?} {want:?}"
            );
            assert!((got.sum_base_price - want.sum_base_price).abs() < 1e-3);
            assert!((got.sum_disc_price - want.sum_disc_price).abs() < 1e-3);
            assert!((got.sum_charge - want.sum_charge).abs() < 1e-3);
        }
    }

    #[test]
    fn unoptimized_matches_handopt() {
        let cols = tpch::to_columns(&tpch::gen_lineitems(800, 42));
        let p = stage_q1();
        let rows = run(&p, &cols).unwrap();
        check_against_handopt(&rows, &cols);
    }

    #[test]
    fn optimizer_produces_single_traversal_and_soa() {
        let cols = tpch::to_columns(&tpch::gen_lineitems(800, 43));
        let mut p = stage_q1();
        let baseline = run(&p, &cols).unwrap();
        let report = pipeline::optimize(&mut p, Target::Cpu);
        // Table 2's Query 1 row: GroupBy-Reduce machinery... here the five
        // groupings fuse horizontally and the filter pipelines in.
        assert!(
            report.applied("horizontal fusion") >= 4,
            "{:?}",
            report.passes
        );
        assert!(
            report.applied("pipeline fusion") >= 1,
            "{:?}",
            report.passes
        );
        assert!(report.applied("AoS to SoA") >= 1, "{:?}", report.passes);
        assert_eq!(count_loops(&p), 1, "one traversal: {p}");
        // SoA split the input into primitive columns.
        assert!(p.input("items").is_none());
        assert!(p.input("items.quantity").is_some());
        let rows = run(&p, &cols).unwrap();
        assert_eq!(rows, baseline);
        check_against_handopt(&rows, &cols);
    }

    #[test]
    fn all_four_classic_groups_appear() {
        let cols = tpch::to_columns(&tpch::gen_lineitems(5000, 44));
        let p = stage_q1();
        let rows = run(&p, &cols).unwrap();
        assert!(rows.len() >= 4, "{rows:?}");
    }
}
