//! Conversions between generated datasets and interpreter values.

use dmll_data::matrix::DenseMatrix;
use dmll_interp::Value;

/// A dense matrix as the interpreter's `MatrixF64` struct value.
pub fn matrix_value(m: &DenseMatrix) -> Value {
    Value::matrix(m.data.clone(), m.rows, m.cols)
}

/// Decode a `Coll[Coll[Double]]` (list of rows) into a [`DenseMatrix`].
///
/// # Panics
///
/// Panics when the value is not a rectangular collection of float rows.
pub fn rows_to_matrix(v: &Value) -> DenseMatrix {
    let arr = v.as_arr().expect("collection of rows");
    let mut data = Vec::new();
    let mut cols = 0;
    for i in 0..arr.len() {
        let row = arr.get(i).expect("row");
        let row = row.to_f64_vec().expect("float row");
        cols = row.len();
        data.extend(row);
    }
    DenseMatrix {
        rows: arr.len(),
        cols,
        data,
    }
}

/// Decode a pair of `(keys, values)` collections into sorted `(key, value)`
/// tuples, normalizing the first-seen bucket order for comparisons.
///
/// # Panics
///
/// Panics when the value is not a 2-tuple of an int and a float collection.
pub fn sorted_groups(pair: &Value) -> Vec<(i64, f64)> {
    let Value::Tuple(parts) = pair else {
        panic!("expected tuple, got {pair}");
    };
    let keys = parts[0].to_i64_vec().expect("int keys");
    let vals = parts[1].to_f64_vec().expect("float values");
    let mut out: Vec<(i64, f64)> = keys.into_iter().zip(vals).collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// Compare float slices within a tolerance.
pub fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = DenseMatrix {
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            rows: 2,
            cols: 3,
        };
        let v = matrix_value(&m);
        if let Value::Struct(s) = &v {
            assert_eq!(s.field("rows"), Some(&Value::I64(2)));
        } else {
            panic!("not a struct");
        }
    }

    #[test]
    fn rows_decode() {
        let v = Value::boxed_arr(vec![
            Value::f64_arr(vec![1.0, 2.0]),
            Value::f64_arr(vec![3.0, 4.0]),
        ]);
        let m = rows_to_matrix(&v);
        assert_eq!(m.rows, 2);
        assert_eq!(m.cols, 2);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn close_tolerance() {
        assert!(close(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-9));
        assert!(!close(&[1.0], &[1.1], 1e-9));
        assert!(!close(&[1.0], &[1.0, 2.0], 1e-9));
    }
}
