//! Per-tenant policy and its compilation into per-query supervision.
//!
//! A tenant registers once with a [`TenantPolicy`]; every query it submits
//! is then supervised under a [`SupervisorPolicy`] *derived* from it at
//! dispatch time. The derivation is where deadline propagation happens:
//! the supervisor's budget is the tenant deadline **minus time already
//! spent queued**, so a query that sat in the queue past its deadline
//! aborts at the first statement boundary with a typed
//! `ExecError::Deadline` and an all-zero partial report — it does zero
//! kernel work.

use crate::degrade::DegradeLevel;
use dmll_runtime::{QuarantinePolicy, SpeculationPolicy, SupervisorPolicy};
use std::time::Duration;

/// What a tenant is entitled to. Immutable once the service starts.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantPolicy {
    /// Scheduling priority; higher runs first, and under the deepest
    /// degradation rung tenants below the shed floor are rejected outright.
    pub priority: u8,
    /// Per-query wall-clock deadline, measured from *submission* (queue
    /// wait counts against it).
    pub deadline: Duration,
    /// Chunk re-executions allowed per query (the supervisor's run-wide
    /// retry budget).
    pub retry_budget: u32,
    /// Sustained admission rate, queries per second (token-bucket refill).
    pub rate_per_sec: f64,
    /// Burst allowance (token-bucket capacity).
    pub burst: f64,
    /// Bounded queue depth; submissions beyond it are rejected, never
    /// buffered.
    pub queue_cap: usize,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            priority: 1,
            deadline: Duration::from_secs(1),
            retry_budget: 16,
            rate_per_sec: 50_000.0,
            burst: 1_000.0,
            queue_cap: 8,
        }
    }
}

impl TenantPolicy {
    /// Compile this policy into the supervision for one query, given the
    /// deadline budget *remaining* at dispatch and the service's current
    /// degradation level (speculation is the first thing overload turns
    /// off).
    pub fn supervisor_policy(
        &self,
        remaining: Duration,
        level: DegradeLevel,
    ) -> SupervisorPolicy {
        SupervisorPolicy {
            deadline: Some(remaining),
            retry_budget: self.retry_budget,
            speculation: if level >= DegradeLevel::NoSpeculation {
                SpeculationPolicy::disabled()
            } else {
                SpeculationPolicy::default()
            },
            quarantine: QuarantinePolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_propagates_as_the_remaining_budget() {
        let policy = TenantPolicy::default();
        let sup = policy.supervisor_policy(Duration::from_millis(7), DegradeLevel::Normal);
        assert_eq!(sup.deadline, Some(Duration::from_millis(7)));
        assert!(sup.speculation.enabled);
        // An exhausted budget still compiles — to a zero deadline, which
        // the supervisor trips at the first statement boundary.
        let spent = policy.supervisor_policy(Duration::ZERO, DegradeLevel::Normal);
        assert_eq!(spent.deadline, Some(Duration::ZERO));
    }

    #[test]
    fn degradation_disables_speculation_first() {
        let policy = TenantPolicy::default();
        for level in [
            DegradeLevel::NoSpeculation,
            DegradeLevel::FineGrain,
            DegradeLevel::ShedLowPriority,
        ] {
            let sup = policy.supervisor_policy(Duration::from_secs(1), level);
            assert!(!sup.speculation.enabled, "speculation on at {level:?}");
        }
    }
}
