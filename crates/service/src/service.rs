//! The always-on query service: bounded queues, a priority-scheduling
//! worker pool, per-query supervision, and degradation-aware dispatch.
//!
//! Structure of a query's life:
//!
//! 1. **Admission** ([`QueryService::submit`]): shed check (deepest
//!    degradation rung), token bucket, then — under one pool lock — the
//!    shutdown flag, the service-wide cost budget, and the tenant's
//!    bounded queue. Every refusal is a typed
//!    [`ServiceError::Rejected`]; nothing queues unboundedly.
//! 2. **Dispatch**: a worker pops the highest-priority non-empty queue
//!    (round-robin among ties), derives the query's [`SupervisorPolicy`]
//!    from the tenant policy with the *remaining* deadline budget, and
//!    runs it through the supervised chunked executor with the tenant's
//!    kernel-cache view injected. A query whose deadline passed while
//!    queued aborts at the first statement boundary having done zero
//!    kernel work.
//! 3. **Completion**: the outstanding-cost ledger is credited, the
//!    latency feeds the degradation controller's p99 window, and the
//!    outcome (value or typed error, never a silent drop) goes back on
//!    the query's channel.
//!
//! Locking is deliberately flat: the pool mutex guards only queue state,
//! workers never hold it while evaluating, and the degradation controller
//! has its own mutex taken after the pool lock is released — there is no
//! lock order to violate, which is what the chaos probe's no-deadlock
//! gate leans on.

use crate::admission::TokenBucket;
use crate::dataset::{DatasetStore, Snapshot};
use crate::degrade::{DegradeController, DegradeLevel, DegradePolicy};
use crate::error::{RejectReason, ServiceError};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::policy::TenantPolicy;
use dmll_core::Program;
use dmll_interp::{
    eval_parallel_supervised, CacheStats, ChunkFaults, ExecReport, KernelCacheHandle,
    ParallelOptions, Value,
};
use dmll_runtime::Supervisor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-wide knobs (per-tenant knobs live in [`TenantPolicy`]).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queues.
    pub workers: usize,
    /// Threads each query's chunked executor may use. Keep small: the
    /// pool is the parallelism; this is intra-query parallelism for
    /// heavyweight queries.
    pub query_threads: usize,
    /// Service-wide budget for the summed cost estimates of admitted,
    /// not-yet-completed queries.
    pub cost_budget: f64,
    /// Degradation thresholds.
    pub degrade: DegradePolicy,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            query_threads: 1,
            cost_budget: 1_000_000.0,
            degrade: DegradePolicy::default(),
        }
    }
}

/// Handle for a registered tenant (its index in registration order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantId(pub usize);

/// One query: a program plus how to bind its inputs and what it costs.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The program to run.
    pub program: Arc<Program>,
    /// Dataset snapshot to resolve input bindings from (explicit
    /// `inputs` take precedence over dataset bindings of the same name).
    pub dataset: Option<String>,
    /// Explicit input bindings.
    pub inputs: Vec<(String, Value)>,
    /// Cost estimate in abstract units (benches use input rows), checked
    /// against [`ServiceConfig::cost_budget`] at admission.
    pub cost: f64,
    /// Injected faults for chaos runs (empty in production).
    pub faults: ChunkFaults,
}

impl QueryRequest {
    /// A unit-cost query with no dataset and no explicit inputs.
    pub fn new(program: Arc<Program>) -> QueryRequest {
        QueryRequest {
            program,
            dataset: None,
            inputs: Vec::new(),
            cost: 1.0,
            faults: ChunkFaults::default(),
        }
    }

    /// Resolve inputs from the named dataset.
    pub fn with_dataset(mut self, name: &str) -> QueryRequest {
        self.dataset = Some(name.to_string());
        self
    }

    /// Bind one input explicitly (overrides a dataset binding).
    pub fn with_input(mut self, name: &str, value: Value) -> QueryRequest {
        self.inputs.push((name.to_string(), value));
        self
    }

    /// Set the admission cost estimate.
    pub fn with_cost(mut self, cost: f64) -> QueryRequest {
        self.cost = cost.max(0.0);
        self
    }

    /// Inject chunk faults (chaos runs).
    pub fn with_faults(mut self, faults: ChunkFaults) -> QueryRequest {
        self.faults = faults;
        self
    }
}

/// What comes back on a query's channel: a value or a typed error,
/// always exactly one of them, never a silent drop.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Admission-assigned query id (unique per service).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The result.
    pub result: Result<Value, ServiceError>,
    /// The executor's report, when the query ran far enough to have one
    /// (supervision aborts carry their partial report here too).
    pub report: Option<ExecReport>,
    /// Time spent queued before a worker picked the query up.
    pub queued_for: Duration,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// The degradation level the query was dispatched under.
    pub level: DegradeLevel,
}

/// Per-tenant live state.
struct TenantState {
    name: String,
    policy: TenantPolicy,
    bucket: Mutex<TokenBucket>,
    /// This tenant's view of the shared kernel cache: same store, private
    /// hit/miss/eviction counters.
    cache: KernelCacheHandle,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
}

/// Point-in-time view of one tenant, for reporting.
#[derive(Clone, Debug)]
pub struct TenantSnapshot {
    /// Registered tenant name.
    pub name: String,
    /// Scheduling priority.
    pub priority: u8,
    /// Queries admitted.
    pub admitted: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
    /// Queries completed (ok or typed error).
    pub completed: u64,
    /// This tenant's kernel-cache counters (hits/misses over the shared
    /// store).
    pub cache: CacheStats,
}

struct Job {
    id: u64,
    tenant: usize,
    request: QueryRequest,
    enqueued: Instant,
    deadline_at: Instant,
    out: Sender<QueryOutcome>,
}

/// Queue state under the pool mutex. Nothing else lives here: workers
/// release this lock before touching a query.
struct PoolState {
    queues: Vec<VecDeque<Job>>,
    queued: usize,
    outstanding_cost: f64,
    shutdown: bool,
    cursor: usize,
}

struct Shared {
    config: ServiceConfig,
    tenants: Vec<TenantState>,
    state: Mutex<PoolState>,
    work: Condvar,
    degrade: Mutex<DegradeController>,
    /// Mirror of the controller's level for lock-free reads on the
    /// admission path.
    level: AtomicU8,
    metrics: ServiceMetrics,
    datasets: DatasetStore,
    cache: KernelCacheHandle,
    next_id: AtomicU64,
}

/// Configures and starts a [`QueryService`].
pub struct ServiceBuilder {
    config: ServiceConfig,
    tenants: Vec<(String, TenantPolicy)>,
    datasets: Vec<(String, Vec<(String, Value)>)>,
    cache: Option<KernelCacheHandle>,
}

impl ServiceBuilder {
    /// A builder with the given service-wide config and no tenants.
    pub fn new(config: ServiceConfig) -> ServiceBuilder {
        ServiceBuilder {
            config,
            tenants: Vec::new(),
            datasets: Vec::new(),
            cache: None,
        }
    }

    /// Register a tenant; the returned id addresses it in `submit`.
    pub fn tenant(&mut self, name: &str, policy: TenantPolicy) -> TenantId {
        self.tenants.push((name.to_string(), policy));
        TenantId(self.tenants.len() - 1)
    }

    /// Publish a dataset before start (more can be published later via
    /// [`QueryService::publish_dataset`]).
    pub fn dataset(&mut self, name: &str, bindings: Vec<(String, Value)>) -> &mut ServiceBuilder {
        self.datasets.push((name.to_string(), bindings));
        self
    }

    /// Use this kernel cache instead of a service-private one (e.g. to
    /// share compiles with another service, or to inspect from tests).
    pub fn kernel_cache(&mut self, cache: KernelCacheHandle) -> &mut ServiceBuilder {
        self.cache = Some(cache);
        self
    }

    /// Spawn the worker pool and go live.
    pub fn start(self) -> QueryService {
        let cache = self.cache.unwrap_or_default();
        let now = Instant::now();
        let tenants: Vec<TenantState> = self
            .tenants
            .into_iter()
            .map(|(name, policy)| TenantState {
                bucket: Mutex::new(TokenBucket::new(policy.rate_per_sec, policy.burst, now)),
                cache: cache.view(),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                name,
                policy,
            })
            .collect();
        let datasets = DatasetStore::new();
        for (name, bindings) in self.datasets {
            datasets.publish(&name, bindings);
        }
        let n = tenants.len();
        let shared = Arc::new(Shared {
            degrade: Mutex::new(DegradeController::new(self.config.degrade.clone())),
            level: AtomicU8::new(DegradeLevel::Normal as u8),
            state: Mutex::new(PoolState {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                queued: 0,
                outstanding_cost: 0.0,
                shutdown: false,
                cursor: 0,
            }),
            work: Condvar::new(),
            metrics: ServiceMetrics::default(),
            datasets,
            cache,
            next_id: AtomicU64::new(0),
            tenants,
            config: self.config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        QueryService { shared, workers }
    }
}

/// The running service. Dropping without [`QueryService::shutdown`]
/// leaks the workers; call `shutdown` to drain and join.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Submit a query on a fresh channel; the [`QueryOutcome`] arrives on
    /// the returned receiver. A rejection is returned directly (nothing
    /// was queued).
    // Rejections carry their full typed context by value, same trade as
    // `ExecError` in dmll-interp.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &self,
        tenant: TenantId,
        request: QueryRequest,
    ) -> Result<Receiver<QueryOutcome>, ServiceError> {
        let (tx, rx) = channel();
        self.submit_with(tenant, request, tx)?;
        Ok(rx)
    }

    /// Submit a query whose outcome goes to a caller-supplied sender —
    /// the open-loop bench funnels millions of outcomes into one channel
    /// this way. Returns the admitted query's id.
    #[allow(clippy::result_large_err)]
    pub fn submit_with(
        &self,
        tenant: TenantId,
        request: QueryRequest,
        out: Sender<QueryOutcome>,
    ) -> Result<u64, ServiceError> {
        let shared = &self.shared;
        let t = shared
            .tenants
            .get(tenant.0)
            .unwrap_or_else(|| panic!("unknown tenant id {}", tenant.0));
        shared.metrics.record_submitted();
        let reject = |reason: RejectReason| {
            shared.metrics.record_rejection(&reason);
            t.rejected.fetch_add(1, Ordering::Relaxed);
            Err(ServiceError::Rejected {
                tenant: t.name.clone(),
                reason,
            })
        };
        // Gate 1: the deepest degradation rung sheds low-priority tenants.
        let level = self.level();
        if level >= DegradeLevel::ShedLowPriority
            && t.policy.priority < shared.config.degrade.shed_floor
        {
            return reject(RejectReason::TenantShed {
                priority: t.policy.priority,
                floor: shared.config.degrade.shed_floor,
            });
        }
        // Gate 2: per-tenant token bucket.
        let now = Instant::now();
        if !t.bucket.lock().expect("bucket lock poisoned").try_take(now) {
            return reject(RejectReason::RateLimited {
                rate_per_sec: t.policy.rate_per_sec,
            });
        }
        // Gates 3–5 under the pool lock: shutdown, cost budget, queue cap.
        let mut st = shared.state.lock().expect("pool lock poisoned");
        if st.shutdown {
            drop(st);
            return reject(RejectReason::ShuttingDown);
        }
        if st.outstanding_cost + request.cost > shared.config.cost_budget {
            let outstanding = st.outstanding_cost;
            drop(st);
            return reject(RejectReason::CostShed {
                estimated: request.cost,
                outstanding,
                budget: shared.config.cost_budget,
            });
        }
        let depth = st.queues[tenant.0].len();
        if depth >= t.policy.queue_cap {
            drop(st);
            return reject(RejectReason::QueueFull {
                depth,
                cap: t.policy.queue_cap,
            });
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        st.outstanding_cost += request.cost;
        st.queued += 1;
        st.queues[tenant.0].push_back(Job {
            id,
            tenant: tenant.0,
            deadline_at: now + t.policy.deadline,
            enqueued: now,
            request,
            out,
        });
        drop(st);
        shared.work.notify_one();
        shared.metrics.record_admitted();
        t.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Publish (or replace) a dataset while running; in-flight queries
    /// keep their snapshot (see [`DatasetStore`]).
    pub fn publish_dataset(&self, name: &str, bindings: Vec<(String, Value)>) -> Snapshot {
        self.shared.datasets.publish(name, bindings)
    }

    /// The current degradation level.
    pub fn level(&self) -> DegradeLevel {
        DegradeLevel::from_u8(self.shared.level.load(Ordering::Relaxed))
    }

    /// Total queries queued across all tenants right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool lock poisoned").queued
    }

    /// Service-wide counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.level())
    }

    /// Per-tenant counters, including each tenant's kernel-cache view.
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        self.shared
            .tenants
            .iter()
            .map(|t| TenantSnapshot {
                name: t.name.clone(),
                priority: t.policy.priority,
                admitted: t.admitted.load(Ordering::Relaxed),
                rejected: t.rejected.load(Ordering::Relaxed),
                completed: t.completed.load(Ordering::Relaxed),
                cache: t.cache.stats(),
            })
            .collect()
    }

    /// The shared kernel cache (service-wide counters; per-tenant views
    /// are in [`QueryService::tenant_stats`]).
    pub fn kernel_cache(&self) -> &KernelCacheHandle {
        &self.shared.cache
    }

    /// Stop admitting, drain every queued query (each still gets its
    /// outcome), join the workers, and return the final counters.
    pub fn shutdown(self) -> MetricsSnapshot {
        {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers {
            // A worker that panicked already routed the query's outcome;
            // the join error carries nothing actionable.
            let _ = w.join();
        }
        self.shared.metrics.snapshot(DegradeLevel::from_u8(
            self.shared.level.load(Ordering::Relaxed),
        ))
    }
}

/// Pick the next job: highest priority wins, ties rotate round-robin so
/// equal-priority tenants share capacity instead of starving each other.
fn pick_job(shared: &Shared, st: &mut PoolState) -> Option<Job> {
    let n = st.queues.len();
    if n == 0 {
        return None;
    }
    let mut best: Option<usize> = None;
    for off in 0..n {
        let i = (st.cursor + off) % n;
        if st.queues[i].is_empty() {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => shared.tenants[i].policy.priority > shared.tenants[b].policy.priority,
        };
        if better {
            best = Some(i);
        }
    }
    let i = best?;
    st.cursor = (i + 1) % n;
    st.queued -= 1;
    st.queues[i].pop_front()
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = pick_job(&shared, &mut st) {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st).expect("pool lock poisoned");
            }
        };
        match job {
            Some(job) => run_job(&shared, job),
            // Shutdown with every queue drained: the worker retires.
            None => return,
        }
    }
}

/// Execute one admitted query end to end: supervision derived from the
/// tenant policy and remaining deadline, tenant cache view injected,
/// panics contained, cost credited back, degradation controller fed.
#[allow(clippy::result_large_err)]
fn run_job(shared: &Shared, job: Job) {
    let t = &shared.tenants[job.tenant];
    let picked_up = Instant::now();
    let queued_for = picked_up.saturating_duration_since(job.enqueued);
    let remaining = job.deadline_at.saturating_duration_since(picked_up);
    let level = DegradeLevel::from_u8(shared.level.load(Ordering::Relaxed));

    let supervisor = Supervisor::new(t.policy.supervisor_policy(remaining, level));
    let mut options = ParallelOptions::new(shared.config.query_threads)
        .with_kernel_cache(t.cache.clone())
        .with_faults(job.request.faults.clone());
    options.supervisor = Some(supervisor);
    if level >= DegradeLevel::FineGrain {
        options.use_batched = false;
    }

    // Bind inputs: explicit bindings first (they win name lookups), then
    // the dataset snapshot. Value clones are Arc bumps, not copies.
    let snapshot = job
        .request
        .dataset
        .as_deref()
        .and_then(|name| shared.datasets.get(name));
    let mut inputs: Vec<(&str, Value)> = job
        .request
        .inputs
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    if let Some(snap) = &snapshot {
        for (n, v) in snap.iter() {
            if !inputs.iter().any(|(m, _)| *m == n.as_str()) {
                inputs.push((n.as_str(), v.clone()));
            }
        }
    }

    let ran = catch_unwind(AssertUnwindSafe(|| {
        eval_parallel_supervised(&job.request.program, &inputs, &options)
    }));
    let (result, report) = match ran {
        Ok(Ok((value, report))) => (Ok(value), Some(report)),
        Ok(Err(e)) => {
            let partial = e.partial_report().cloned();
            (Err(ServiceError::Exec(e)), partial)
        }
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            (Err(ServiceError::WorkerPanicked { message }), None)
        }
    };

    // Credit the cost ledger and read the queue depth in one short lock.
    let depth = {
        let mut st = shared.state.lock().expect("pool lock poisoned");
        st.outstanding_cost = (st.outstanding_cost - job.request.cost).max(0.0);
        st.queued
    };
    let latency = job.enqueued.elapsed();
    shared
        .metrics
        .record_completion(&result.as_ref().map(|_| ()));
    t.completed.fetch_add(1, Ordering::Relaxed);

    // Feed the degradation controller. Pool lock is already released;
    // the controller mutex is the only one held here.
    {
        let mut ctl = shared.degrade.lock().expect("degrade lock poisoned");
        ctl.observe(latency);
        if let Some((from, to)) = ctl.evaluate(depth, Instant::now()) {
            shared.level.store(to as u8, Ordering::Relaxed);
            shared.metrics.record_transition(from, to);
        }
    }

    // A dropped receiver is the caller's choice; the service still did
    // (and accounted) the work.
    let _ = job.out.send(QueryOutcome {
        id: job.id,
        tenant: TenantId(job.tenant),
        result,
        report,
        queued_for,
        latency,
        level,
    });
}
