//! The graceful-degradation ladder and its hysteresis controller.
//!
//! Under sustained overload the service walks down a fixed ladder — first
//! disable straggler speculation (cloned work is pure overhead when every
//! worker is busy), then drop the compiled tier to scalar granularity
//! (smaller batches bound the latency cost of every admission decision),
//! then shed the lowest-priority tenants outright — and walks back **up in
//! reverse order** as pressure clears.
//!
//! Transitions are driven by two signals, queue depth and the p99 of
//! recently admitted latencies, through a hysteresis controller: the
//! thresholds for entering a rung are strictly higher than for leaving it,
//! one rung moves per evaluation, and a dwell time must elapse between
//! moves. Together these keep the level from flapping when load sits near
//! a threshold.

use std::time::{Duration, Instant};

/// The degradation rungs, mildest first. Ordering is meaningful:
/// `level >= NoSpeculation` means "speculation is off".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DegradeLevel {
    /// Full service: speculation on, batched kernels, everyone admitted.
    Normal = 0,
    /// Straggler speculation disabled.
    NoSpeculation = 1,
    /// Compiled kernels run scalar (fine-grained) instead of batched.
    FineGrain = 2,
    /// Tenants below the priority floor are rejected at admission.
    ShedLowPriority = 3,
}

impl DegradeLevel {
    /// All rungs, mildest first.
    pub const ALL: [DegradeLevel; 4] = [
        DegradeLevel::Normal,
        DegradeLevel::NoSpeculation,
        DegradeLevel::FineGrain,
        DegradeLevel::ShedLowPriority,
    ];

    /// Decode from the `repr(u8)` value (clamps above the ladder).
    pub fn from_u8(v: u8) -> DegradeLevel {
        match v {
            0 => DegradeLevel::Normal,
            1 => DegradeLevel::NoSpeculation,
            2 => DegradeLevel::FineGrain,
            _ => DegradeLevel::ShedLowPriority,
        }
    }

    /// Stable snake_case label for counters and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::NoSpeculation => "no_speculation",
            DegradeLevel::FineGrain => "fine_grain",
            DegradeLevel::ShedLowPriority => "shed_low_priority",
        }
    }

    fn up(self) -> DegradeLevel {
        DegradeLevel::from_u8((self as u8).saturating_add(1).min(3))
    }

    fn down(self) -> DegradeLevel {
        DegradeLevel::from_u8((self as u8).saturating_sub(1))
    }
}

/// Thresholds for the hysteresis controller. Enter thresholds must sit
/// above exit thresholds; the constructor enforces it.
#[derive(Clone, Debug)]
pub struct DegradePolicy {
    /// Escalate when total queued queries exceed this.
    pub enter_queue: usize,
    /// De-escalation requires queued queries at or below this.
    pub exit_queue: usize,
    /// Escalate when admitted p99 exceeds this.
    pub enter_p99: Duration,
    /// De-escalation requires admitted p99 at or below this.
    pub exit_p99: Duration,
    /// Minimum time between level changes, in either direction.
    pub dwell: Duration,
    /// Admitted latencies kept for the rolling p99 window.
    pub window: usize,
    /// Priority floor for the final rung: tenants with priority strictly
    /// below this are shed at [`DegradeLevel::ShedLowPriority`].
    pub shed_floor: u8,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            enter_queue: 48,
            exit_queue: 12,
            enter_p99: Duration::from_millis(50),
            exit_p99: Duration::from_millis(20),
            dwell: Duration::from_millis(20),
            window: 256,
            shed_floor: 1,
        }
    }
}

impl DegradePolicy {
    fn validate(mut self) -> DegradePolicy {
        self.exit_queue = self.exit_queue.min(self.enter_queue);
        self.exit_p99 = self.exit_p99.min(self.enter_p99);
        self.window = self.window.max(8);
        self
    }
}

/// One transition the controller committed: `(from, to)`.
pub type Transition = (DegradeLevel, DegradeLevel);

/// Hysteresis controller over queue depth and rolling p99.
#[derive(Debug)]
pub struct DegradeController {
    policy: DegradePolicy,
    level: DegradeLevel,
    last_change: Option<Instant>,
    /// Ring buffer of admitted latencies, nanoseconds.
    ring: Vec<u64>,
    idx: usize,
    filled: usize,
    observed: u64,
    cached_p99: Option<Duration>,
    stale: bool,
    escalations: u64,
    deescalations: u64,
}

/// Recompute the cached p99 every this many observations — the window is
/// sorted on recompute, so amortise it.
const P99_REFRESH: u64 = 16;

impl DegradeController {
    /// A controller at [`DegradeLevel::Normal`] with an empty window.
    pub fn new(policy: DegradePolicy) -> DegradeController {
        let policy = policy.validate();
        let window = policy.window;
        DegradeController {
            policy,
            level: DegradeLevel::Normal,
            last_change: None,
            ring: vec![0; window],
            idx: 0,
            filled: 0,
            observed: 0,
            cached_p99: None,
            stale: false,
            escalations: 0,
            deescalations: 0,
        }
    }

    /// Record one admitted-query latency into the rolling window.
    pub fn observe(&mut self, latency: Duration) {
        self.ring[self.idx] = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.idx = (self.idx + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());
        self.observed += 1;
        self.stale = true;
    }

    /// The rolling p99 of admitted latencies (amortised recompute), or
    /// `None` until the window has a meaningful sample count.
    pub fn p99(&mut self) -> Option<Duration> {
        if self.filled < 8 {
            return None;
        }
        if self.stale && self.observed.is_multiple_of(P99_REFRESH) || self.cached_p99.is_none() {
            let mut window = self.ring[..self.filled].to_vec();
            window.sort_unstable();
            let rank = ((self.filled as f64) * 0.99).ceil() as usize;
            let nanos = window[rank.clamp(1, self.filled) - 1];
            self.cached_p99 = Some(Duration::from_nanos(nanos));
            self.stale = false;
        }
        self.cached_p99
    }

    /// Evaluate the signals and move at most one rung, respecting dwell.
    /// Returns the committed transition, if any.
    pub fn evaluate(&mut self, queue_depth: usize, now: Instant) -> Option<Transition> {
        if let Some(at) = self.last_change {
            if now.saturating_duration_since(at) < self.policy.dwell {
                return None;
            }
        }
        let p99 = self.p99();
        let hot = queue_depth > self.policy.enter_queue
            || p99.is_some_and(|p| p > self.policy.enter_p99);
        let cool = queue_depth <= self.policy.exit_queue
            && p99.is_none_or(|p| p <= self.policy.exit_p99);
        let from = self.level;
        let to = if hot {
            from.up()
        } else if cool {
            from.down()
        } else {
            from
        };
        if to == from {
            return None;
        }
        self.level = to;
        self.last_change = Some(now);
        if to > from {
            self.escalations += 1;
        } else {
            self.deescalations += 1;
        }
        Some((from, to))
    }

    /// The current rung.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Rungs climbed (cumulative).
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Rungs descended (cumulative).
    pub fn deescalations(&self) -> u64 {
        self.deescalations
    }

    /// The governing thresholds.
    pub fn policy(&self) -> &DegradePolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DegradePolicy {
        DegradePolicy {
            enter_queue: 10,
            exit_queue: 2,
            enter_p99: Duration::from_millis(100),
            exit_p99: Duration::from_millis(10),
            dwell: Duration::from_millis(5),
            window: 16,
            shed_floor: 1,
        }
    }

    #[test]
    fn escalates_one_rung_at_a_time_and_recovers_in_reverse() {
        let mut ctl = DegradeController::new(policy());
        let t0 = Instant::now();
        let step = Duration::from_millis(10);
        // Sustained deep queues walk down the whole ladder, one rung per
        // dwell-spaced evaluation.
        for (i, want) in [
            DegradeLevel::NoSpeculation,
            DegradeLevel::FineGrain,
            DegradeLevel::ShedLowPriority,
        ]
        .iter()
        .enumerate()
        {
            let got = ctl.evaluate(50, t0 + step * (i as u32 + 1));
            assert_eq!(got.map(|(_, to)| to), Some(*want));
        }
        // The ladder is bounded.
        assert_eq!(ctl.evaluate(50, t0 + step * 10), None);
        // Pressure clears: recovery retraces the rungs in reverse.
        for (i, want) in [
            DegradeLevel::FineGrain,
            DegradeLevel::NoSpeculation,
            DegradeLevel::Normal,
        ]
        .iter()
        .enumerate()
        {
            let got = ctl.evaluate(0, t0 + step * (20 + i as u32));
            assert_eq!(got.map(|(_, to)| to), Some(*want));
        }
        assert_eq!(ctl.escalations(), 3);
        assert_eq!(ctl.deescalations(), 3);
    }

    #[test]
    fn dwell_blocks_back_to_back_transitions() {
        let mut ctl = DegradeController::new(policy());
        let t0 = Instant::now();
        assert!(ctl.evaluate(50, t0 + Duration::from_millis(10)).is_some());
        // Inside the dwell window nothing moves, hot or cold.
        assert_eq!(ctl.evaluate(50, t0 + Duration::from_millis(11)), None);
        assert_eq!(ctl.evaluate(0, t0 + Duration::from_millis(12)), None);
    }

    #[test]
    fn middle_band_holds_the_level() {
        let mut ctl = DegradeController::new(policy());
        let t0 = Instant::now();
        assert!(ctl.evaluate(50, t0 + Duration::from_millis(10)).is_some());
        // Depth 5 is above exit (2) but below enter (10): hysteresis holds.
        assert_eq!(ctl.evaluate(5, t0 + Duration::from_millis(30)), None);
        assert_eq!(ctl.level(), DegradeLevel::NoSpeculation);
    }

    #[test]
    fn p99_signal_escalates_without_queue_pressure() {
        let mut ctl = DegradeController::new(policy());
        for _ in 0..16 {
            ctl.observe(Duration::from_millis(500));
        }
        let got = ctl.evaluate(0, Instant::now() + Duration::from_millis(10));
        assert_eq!(got.map(|(_, to)| to), Some(DegradeLevel::NoSpeculation));
    }
}
