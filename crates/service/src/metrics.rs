//! Lock-free service counters and their snapshot type.
//!
//! Counters are plain relaxed atomics — they are observability, not
//! control flow, so no ordering stronger than `Relaxed` is needed.

use crate::degrade::DegradeLevel;
use crate::error::{RejectReason, ServiceError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, shared by every worker and submitter.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_rate_limited: AtomicU64,
    rejected_cost_shed: AtomicU64,
    rejected_tenant_shed: AtomicU64,
    rejected_shutdown: AtomicU64,
    completed_ok: AtomicU64,
    completed_error: AtomicU64,
    supervision_aborts: AtomicU64,
    worker_panics: AtomicU64,
    escalations: AtomicU64,
    deescalations: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejection(&self, reason: &RejectReason) {
        let counter = match reason {
            RejectReason::QueueFull { .. } => &self.rejected_queue_full,
            RejectReason::RateLimited { .. } => &self.rejected_rate_limited,
            RejectReason::CostShed { .. } => &self.rejected_cost_shed,
            RejectReason::TenantShed { .. } => &self.rejected_tenant_shed,
            RejectReason::ShuttingDown => &self.rejected_shutdown,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completion(&self, result: &Result<(), &ServiceError>) {
        match result {
            Ok(()) => {
                self.completed_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.completed_error.fetch_add(1, Ordering::Relaxed);
                match e {
                    ServiceError::Exec(exec) if exec.partial_report().is_some() => {
                        self.supervision_aborts.fetch_add(1, Ordering::Relaxed);
                    }
                    ServiceError::WorkerPanicked { .. } => {
                        self.worker_panics.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
    }

    pub(crate) fn record_transition(&self, from: DegradeLevel, to: DegradeLevel) {
        if to > from {
            self.escalations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.deescalations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy for reporting (individual counters are
    /// exact; cross-counter sums can be mid-update by design).
    pub fn snapshot(&self, level: DegradeLevel) -> MetricsSnapshot {
        let r = Ordering::Relaxed;
        MetricsSnapshot {
            submitted: self.submitted.load(r),
            admitted: self.admitted.load(r),
            rejected_queue_full: self.rejected_queue_full.load(r),
            rejected_rate_limited: self.rejected_rate_limited.load(r),
            rejected_cost_shed: self.rejected_cost_shed.load(r),
            rejected_tenant_shed: self.rejected_tenant_shed.load(r),
            rejected_shutdown: self.rejected_shutdown.load(r),
            completed_ok: self.completed_ok.load(r),
            completed_error: self.completed_error.load(r),
            supervision_aborts: self.supervision_aborts.load(r),
            worker_panics: self.worker_panics.load(r),
            escalations: self.escalations.load(r),
            deescalations: self.deescalations.load(r),
            level,
        }
    }
}

/// Point-in-time counter values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries offered to admission (admitted + rejected).
    pub submitted: u64,
    /// Queries past admission and queued.
    pub admitted: u64,
    /// Rejections: tenant queue at cap.
    pub rejected_queue_full: u64,
    /// Rejections: token bucket empty.
    pub rejected_rate_limited: u64,
    /// Rejections: cost estimate did not fit the in-flight budget.
    pub rejected_cost_shed: u64,
    /// Rejections: tenant below the shed floor at the deepest rung.
    pub rejected_tenant_shed: u64,
    /// Rejections: service shutting down.
    pub rejected_shutdown: u64,
    /// Admitted queries that returned a value.
    pub completed_ok: u64,
    /// Admitted queries that returned a typed error.
    pub completed_error: u64,
    /// Subset of errors that were supervision aborts (deadline,
    /// cancellation, retry-budget) carrying a partial report.
    pub supervision_aborts: u64,
    /// Worker panics absorbed at the service boundary.
    pub worker_panics: u64,
    /// Degradation rungs climbed.
    pub escalations: u64,
    /// Degradation rungs descended.
    pub deescalations: u64,
    /// The degradation level at snapshot time.
    pub level: DegradeLevel,
}

impl MetricsSnapshot {
    /// Total rejections across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_rate_limited
            + self.rejected_cost_shed
            + self.rejected_tenant_shed
            + self.rejected_shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_bucket_by_reason() {
        let m = ServiceMetrics::default();
        m.record_submitted();
        m.record_rejection(&RejectReason::ShuttingDown);
        m.record_rejection(&RejectReason::RateLimited { rate_per_sec: 1.0 });
        m.record_rejection(&RejectReason::RateLimited { rate_per_sec: 1.0 });
        let snap = m.snapshot(DegradeLevel::Normal);
        assert_eq!(snap.rejected_shutdown, 1);
        assert_eq!(snap.rejected_rate_limited, 2);
        assert_eq!(snap.rejected(), 3);
    }
}
