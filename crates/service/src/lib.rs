#![warn(missing_docs)]

//! # DMLL multi-tenant query service
//!
//! An always-on worker-pool service that runs DMLL programs for many
//! tenants and **survives overload by design** rather than by luck:
//!
//! - **Admission control** ([`ServiceBuilder`], [`QueryService::submit`]):
//!   per-tenant bounded queues, token-bucket rate limits, and
//!   cost-estimate load shedding. Excess load is *rejected* with a typed
//!   [`ServiceError::Rejected`] — queues never grow without bound, so
//!   admitted-query latency stays flat while throughput saturates.
//! - **Per-tenant policy** ([`TenantPolicy`]): deadline, priority, and
//!   retry budget, compiled per query into the runtime's
//!   `SupervisorPolicy` with the *remaining* deadline propagated — a
//!   query sheds all remaining work the moment its tenant deadline
//!   passes, even if that moment arrives while it is still queued.
//! - **Graceful degradation** ([`DegradeLevel`], [`DegradePolicy`]):
//!   under sustained overload the service first disables straggler
//!   speculation, then drops compiled kernels to scalar granularity,
//!   then sheds the lowest-priority tenants — recovering in reverse
//!   order under a hysteresis controller driven by queue depth and
//!   admitted p99.
//! - **Shared compilation** ([`QueryService::kernel_cache`]): all
//!   tenants share one kernel cache through per-tenant *views* (same
//!   store, private hit/miss/eviction counters), so a hot query compiled
//!   for one tenant is a cache hit for every other. Datasets are
//!   copy-on-write snapshots ([`DatasetStore`]): republishing swaps an
//!   `Arc` while in-flight queries keep the version they started with.
//!
//! The contract the chaos harness enforces: every submitted query gets
//! either a bit-identical result (vs. the sequential interpreter) or a
//! typed error — and the service never deadlocks or collapses, no matter
//! the overload, fault injection, or deadline pressure.

mod admission;
mod dataset;
mod degrade;
mod error;
mod metrics;
mod policy;
mod service;

pub use admission::TokenBucket;
pub use dataset::{DatasetStore, Snapshot};
pub use degrade::{DegradeController, DegradeLevel, DegradePolicy, Transition};
pub use error::{RejectReason, ServiceError};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use policy::TenantPolicy;
pub use service::{
    QueryOutcome, QueryRequest, QueryService, ServiceBuilder, ServiceConfig, TenantId,
    TenantSnapshot,
};
