//! Copy-on-write dataset snapshots.
//!
//! A dataset is a named set of input bindings. Queries resolve their
//! dataset at dispatch and hold an `Arc` to the snapshot for the whole
//! run; replacing a dataset swaps the `Arc` in the store, so in-flight
//! queries keep computing over the version they started with while new
//! queries see the update. DMLL [`Value`]s are themselves `Arc`-backed,
//! so a snapshot clone is pointer-sized no matter how large the arrays —
//! copy-on-write falls out of the value representation.

use dmll_interp::Value;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// One immutable dataset version: named input bindings.
pub type Snapshot = Arc<Vec<(String, Value)>>;

/// Named dataset snapshots, swappable while queries are in flight.
#[derive(Debug, Default)]
pub struct DatasetStore {
    inner: RwLock<HashMap<String, Snapshot>>,
}

impl DatasetStore {
    /// An empty store.
    pub fn new() -> DatasetStore {
        DatasetStore::default()
    }

    /// Publish (or replace) a dataset. In-flight queries holding the old
    /// snapshot are unaffected. Returns the published snapshot.
    pub fn publish(&self, name: &str, bindings: Vec<(String, Value)>) -> Snapshot {
        let snap: Snapshot = Arc::new(bindings);
        self.inner
            .write()
            .expect("dataset lock poisoned")
            .insert(name.to_string(), Arc::clone(&snap));
        snap
    }

    /// The current snapshot of a dataset, if published.
    pub fn get(&self, name: &str) -> Option<Snapshot> {
        self.inner
            .read()
            .expect("dataset lock poisoned")
            .get(name)
            .cloned()
    }

    /// Published dataset names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .read()
            .expect("dataset lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacing_a_dataset_leaves_old_snapshots_intact() {
        let store = DatasetStore::new();
        store.publish("sales", vec![("x".into(), Value::f64_arr(vec![1.0]))]);
        let held = store.get("sales").expect("published");
        store.publish("sales", vec![("x".into(), Value::f64_arr(vec![2.0]))]);
        // The in-flight snapshot still sees version 1…
        assert_eq!(held[0].1, Value::f64_arr(vec![1.0]));
        // …while new resolutions see version 2.
        let fresh = store.get("sales").expect("published");
        assert_eq!(fresh[0].1, Value::f64_arr(vec![2.0]));
    }

    #[test]
    fn snapshots_share_storage_not_copies() {
        let store = DatasetStore::new();
        let v = Value::f64_arr((0..1024).map(|i| i as f64).collect());
        store.publish("big", vec![("x".into(), v)]);
        let a = store.get("big").unwrap();
        let b = store.get("big").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
