//! Token-bucket rate limiting, the first admission gate.
//!
//! The clock is passed in (`Instant` arguments) rather than read inside,
//! so tests drive refill deterministically and the service pays one
//! `Instant::now()` per submission.

use std::time::Instant;

/// A standard token bucket: `burst` capacity, `rate_per_sec` refill.
#[derive(Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket observed at `now`.
    pub fn new(rate_per_sec: f64, burst: f64, now: Instant) -> TokenBucket {
        TokenBucket {
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(1.0),
            tokens: burst.max(1.0),
            last: now,
        }
    }

    /// Credit tokens for the time elapsed since the last refill, capped at
    /// the burst size. Time moving backwards credits nothing.
    pub fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last = now;
    }

    /// Refill to `now`, then take one token if available.
    pub fn try_take(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (post last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_starve_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 3.0, t0);
        // The burst drains…
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        // …then the bucket starves at the same instant…
        assert!(!b.try_take(t0));
        // …and 100ms at 10/s buys exactly one more.
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(1_000.0, 2.0, t0);
        assert!(b.try_take(t0));
        b.refill(t0 + Duration::from_secs(60));
        assert_eq!(b.available(), 2.0);
    }

    #[test]
    fn time_going_backwards_is_not_a_credit() {
        let t0 = Instant::now() + Duration::from_secs(1);
        let mut b = TokenBucket::new(10.0, 1.0, t0);
        assert!(b.try_take(t0));
        b.refill(t0 - Duration::from_secs(1));
        assert!(!b.try_take(t0 - Duration::from_secs(1)));
    }
}
