//! The service-level error surface.
//!
//! Two rules. First, overload is a *typed outcome*, not an accident: every
//! way the service can refuse or abandon a query has its own variant, so
//! callers (and the chaos gate) can distinguish "you were shed" from "your
//! query is wrong" from "the run timed out". Second, the source chain never
//! drops context: a [`ServiceError::Exec`] renders its own frame and
//! exposes the full [`ExecError`] chain through
//! [`std::error::Error::source`], so a harness that prints the chain sees
//! every layer down to the root `EvalError`/`RuntimeError`.

use dmll_interp::ExecError;
use std::fmt;

/// Why the admission controller refused a query.
#[derive(Clone, Debug, PartialEq)]
pub enum RejectReason {
    /// The tenant's bounded queue is full — queuing unboundedly would turn
    /// overload into collapse.
    QueueFull {
        /// Queue depth at rejection.
        depth: usize,
        /// The tenant's configured cap.
        cap: usize,
    },
    /// The tenant's token bucket is empty (sustained rate above its limit).
    RateLimited {
        /// Configured sustained rate, queries per second.
        rate_per_sec: f64,
    },
    /// The query's cost estimate does not fit the service-wide in-flight
    /// cost budget (cost-estimate-based load shedding).
    CostShed {
        /// The query's estimated cost (abstract units; benches use rows).
        estimated: f64,
        /// Cost already admitted and not yet completed.
        outstanding: f64,
        /// The service-wide budget.
        budget: f64,
    },
    /// The degradation ladder is at its last rung and this tenant's
    /// priority is below the shed floor.
    TenantShed {
        /// The tenant's priority.
        priority: u8,
        /// Priorities strictly below this are shed.
        floor: u8,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth, cap } => {
                write!(f, "tenant queue full ({depth} of {cap})")
            }
            RejectReason::RateLimited { rate_per_sec } => {
                write!(f, "rate limit exceeded ({rate_per_sec} queries/s sustained)")
            }
            RejectReason::CostShed {
                estimated,
                outstanding,
                budget,
            } => write!(
                f,
                "load shed: estimated cost {estimated} does not fit budget \
                 ({outstanding} of {budget} outstanding)"
            ),
            RejectReason::TenantShed { priority, floor } => write!(
                f,
                "tenant shed under overload (priority {priority} below floor {floor})"
            ),
            RejectReason::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl RejectReason {
    /// Stable snake_case label for counters and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::RateLimited { .. } => "rate_limited",
            RejectReason::CostShed { .. } => "cost_shed",
            RejectReason::TenantShed { .. } => "tenant_shed",
            RejectReason::ShuttingDown => "shutting_down",
        }
    }
}

/// Everything a query submitted to the service can fail with.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The admission controller refused the query before any work ran.
    Rejected {
        /// The submitting tenant's name.
        tenant: String,
        /// Why admission refused.
        reason: RejectReason,
    },
    /// The query was admitted and its supervised run failed; the inner
    /// [`ExecError`] is exposed via `source()` and keeps its own chain
    /// (deadline aborts carry the partial report, eval errors chain the
    /// root cause).
    Exec(ExecError),
    /// A worker panicked *outside* the supervised executor's containment
    /// (the executor's own `catch_unwind` normally absorbs chunk panics;
    /// this is the service's last-resort boundary).
    WorkerPanicked {
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Rejected { tenant, reason } => {
                write!(f, "query from tenant {tenant:?} rejected: {reason}")
            }
            ServiceError::Exec(e) => write!(f, "query execution failed: {e}"),
            ServiceError::WorkerPanicked { message } => {
                write!(f, "service worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Exec(e) => Some(e),
            ServiceError::Rejected { .. } | ServiceError::WorkerPanicked { .. } => None,
        }
    }
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> ServiceError {
        ServiceError::Exec(e)
    }
}

impl ServiceError {
    /// Stable snake_case label of the failure class (for counters/JSON).
    pub fn label(&self) -> &'static str {
        match self {
            ServiceError::Rejected { reason, .. } => reason.label(),
            ServiceError::Exec(ExecError::Eval(_)) => "eval_error",
            ServiceError::Exec(ExecError::Runtime(_)) => "runtime_error",
            ServiceError::Exec(ExecError::Deadline { .. }) => "deadline",
            ServiceError::Exec(ExecError::Cancelled { .. }) => "cancelled",
            ServiceError::Exec(ExecError::RetryBudgetExhausted { .. }) => "retry_budget",
            ServiceError::WorkerPanicked { .. } => "worker_panic",
        }
    }

    /// Was the query refused before any work ran?
    pub fn is_rejection(&self) -> bool {
        matches!(self, ServiceError::Rejected { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_interp::EvalError;
    use std::error::Error as _;

    #[test]
    fn rejection_labels_are_stable() {
        assert_eq!(
            RejectReason::QueueFull { depth: 3, cap: 3 }.label(),
            "queue_full"
        );
        assert_eq!(RejectReason::ShuttingDown.label(), "shutting_down");
    }

    #[test]
    fn exec_errors_chain_to_the_root_cause() {
        let e = ServiceError::from(ExecError::Eval(EvalError::DivisionByZero));
        assert_eq!(e.label(), "eval_error");
        // ServiceError -> ExecError -> EvalError, each level reachable.
        let exec = e.source().expect("ExecError");
        let eval = exec.source().expect("EvalError");
        assert!(eval.to_string().contains("division by zero"));
    }

    #[test]
    fn rejections_are_terminal_and_typed() {
        let e = ServiceError::Rejected {
            tenant: "acme".into(),
            reason: RejectReason::RateLimited { rate_per_sec: 10.0 },
        };
        assert!(e.is_rejection());
        assert!(e.source().is_none());
        assert!(e.to_string().contains("acme"));
        assert!(e.to_string().contains("rate limit"));
    }
}
