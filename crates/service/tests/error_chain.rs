//! Display/source-chain round-trip for the typed error surface.
//!
//! The contract under test: rendering a [`ServiceError`] — its own
//! `Display` frame plus every frame reachable through
//! [`std::error::Error::source`] — preserves the context of every layer.
//! Tenant names and rejection parameters, supervision details (deadline
//! budget, elapsed time, retry budget, failing chunk) and the partial
//! progress of aborted runs, all the way down to the root
//! `EvalError`/`RuntimeError`. No variant may collapse to a bare label.

use dmll_interp::{EvalError, ExecError, ExecReport};
use dmll_runtime::RuntimeError;
use dmll_service::{RejectReason, ServiceError};
use std::error::Error as _;
use std::time::Duration;

/// Walk the source chain, outermost first.
fn render_chain(e: &dyn std::error::Error) -> Vec<String> {
    let mut frames = vec![e.to_string()];
    let mut cur = e.source();
    while let Some(s) = cur {
        frames.push(s.to_string());
        cur = s.source();
    }
    frames
}

fn progressed_report() -> ExecReport {
    ExecReport {
        chunk_executions: 7,
        ..ExecReport::default()
    }
}

#[test]
fn eval_chain_round_trips_every_frame() {
    let e = ServiceError::from(ExecError::Eval(EvalError::ChunkRetriesExhausted {
        chunk: 9,
        attempts: 5,
        message: "injected kill".into(),
    }));
    let frames = render_chain(&e);
    assert_eq!(frames.len(), 3, "service -> exec -> eval: {frames:?}");
    // Each outer frame embeds the inner one verbatim: no layer may
    // summarize away the context beneath it.
    for w in frames.windows(2) {
        assert!(w[0].contains(&w[1]), "outer {:?} drops inner {:?}", w[0], w[1]);
    }
    let root = frames.last().unwrap();
    assert!(root.contains("chunk 9"), "{root}");
    assert!(root.contains("5 executions"), "{root}");
    assert!(root.contains("injected kill"), "{root}");
}

#[test]
fn runtime_chain_round_trips() {
    let e = ServiceError::from(ExecError::Runtime(RuntimeError::NoSurvivors));
    let frames = render_chain(&e);
    assert_eq!(frames.len(), 3, "service -> exec -> runtime: {frames:?}");
    for w in frames.windows(2) {
        assert!(w[0].contains(&w[1]), "outer {:?} drops inner {:?}", w[0], w[1]);
    }
    assert_eq!(e.label(), "runtime_error");
}

#[test]
fn deadline_abort_keeps_budget_elapsed_and_progress() {
    let e = ServiceError::from(ExecError::Deadline {
        deadline: Duration::from_millis(10),
        elapsed: Duration::from_millis(13),
        partial: progressed_report(),
    });
    let text = e.to_string();
    assert!(text.contains("0.010"), "budget missing: {text}");
    assert!(text.contains("0.013"), "elapsed missing: {text}");
    assert!(text.contains("7 chunk executions"), "progress missing: {text}");
    assert_eq!(e.label(), "deadline");
}

#[test]
fn cancellation_keeps_progress() {
    let e = ServiceError::from(ExecError::Cancelled {
        partial: progressed_report(),
    });
    let text = e.to_string();
    assert!(text.contains("cancelled"), "{text}");
    assert!(text.contains("7 chunk executions"), "progress missing: {text}");
    assert_eq!(e.label(), "cancelled");
}

#[test]
fn retry_budget_abort_keeps_chunk_budget_and_message() {
    let e = ServiceError::from(ExecError::RetryBudgetExhausted {
        chunk: 4,
        budget: 16,
        message: "persistent fault".into(),
        partial: progressed_report(),
    });
    let text = e.to_string();
    assert!(text.contains("chunk 4"), "{text}");
    assert!(text.contains("16"), "{text}");
    assert!(text.contains("persistent fault"), "{text}");
    assert_eq!(e.label(), "retry_budget");
}

#[test]
fn rejections_render_tenant_and_every_parameter() {
    let cases: Vec<(RejectReason, Vec<&str>)> = vec![
        (
            RejectReason::QueueFull { depth: 8, cap: 8 },
            vec!["queue full", "8 of 8"],
        ),
        (
            RejectReason::RateLimited {
                rate_per_sec: 250.0,
            },
            vec!["rate limit", "250"],
        ),
        (
            RejectReason::CostShed {
                estimated: 40.0,
                outstanding: 90.0,
                budget: 100.0,
            },
            vec!["load shed", "40", "90", "100"],
        ),
        (
            RejectReason::TenantShed {
                priority: 0,
                floor: 2,
            },
            vec!["shed under overload", "priority 0", "floor 2"],
        ),
        (RejectReason::ShuttingDown, vec!["shutting down"]),
    ];
    for (reason, needles) in cases {
        let label = reason.label();
        let e = ServiceError::Rejected {
            tenant: "acme".into(),
            reason,
        };
        let text = e.to_string();
        assert!(text.contains("acme"), "tenant missing: {text}");
        for needle in needles {
            assert!(text.contains(needle), "{label}: {needle:?} missing: {text}");
        }
        assert_eq!(e.label(), label, "label round-trip");
        assert!(e.is_rejection());
        assert!(e.source().is_none(), "rejections are terminal");
    }
}

#[test]
fn worker_panic_keeps_payload() {
    let e = ServiceError::WorkerPanicked {
        message: "index out of bounds in user extern".into(),
    };
    assert!(e.to_string().contains("index out of bounds in user extern"));
    assert_eq!(e.label(), "worker_panic");
    assert!(e.source().is_none());
}
