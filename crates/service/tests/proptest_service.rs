//! Property tests for the zero-work invariants, mirroring the executor's
//! pre-cancelled invariant at the service layer:
//!
//! - a query *rejected at admission* does zero kernel work (no cache
//!   traffic, no report — nothing ran);
//! - a query whose *deadline expired* (here: a zero-budget deadline that
//!   is already spent when the worker picks the query up) aborts with a
//!   typed error whose partial report has every tier counter at zero.

use dmll_core::{LayoutHint, Program, Ty};
use dmll_frontend::Stage;
use dmll_interp::Value;
use dmll_service::{
    DegradePolicy, QueryRequest, ServiceBuilder, ServiceConfig, ServiceError, TenantPolicy,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn sum_squares() -> Arc<Program> {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let sq = st.map(&x, |st, e| st.mul(e, e));
    let total = st.sum(&sq);
    Arc::new(st.finish(&total))
}

fn inert_degrade() -> DegradePolicy {
    DegradePolicy {
        enter_queue: usize::MAX / 2,
        exit_queue: 0,
        enter_p99: Duration::from_secs(3600),
        exit_p99: Duration::from_secs(3600),
        dwell: Duration::from_secs(3600),
        window: 64,
        shed_floor: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pre-rejected queries never touch a kernel: for random data sizes
    /// and a token bucket that admits nothing, every submission returns a
    /// typed rejection and the tenant's kernel-cache view stays at zero.
    #[test]
    fn rejected_queries_do_zero_kernel_work(
        rows in 1usize..2_000,
        attempts in 1usize..6,
    ) {
        let program = sum_squares();
        let mut b = ServiceBuilder::new(ServiceConfig {
            workers: 1,
            degrade: inert_degrade(),
            ..ServiceConfig::default()
        });
        // burst is clamped to >= 1 token, so spend it on a doomed query
        // first (deadline ZERO -> typed error, no kernel work), leaving
        // the bucket empty for the attempts under test.
        let t = b.tenant("starved", TenantPolicy {
            rate_per_sec: 0.0,
            burst: 1.0,
            deadline: Duration::ZERO,
            ..TenantPolicy::default()
        });
        let svc = b.start();
        let data: Vec<i64> = (0..rows as i64).collect();
        let req = QueryRequest::new(Arc::clone(&program))
            .with_input("x", Value::i64_arr(data));
        let warm = svc.submit(t, req.clone()).expect("burst token admits one");
        prop_assert!(warm.recv().unwrap().result.is_err());

        for _ in 0..attempts {
            match svc.submit(t, req.clone()) {
                Err(ServiceError::Rejected { reason, .. }) => {
                    prop_assert_eq!(reason.label(), "rate_limited");
                }
                other => {
                    return Err(TestCaseError::fail(format!("expected rejection, got {other:?}")));
                }
            }
        }
        let stats = &svc.tenant_stats()[0];
        prop_assert_eq!(stats.cache.hits, 0);
        prop_assert_eq!(stats.cache.misses, 0);
        prop_assert_eq!(stats.rejected, attempts as u64);
        let m = svc.shutdown();
        prop_assert_eq!(m.rejected_rate_limited, attempts as u64);
    }

    /// Deadline-expired queries do zero kernel work: the typed abort's
    /// partial report has every execution counter at zero and the
    /// tenant's cache view never saw a lookup, for any data size and
    /// queue depth.
    #[test]
    fn deadline_expired_queries_do_zero_kernel_work(
        rows in 1usize..50_000,
        backlog in 1usize..8,
    ) {
        let program = sum_squares();
        let mut b = ServiceBuilder::new(ServiceConfig {
            workers: 1,
            degrade: inert_degrade(),
            ..ServiceConfig::default()
        });
        let t = b.tenant("expired", TenantPolicy {
            deadline: Duration::ZERO,
            queue_cap: 16,
            ..TenantPolicy::default()
        });
        let svc = b.start();
        let data: Vec<i64> = (0..rows as i64).map(|i| i % 97).collect();
        let req = QueryRequest::new(Arc::clone(&program))
            .with_input("x", Value::i64_arr(data));
        let receivers: Vec<_> = (0..backlog)
            .map(|_| svc.submit(t, req.clone()).expect("admitted"))
            .collect();
        for rx in receivers {
            let out = rx.recv().unwrap();
            match &out.result {
                Err(ServiceError::Exec(e)) => {
                    let partial = e.partial_report().expect("abort carries a report");
                    prop_assert_eq!(partial.chunk_executions, 0);
                    prop_assert_eq!(partial.compiled_loops, 0);
                    prop_assert_eq!(partial.treewalk_loops, 0);
                    prop_assert_eq!(partial.batched_loops, 0);
                    prop_assert_eq!(partial.speculative_tasks, 0);
                }
                other => {
                    return Err(TestCaseError::fail(format!("expected deadline abort, got {other:?}")));
                }
            }
        }
        let stats = &svc.tenant_stats()[0];
        prop_assert_eq!(stats.cache.hits + stats.cache.misses, 0);
        let m = svc.shutdown();
        prop_assert_eq!(m.completed_ok, 0);
        prop_assert_eq!(m.supervision_aborts, backlog as u64);
    }
}
