//! End-to-end tests of the query service: correctness against the
//! sequential interpreter, every typed rejection, deadline propagation,
//! the degradation ladder, cross-tenant kernel-cache sharing, and
//! drain-on-shutdown.

use dmll_core::{LayoutHint, Program, Ty};
use dmll_frontend::Stage;
use dmll_interp::{eval, ChunkFaults, Value};
use dmll_service::{
    DegradeLevel, DegradePolicy, QueryRequest, RejectReason, ServiceBuilder, ServiceConfig,
    ServiceError, TenantPolicy,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sum of squares over `x`, exact over i64.
fn sum_squares() -> Arc<Program> {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let sq = st.map(&x, |st, e| st.mul(e, e));
    let total = st.sum(&sq);
    Arc::new(st.finish(&total))
}

fn data(rows: usize) -> Vec<i64> {
    (0..rows as i64).map(|i| (i * 37) % 101).collect()
}

/// A degrade policy that never triggers (for tests not about degradation).
fn inert_degrade() -> DegradePolicy {
    DegradePolicy {
        enter_queue: usize::MAX / 2,
        exit_queue: 0,
        enter_p99: Duration::from_secs(3600),
        exit_p99: Duration::from_secs(3600),
        dwell: Duration::from_secs(3600),
        window: 64,
        shed_floor: 1,
    }
}

#[test]
fn admitted_queries_match_the_sequential_interpreter() {
    let program = sum_squares();
    let rows = data(512);
    let expected = eval(&program, &[("x", Value::i64_arr(rows.clone()))]).unwrap();

    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 2,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let acme = b.tenant("acme", TenantPolicy::default());
    b.dataset("rows", vec![("x".into(), Value::i64_arr(rows))]);
    let svc = b.start();

    for _ in 0..8 {
        let rx = svc
            .submit(acme, QueryRequest::new(Arc::clone(&program)).with_dataset("rows"))
            .expect("admitted");
        let out = rx.recv().expect("outcome");
        assert_eq!(out.result.as_ref().unwrap(), &expected);
        assert!(out.report.is_some());
    }
    let m = svc.shutdown();
    assert_eq!(m.completed_ok, 8);
    assert_eq!(m.completed_error, 0);
}

#[test]
fn explicit_inputs_override_dataset_bindings() {
    let program = sum_squares();
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let t = b.tenant("t", TenantPolicy::default());
    b.dataset("rows", vec![("x".into(), Value::i64_arr(vec![100, 100]))]);
    let svc = b.start();

    let rx = svc
        .submit(
            t,
            QueryRequest::new(Arc::clone(&program))
                .with_dataset("rows")
                .with_input("x", Value::i64_arr(vec![1, 2, 3])),
        )
        .unwrap();
    assert_eq!(rx.recv().unwrap().result.unwrap(), Value::I64(14));
    svc.shutdown();
}

#[test]
fn queue_full_and_rate_limit_reject_with_typed_errors() {
    let program = sum_squares();
    // One worker, tiny queue, tiny burst: the fourth submission must hit a
    // limit. Deadline generous so queued work still completes.
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let t = b.tenant(
        "bursty",
        TenantPolicy {
            queue_cap: 2,
            rate_per_sec: 0.0,
            burst: 3.0,
            deadline: Duration::from_secs(30),
            ..TenantPolicy::default()
        },
    );
    let svc = b.start();
    // Big enough that the worker is still busy while we flood the queue.
    let heavy = QueryRequest::new(Arc::clone(&program))
        .with_input("x", Value::i64_arr(data(400_000)));

    let mut receivers = Vec::new();
    let mut saw_queue_full = false;
    let mut saw_rate_limited = false;
    for _ in 0..8 {
        match svc.submit(t, heavy.clone()) {
            Ok(rx) => receivers.push(rx),
            Err(ServiceError::Rejected { reason, .. }) => match reason {
                RejectReason::QueueFull { cap, .. } => {
                    assert_eq!(cap, 2);
                    saw_queue_full = true;
                }
                RejectReason::RateLimited { .. } => saw_rate_limited = true,
                other => panic!("unexpected rejection: {other:?}"),
            },
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    // The burst of 3 tokens caps admissions at 3, so rate limiting fires;
    // whether queue-full fires first depends on worker speed — at least
    // one limit must have engaged and nothing was silently dropped.
    assert!(saw_rate_limited || saw_queue_full);
    assert!(receivers.len() <= 3, "burst of 3 should cap admissions");
    for rx in receivers {
        let out = rx.recv().expect("every admitted query resolves");
        assert!(out.result.is_ok());
    }
    let m = svc.shutdown();
    assert_eq!(m.submitted, 8);
    assert_eq!(m.admitted + m.rejected(), m.submitted);
    assert!(m.rejected() > 0);
}

#[test]
fn cost_budget_sheds_oversized_load() {
    let program = sum_squares();
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        cost_budget: 10.0,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let t = b.tenant(
        "costly",
        TenantPolicy {
            queue_cap: 64,
            deadline: Duration::from_secs(30),
            ..TenantPolicy::default()
        },
    );
    let svc = b.start();
    let req = |cost: f64| {
        QueryRequest::new(Arc::clone(&program))
            .with_input("x", Value::i64_arr(data(200_000)))
            .with_cost(cost)
    };
    // 8 + 8 > 10: with the worker busy on the first, the second must shed.
    let rx = svc.submit(t, req(8.0)).expect("fits the budget");
    let mut shed = false;
    for _ in 0..4 {
        match svc.submit(t, req(8.0)) {
            Err(ServiceError::Rejected {
                reason: RejectReason::CostShed { estimated, budget, .. },
                ..
            }) => {
                assert_eq!(estimated, 8.0);
                assert_eq!(budget, 10.0);
                shed = true;
                break;
            }
            Ok(extra) => {
                // The first query finished already; its cost was credited
                // back. Drain and retry.
                let _ = extra.recv();
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(shed, "cost shedding never engaged");
    assert!(rx.recv().unwrap().result.is_ok());
    svc.shutdown();
}

#[test]
fn expired_deadlines_return_typed_errors_with_zero_work() {
    let program = sum_squares();
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let t = b.tenant(
        "impatient",
        TenantPolicy {
            deadline: Duration::ZERO,
            ..TenantPolicy::default()
        },
    );
    let svc = b.start();
    let rx = svc
        .submit(
            t,
            QueryRequest::new(Arc::clone(&program)).with_input("x", Value::i64_arr(data(4_096))),
        )
        .expect("admission does not enforce deadlines");
    let out = rx.recv().unwrap();
    match &out.result {
        Err(ServiceError::Exec(e)) => {
            let partial = e.partial_report().expect("deadline abort carries a report");
            assert_eq!(partial.chunk_executions, 0, "no chunk ran");
            assert_eq!(partial.compiled_loops, 0, "no compiled loop ran");
            assert_eq!(partial.treewalk_loops, 0, "no tree-walk loop ran");
        }
        other => panic!("expected a deadline abort, got {other:?}"),
    }
    // Zero work also means zero kernel-cache traffic for this tenant.
    let stats = &svc.tenant_stats()[0];
    assert_eq!(stats.cache.hits + stats.cache.misses, 0);
    let m = svc.shutdown();
    assert_eq!(m.supervision_aborts, 1);
}

#[test]
fn tenants_share_kernel_compiles_through_private_views() {
    let program = sum_squares();
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let first = b.tenant("first", TenantPolicy::default());
    let second = b.tenant("second", TenantPolicy::default());
    let svc = b.start();
    let req = || {
        QueryRequest::new(Arc::clone(&program)).with_input("x", Value::i64_arr(data(64)))
    };
    // First tenant compiles the kernel…
    svc.submit(first, req()).unwrap().recv().unwrap().result.unwrap();
    // …second tenant hits the shared store with its own counters.
    svc.submit(second, req()).unwrap().recv().unwrap().result.unwrap();
    let stats = svc.tenant_stats();
    assert!(stats[0].cache.misses >= 1, "first tenant compiled");
    assert_eq!(stats[1].cache.misses, 0, "second tenant never compiled");
    assert!(stats[1].cache.hits >= 1, "second tenant hit the shared entry");
    svc.shutdown();
}

#[test]
fn injected_faults_recover_without_changing_results() {
    let program = sum_squares();
    let rows = data(300_000);
    let expected = eval(&program, &[("x", Value::i64_arr(rows.clone()))]).unwrap();
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        query_threads: 3,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let t = b.tenant("flaky", TenantPolicy::default());
    let svc = b.start();
    let rx = svc
        .submit(
            t,
            QueryRequest::new(Arc::clone(&program))
                .with_input("x", Value::i64_arr(rows))
                .with_faults(ChunkFaults::fail_once([0, 1])),
        )
        .unwrap();
    let out = rx.recv().unwrap();
    assert_eq!(out.result.unwrap(), expected);
    let report = out.report.unwrap();
    assert!(report.reexecuted_chunks >= 1, "recovery actually ran");
    svc.shutdown();
}

#[test]
fn overload_walks_the_ladder_and_recovery_retraces_it() {
    let program = sum_squares();
    // Queue-depth-only controller: escalate whenever anything is queued,
    // de-escalate as soon as nothing is. Zero dwell so every completion
    // may move a rung.
    let degrade = DegradePolicy {
        enter_queue: 2,
        exit_queue: 0,
        enter_p99: Duration::from_secs(3600),
        exit_p99: Duration::from_secs(3600),
        dwell: Duration::ZERO,
        window: 16,
        shed_floor: 1,
    };
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 1,
        degrade,
        ..ServiceConfig::default()
    });
    let heavy_tenant = b.tenant(
        "heavy",
        TenantPolicy {
            priority: 5,
            queue_cap: 256,
            deadline: Duration::from_secs(60),
            rate_per_sec: 1e9,
            burst: 1e9,
            ..TenantPolicy::default()
        },
    );
    let shy_tenant = b.tenant(
        "shy",
        TenantPolicy {
            priority: 0,
            ..TenantPolicy::default()
        },
    );
    let svc = b.start();
    let heavy = QueryRequest::new(Arc::clone(&program))
        .with_input("x", Value::i64_arr(data(400_000)));

    // Flood: keep ~32 queries queued so completions keep seeing depth > 2.
    let mut receivers = Vec::new();
    for _ in 0..32 {
        receivers.push(svc.submit(heavy_tenant, heavy.clone()).unwrap());
    }
    // Wait for the ladder to bottom out (each rung needs one completion).
    let deadline = Instant::now() + Duration::from_secs(20);
    while svc.level() < DegradeLevel::ShedLowPriority {
        assert!(Instant::now() < deadline, "ladder never reached the bottom");
        std::thread::sleep(Duration::from_millis(2));
    }
    // At the deepest rung, the low-priority tenant is shed outright…
    match svc.submit(shy_tenant, heavy.clone()) {
        Err(ServiceError::Rejected {
            reason: RejectReason::TenantShed { priority, floor },
            ..
        }) => {
            assert_eq!(priority, 0);
            assert_eq!(floor, 1);
        }
        other => panic!("expected TenantShed, got {other:?}"),
    }
    // …while the high-priority tenant stays admitted (capacity allowing).
    assert!(svc
        .submit(heavy_tenant, heavy.clone())
        .map(|rx| receivers.push(rx))
        .is_ok());

    // Drain; the tail of completions sees an empty queue and retraces the
    // ladder back to Normal.
    for rx in receivers {
        let _ = rx.recv().unwrap();
    }
    let settle = Instant::now() + Duration::from_secs(20);
    while svc.level() != DegradeLevel::Normal {
        assert!(Instant::now() < settle, "service never recovered to Normal");
        // Trickle light queries: de-escalation decisions happen on
        // completions, so recovery needs a little traffic to observe.
        let rx = svc
            .submit(
                heavy_tenant,
                QueryRequest::new(Arc::clone(&program))
                    .with_input("x", Value::i64_arr(data(8))),
            )
            .unwrap();
        let _ = rx.recv();
    }
    let m = svc.shutdown();
    assert!(m.escalations >= 3, "escalations: {}", m.escalations);
    assert!(m.deescalations >= 3, "deescalations: {}", m.deescalations);
    assert_eq!(m.rejected_tenant_shed, 1);
}

#[test]
fn shutdown_drains_queued_queries() {
    let program = sum_squares();
    let mut b = ServiceBuilder::new(ServiceConfig {
        workers: 2,
        degrade: inert_degrade(),
        ..ServiceConfig::default()
    });
    let t = b.tenant(
        "drain",
        TenantPolicy {
            queue_cap: 64,
            deadline: Duration::from_secs(60),
            ..TenantPolicy::default()
        },
    );
    let svc = b.start();
    let receivers: Vec<_> = (0..16)
        .map(|_| {
            svc.submit(
                t,
                QueryRequest::new(Arc::clone(&program))
                    .with_input("x", Value::i64_arr(data(50_000))),
            )
            .unwrap()
        })
        .collect();
    let m = svc.shutdown();
    // Every admitted query resolved before the workers retired.
    assert_eq!(m.completed_ok, 16);
    for rx in receivers {
        assert!(rx.recv().unwrap().result.is_ok());
    }
}
