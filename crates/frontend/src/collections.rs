//! Derived collection operations (sugar over the four generators).
//!
//! These provide the "rich data parallelism" surface of Table 1: map,
//! zipWith, filter, reduce, fold, groupBy, groupByReduce, sum, count,
//! average, min/max-index — all staged down to multiloops.

use crate::stage::{Stage, Val};
use dmll_core::Ty;

impl Stage {
    /// `arr.map(f)`.
    pub fn map(&mut self, arr: &Val, f: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        let n = self.len(arr);
        let arr = arr.clone();
        self.collect(&n, move |st, i| {
            let e = st.read(&arr, i);
            f(st, &e)
        })
    }

    /// `a.zip(b).map(f)` — consumes two collections directly (a Table 1
    /// "multiple collections" feature).
    pub fn zip_with(
        &mut self,
        a: &Val,
        b: &Val,
        f: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
    ) -> Val {
        let n = self.len(a);
        let (a, b) = (a.clone(), b.clone());
        self.collect(&n, move |st, i| {
            let ea = st.read(&a, i);
            let eb = st.read(&b, i);
            f(st, &ea, &eb)
        })
    }

    /// Concatenate a collection of collections.
    pub fn flatten(&mut self, arr: &Val) -> Val {
        let ty = match arr.ty.elem() {
            Some(dmll_core::Ty::Arr(inner)) => dmll_core::Ty::Arr(inner.clone()),
            other => panic!("flatten needs Coll[Coll[_]], got {other:?}"),
        };
        self.emit_flatten(arr, ty)
    }

    /// `arr.flatMap(f)` where `f` produces a collection per element — the
    /// zero-or-more-values-per-iteration face of `Collect` (Fig. 2).
    pub fn flat_map(&mut self, arr: &Val, f: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        let nested = self.map(arr, f);
        self.flatten(&nested)
    }

    /// `arr.filter(p)`.
    pub fn filter(&mut self, arr: &Val, p: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        let n = self.len(arr);
        let arr2 = arr.clone();
        let arr3 = arr.clone();
        self.collect_if(
            &n,
            move |st, i| {
                let e = st.read(&arr2, i);
                p(st, &e)
            },
            move |st, i| st.read(&arr3, i),
        )
    }

    /// `arr.reduce(r)` over the elements of a collection (no explicit
    /// identity: empty input is a runtime error, as in Scala's `reduce`).
    pub fn reduce_elems(
        &mut self,
        arr: &Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
    ) -> Val {
        let n = self.len(arr);
        let arr = arr.clone();
        self.reduce(&n, move |st, i| st.read(&arr, i), r, None)
    }

    /// Numeric sum of a collection.
    pub fn sum(&mut self, arr: &Val) -> Val {
        let elem = arr
            .ty
            .elem()
            .unwrap_or_else(|| panic!("sum of non-collection {}", arr.ty))
            .clone();
        let zero = match elem {
            Ty::I64 => self.lit_i(0),
            Ty::F64 => self.lit_f(0.0),
            other => panic!("sum over non-numeric elements {other}"),
        };
        let n = self.len(arr);
        let arr = arr.clone();
        self.reduce(
            &n,
            move |st, i| st.read(&arr, i),
            |st, a, b| st.add(a, b),
            Some(&zero),
        )
    }

    /// Arithmetic mean of a `Coll[Double]`.
    pub fn mean(&mut self, arr: &Val) -> Val {
        let total = self.sum(arr);
        let n = self.len(arr);
        let nf = self.i2f(&n);
        self.div(&total, &nf)
    }

    /// Number of elements satisfying `p`.
    pub fn count_if(&mut self, arr: &Val, p: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        let n = self.len(arr);
        let arr = arr.clone();
        let zero = self.lit_i(0);
        let (cb, cv) = self.block_public(&[Ty::I64], |st, params| {
            let e = st.read(&arr, &params[0]);
            p(st, &e)
        });
        assert_eq!(cv.ty, Ty::Bool);
        self.reduce_with_cond_block(&n, cb, |st, _i| st.lit_i(1), |st, a, b| st.add(a, b), &zero)
    }

    /// `arr.groupBy(k)` — buckets of elements sharing a key.
    pub fn group_by(&mut self, arr: &Val, k: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        let n = self.len(arr);
        let a1 = arr.clone();
        let a2 = arr.clone();
        self.bucket_collect(
            &n,
            move |st, i| {
                let e = st.read(&a1, i);
                k(st, &e)
            },
            move |st, i| st.read(&a2, i),
        )
    }

    /// `arr.groupBy(k).map(_.map(f).reduce(r))` staged directly as a
    /// `BucketReduce` (what the GroupBy-Reduce rule produces).
    pub fn group_by_reduce(
        &mut self,
        arr: &Val,
        k: impl FnOnce(&mut Stage, &Val) -> Val,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
        init: Option<&Val>,
    ) -> Val {
        let n = self.len(arr);
        let a1 = arr.clone();
        let a2 = arr.clone();
        self.bucket_reduce(
            &n,
            move |st, i| {
                let e = st.read(&a1, i);
                k(st, &e)
            },
            move |st, i| {
                let e = st.read(&a2, i);
                f(st, &e)
            },
            r,
            init,
        )
    }

    /// Index of the minimum element of a `Coll[Double]` (used by k-means'
    /// nearest-centroid search). Returns an `Int`.
    pub fn min_index(&mut self, arr: &Val) -> Val {
        assert_eq!(arr.ty, Ty::arr(Ty::F64), "min_index over Coll[Double]");
        let n = self.len(arr);
        let arr = arr.clone();
        let pair = self.reduce(
            &n,
            move |st, i| {
                let v = st.read(&arr, i);
                st.tuple(&[&v, i])
            },
            |st, a, b| {
                let av = st.tuple_get(a, 0);
                let bv = st.tuple_get(b, 0);
                let le = st.le(&av, &bv);
                st.mux(&le, a, b)
            },
            None,
        );
        self.tuple_get(&pair, 1)
    }

    /// Index of the maximum element of a `Coll[Double]`.
    pub fn max_index(&mut self, arr: &Val) -> Val {
        assert_eq!(arr.ty, Ty::arr(Ty::F64), "max_index over Coll[Double]");
        let n = self.len(arr);
        let arr = arr.clone();
        let pair = self.reduce(
            &n,
            move |st, i| {
                let v = st.read(&arr, i);
                st.tuple(&[&v, i])
            },
            |st, a, b| {
                let av = st.tuple_get(a, 0);
                let bv = st.tuple_get(b, 0);
                let ge = st.ge(&av, &bv);
                st.mux(&ge, a, b)
            },
            None,
        );
        self.tuple_get(&pair, 1)
    }

    /// Element-wise sum of two equal-length `Coll[Double]`s (the vectorized
    /// `+` the Column-to-Row Reduce rule relies on).
    pub fn vec_add(&mut self, a: &Val, b: &Val) -> Val {
        self.zip_with(a, b, |st, x, y| st.add(x, y))
    }

    // -- plumbing used by the sugar above ---------------------------------

    /// Stage a block with the given parameter types (public wrapper over the
    /// internal block constructor, for advanced/test use).
    pub fn block_public(
        &mut self,
        param_tys: &[Ty],
        f: impl FnOnce(&mut Stage, &[Val]) -> Val,
    ) -> (dmll_core::Block, Val) {
        self.block(param_tys, f)
    }

    fn reduce_with_cond_block(
        &mut self,
        size: &Val,
        cond: dmll_core::Block,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
        init: &Val,
    ) -> Val {
        use dmll_core::{Def, Gen, Multiloop};
        let (value, v) = self.block(&[Ty::I64], |st, params| f(st, &params[0]));
        let vt = v.ty.clone();
        let (reducer, rv) = self.block(&[vt.clone(), vt.clone()], |st, params| {
            r(st, &params[0], &params[1])
        });
        assert_eq!(rv.ty, vt);
        assert_eq!(init.ty, vt);
        self.emit(
            Def::Loop(Multiloop::single(
                size.exp.clone(),
                Gen::Reduce {
                    cond: Some(cond),
                    value,
                    reducer,
                    init: Some(init.exp.clone()),
                },
            )),
            vt,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::printer::count_loops;
    use dmll_core::{typecheck, LayoutHint};

    #[test]
    fn map_filter_sum_stage() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| {
            let two = st.lit_f(2.0);
            st.mul(e, &two)
        });
        let pos = st.filter(&doubled, |st, e| {
            let zero = st.lit_f(0.0);
            st.gt(e, &zero)
        });
        let total = st.sum(&pos);
        let p = st.finish(&total);
        assert_eq!(count_loops(&p), 3);
    }

    #[test]
    fn group_by_stage() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let groups = st.group_by(&x, |st, e| {
            let ten = st.lit_i(10);
            st.rem(e, &ten)
        });
        let vals = st.bucket_values(&groups);
        let p = st.finish(&vals);
        assert!(typecheck::infer(&p).is_ok());
        assert!(p.to_string().contains("BucketCollect"));
    }

    #[test]
    fn group_by_reduce_stage() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let zero = st.lit_f(0.0);
        let sums = st.group_by_reduce(
            &x,
            |st, e| {
                let one = st.lit_f(1.0);
                let q = st.div(e, &one);
                st.f2i(&q)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let vals = st.bucket_values(&sums);
        let p = st.finish(&vals);
        assert!(p.to_string().contains("BucketReduce"));
    }

    #[test]
    fn min_index_stage() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let mi = st.min_index(&x);
        assert_eq!(mi.ty, Ty::I64);
        let p = st.finish(&mi);
        assert!(typecheck::infer(&p).is_ok());
    }

    #[test]
    fn count_if_stage() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let c = st.count_if(&x, |st, e| {
            let five = st.lit_i(5);
            st.gt(e, &five)
        });
        let p = st.finish(&c);
        assert!(p.to_string().contains("Reduce"), "{p}");
        assert!(p.to_string().contains("cond"), "{p}");
    }

    #[test]
    fn mean_and_vec_add() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Local);
        let s = st.vec_add(&x, &y);
        let m = st.mean(&s);
        let p = st.finish(&m);
        assert!(typecheck::infer(&p).is_ok());
    }
}

#[cfg(test)]
mod flatmap_tests {
    use super::*;
    use dmll_core::{typecheck, LayoutHint};

    #[test]
    fn flat_map_stages_and_types() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        // Each element e expands to [e, e, e] (e copies of a constant would
        // need data-dependent sizes, which collect supports via inner loop
        // sizes).
        let expanded = st.flat_map(&x, |st, e| {
            let e = e.clone();
            let three = st.lit_i(3);
            st.collect(&three, move |_st, _i| e.clone())
        });
        let total = st.sum(&expanded);
        let p = st.finish(&total);
        assert!(typecheck::infer(&p).is_ok(), "{p}");
        assert!(p.to_string().contains("flatten("), "{p}");
    }

    #[test]
    fn data_dependent_expansion() {
        // Each element e expands to e copies of itself: total = sum(e * e).
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let expanded = st.flat_map(&x, |st, e| {
            let e = e.clone();
            st.collect(&e.clone(), move |_st, _i| e.clone())
        });
        let total = st.sum(&expanded);
        let p = st.finish(&total);
        let out = dmll_interp::eval(
            &p,
            &[("x", dmll_interp::Value::i64_arr(vec![1, 2, 3, 0, 4]))],
        )
        .unwrap();
        assert_eq!(out, dmll_interp::Value::I64(1 + 4 + 9 + 16), "0 contributes nothing");
    }
}
