//! The staging context and typed value handles.

use dmll_core::{
    typecheck, Block, CoreResult, Def, Exp, Gen, LayoutHint, MathFn, Multiloop, PrimOp, Program,
    Stmt, StructTy, Ty,
};

/// A staged value: an IR expression paired with its type.
///
/// `Val`s are cheap to clone and are only valid within the [`Stage`] that
/// created them.
#[derive(Clone, Debug, PartialEq)]
pub struct Val {
    /// The underlying IR expression.
    pub exp: Exp,
    /// Its DMLL type.
    pub ty: Ty,
}

impl Val {
    /// Wrap an expression with its type.
    pub fn new(exp: impl Into<Exp>, ty: Ty) -> Val {
        Val {
            exp: exp.into(),
            ty,
        }
    }
}

struct Frame {
    stmts: Vec<Stmt>,
}

/// A staging context that records DMLL IR as frontend operations execute.
///
/// Operations panic with a descriptive message when applied to values of the
/// wrong type — a staging-time error, analogous to a compile error in the
/// embedded language (the final program is additionally validated by
/// [`dmll_core::typecheck::infer`] in [`Stage::finish`]).
pub struct Stage {
    program: Program,
    frames: Vec<Frame>,
}

impl Default for Stage {
    fn default() -> Self {
        Stage::new()
    }
}

impl Stage {
    /// A fresh, empty staging context.
    pub fn new() -> Stage {
        Stage {
            program: Program::new(),
            frames: vec![Frame { stmts: Vec::new() }],
        }
    }

    /// Declare an input data source with a layout annotation (§4.1: the user
    /// annotates data sources; everything else is inferred).
    pub fn input(&mut self, name: impl Into<String>, ty: Ty, layout: LayoutHint) -> Val {
        let sym = self.program.add_input(name, ty.clone(), layout);
        Val::new(sym, ty)
    }

    /// Integer literal.
    pub fn lit_i(&self, v: i64) -> Val {
        Val::new(Exp::i64(v), Ty::I64)
    }

    /// Float literal.
    pub fn lit_f(&self, v: f64) -> Val {
        Val::new(Exp::f64(v), Ty::F64)
    }

    /// Boolean literal.
    pub fn lit_b(&self, v: bool) -> Val {
        Val::new(Exp::bool(v), Ty::Bool)
    }

    /// Finish staging: seal the program with `result` as its output and
    /// type-check it.
    ///
    /// # Panics
    ///
    /// Panics if staging produced ill-typed IR (a bug in the staged code or
    /// the frontend itself) or if nested scopes were left open.
    pub fn finish(mut self, result: &Val) -> Program {
        assert_eq!(
            self.frames.len(),
            1,
            "finish called with {} unclosed scopes",
            self.frames.len() - 1
        );
        let frame = self.frames.pop().expect("root frame");
        self.program.body = Block {
            params: vec![],
            stmts: frame.stmts,
            result: result.exp.clone(),
        };
        if let Err(e) = typecheck::infer(&self.program) {
            panic!("staged program failed to type-check: {e}\n{}", self.program);
        }
        self.program
    }

    /// Like [`Stage::finish`] but returning the type error instead of
    /// panicking. Useful in tests.
    pub fn try_finish(mut self, result: &Val) -> CoreResult<Program> {
        let frame = self.frames.pop().expect("root frame");
        self.program.body = Block {
            params: vec![],
            stmts: frame.stmts,
            result: result.exp.clone(),
        };
        typecheck::infer(&self.program)?;
        Ok(self.program)
    }

    // ----- internal emission helpers ------------------------------------

    fn cur(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("a current frame")
    }

    pub(crate) fn emit(&mut self, def: Def, ty: Ty) -> Val {
        let sym = self.program.fresh();
        self.cur().stmts.push(Stmt::one(sym, def));
        Val::new(sym, ty)
    }

    #[allow(dead_code)] // used by future multi-output staging
    pub(crate) fn emit_multi(&mut self, def: Def, tys: Vec<Ty>) -> Vec<Val> {
        let syms: Vec<_> = tys.iter().map(|_| self.program.fresh()).collect();
        self.cur().stmts.push(Stmt {
            lhs: syms.clone(),
            def,
        });
        syms.into_iter()
            .zip(tys)
            .map(|(s, t)| Val::new(s, t))
            .collect()
    }

    /// Stage a sub-block: runs `f` with fresh parameter symbols bound,
    /// capturing emitted statements into a new [`Block`].
    pub(crate) fn block<R>(
        &mut self,
        param_tys: &[Ty],
        f: impl FnOnce(&mut Stage, &[Val]) -> R,
    ) -> (Block, R)
    where
        R: BlockResult,
    {
        let params: Vec<_> = (0..param_tys.len()).map(|_| self.program.fresh()).collect();
        let vals: Vec<Val> = params
            .iter()
            .zip(param_tys)
            .map(|(s, t)| Val::new(*s, t.clone()))
            .collect();
        self.frames.push(Frame { stmts: Vec::new() });
        let r = f(self, &vals);
        let frame = self.frames.pop().expect("pushed frame");
        let block = Block {
            params,
            stmts: frame.stmts,
            result: r.result_exp(),
        };
        (block, r)
    }

    fn binop_numeric(&mut self, op: PrimOp, a: &Val, b: &Val) -> Val {
        assert_eq!(
            a.ty, b.ty,
            "{op}: operand types differ ({} vs {})",
            a.ty, b.ty
        );
        assert!(
            a.ty.is_numeric(),
            "{op}: operands must be numeric, got {}",
            a.ty
        );
        self.emit(Def::prim2(op, a.exp.clone(), b.exp.clone()), a.ty.clone())
    }

    fn binop_cmp(&mut self, op: PrimOp, a: &Val, b: &Val) -> Val {
        assert_eq!(
            a.ty, b.ty,
            "{op}: operand types differ ({} vs {})",
            a.ty, b.ty
        );
        self.emit(Def::prim2(op, a.exp.clone(), b.exp.clone()), Ty::Bool)
    }

    // ----- scalar operations --------------------------------------------

    /// `a + b`.
    pub fn add(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_numeric(PrimOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_numeric(PrimOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_numeric(PrimOp::Mul, a, b)
    }

    /// `a / b`.
    pub fn div(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_numeric(PrimOp::Div, a, b)
    }

    /// `a % b` (integers).
    pub fn rem(&mut self, a: &Val, b: &Val) -> Val {
        assert_eq!(a.ty, Ty::I64, "%: integer operands required");
        self.binop_numeric(PrimOp::Rem, a, b)
    }

    /// `min(a, b)`.
    pub fn min(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_numeric(PrimOp::Min, a, b)
    }

    /// `max(a, b)`.
    pub fn max(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_numeric(PrimOp::Max, a, b)
    }

    /// `-a`.
    pub fn neg(&mut self, a: &Val) -> Val {
        assert!(a.ty.is_numeric());
        self.emit(Def::prim1(PrimOp::Neg, a.exp.clone()), a.ty.clone())
    }

    /// `a == b`.
    pub fn eq(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_cmp(PrimOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_cmp(PrimOp::Ne, a, b)
    }

    /// `a < b`.
    pub fn lt(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_cmp(PrimOp::Lt, a, b)
    }

    /// `a <= b`.
    pub fn le(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_cmp(PrimOp::Le, a, b)
    }

    /// `a > b`.
    pub fn gt(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_cmp(PrimOp::Gt, a, b)
    }

    /// `a >= b`.
    pub fn ge(&mut self, a: &Val, b: &Val) -> Val {
        self.binop_cmp(PrimOp::Ge, a, b)
    }

    /// `a && b`.
    pub fn and(&mut self, a: &Val, b: &Val) -> Val {
        assert_eq!((&a.ty, &b.ty), (&Ty::Bool, &Ty::Bool));
        self.emit(
            Def::prim2(PrimOp::And, a.exp.clone(), b.exp.clone()),
            Ty::Bool,
        )
    }

    /// `a || b`.
    pub fn or(&mut self, a: &Val, b: &Val) -> Val {
        assert_eq!((&a.ty, &b.ty), (&Ty::Bool, &Ty::Bool));
        self.emit(
            Def::prim2(PrimOp::Or, a.exp.clone(), b.exp.clone()),
            Ty::Bool,
        )
    }

    /// `!a`.
    pub fn not(&mut self, a: &Val) -> Val {
        assert_eq!(a.ty, Ty::Bool);
        self.emit(Def::prim1(PrimOp::Not, a.exp.clone()), Ty::Bool)
    }

    /// Polymorphic select: `cond ? a : b` (both sides evaluated).
    pub fn mux(&mut self, cond: &Val, a: &Val, b: &Val) -> Val {
        assert_eq!(cond.ty, Ty::Bool, "mux condition must be Bool");
        assert_eq!(a.ty, b.ty, "mux branches must have the same type");
        self.emit(
            Def::Prim {
                op: PrimOp::Mux,
                args: vec![cond.exp.clone(), a.exp.clone(), b.exp.clone()],
            },
            a.ty.clone(),
        )
    }

    /// Apply a unary math function (`F64 -> F64`).
    pub fn math(&mut self, f: MathFn, a: &Val) -> Val {
        assert_eq!(a.ty, Ty::F64, "math fn {f} needs a Double");
        self.emit(
            Def::Math {
                f,
                arg: a.exp.clone(),
            },
            Ty::F64,
        )
    }

    /// Convert an integer to a float.
    pub fn i2f(&mut self, a: &Val) -> Val {
        assert_eq!(a.ty, Ty::I64);
        self.emit(
            Def::Cast {
                to: Ty::F64,
                value: a.exp.clone(),
            },
            Ty::F64,
        )
    }

    /// Truncate a float to an integer.
    pub fn f2i(&mut self, a: &Val) -> Val {
        assert_eq!(a.ty, Ty::F64);
        self.emit(
            Def::Cast {
                to: Ty::I64,
                value: a.exp.clone(),
            },
            Ty::I64,
        )
    }

    // ----- collections ----------------------------------------------------

    /// Length of a collection.
    pub fn len(&mut self, arr: &Val) -> Val {
        assert!(
            matches!(arr.ty, Ty::Arr(_)),
            "len of non-collection {}",
            arr.ty
        );
        self.emit(Def::ArrayLen(arr.exp.clone()), Ty::I64)
    }

    /// Random-access read `arr(index)`.
    pub fn read(&mut self, arr: &Val, index: &Val) -> Val {
        let elem = arr
            .ty
            .elem()
            .unwrap_or_else(|| panic!("read of non-collection {}", arr.ty))
            .clone();
        assert_eq!(index.ty, Ty::I64, "index must be Int");
        self.emit(
            Def::ArrayRead {
                arr: arr.exp.clone(),
                index: index.exp.clone(),
            },
            elem,
        )
    }

    // ----- tuples & structs ------------------------------------------------

    /// Build a tuple.
    pub fn tuple(&mut self, parts: &[&Val]) -> Val {
        let tys: Vec<Ty> = parts.iter().map(|v| v.ty.clone()).collect();
        self.emit(
            Def::TupleNew(parts.iter().map(|v| v.exp.clone()).collect()),
            Ty::Tuple(tys),
        )
    }

    /// Project a tuple component.
    pub fn tuple_get(&mut self, tuple: &Val, index: usize) -> Val {
        let ty = match &tuple.ty {
            Ty::Tuple(ts) => ts
                .get(index)
                .unwrap_or_else(|| panic!("tuple index {index} out of range"))
                .clone(),
            other => panic!("tuple_get of non-tuple {other}"),
        };
        self.emit(
            Def::TupleGet {
                tuple: tuple.exp.clone(),
                index,
            },
            ty,
        )
    }

    /// Construct a struct value (fields in declaration order).
    pub fn struct_new(&mut self, ty: StructTy, fields: &[&Val]) -> Val {
        assert_eq!(fields.len(), ty.fields.len(), "struct {} arity", ty.name);
        self.emit(
            Def::StructNew {
                ty: ty.clone(),
                fields: fields.iter().map(|v| v.exp.clone()).collect(),
            },
            Ty::Struct(ty),
        )
    }

    /// Read a struct field.
    pub fn field(&mut self, obj: &Val, name: &str) -> Val {
        let ty = match &obj.ty {
            Ty::Struct(s) => s
                .field_ty(name)
                .unwrap_or_else(|| panic!("struct {} has no field {name}", s.name))
                .clone(),
            other => panic!("field read from non-struct {other}"),
        };
        self.emit(
            Def::StructGet {
                obj: obj.exp.clone(),
                field: name.to_string(),
            },
            ty,
        )
    }

    // ----- buckets ----------------------------------------------------------

    /// Dense per-bucket values of a bucket result.
    pub fn bucket_values(&mut self, b: &Val) -> Val {
        let ty = match &b.ty {
            Ty::Buckets { value, .. } => Ty::Arr(value.clone()),
            other => panic!("bucket_values of {other}"),
        };
        self.emit(Def::BucketValues(b.exp.clone()), ty)
    }

    /// The keys of a bucket result, in bucket order.
    pub fn bucket_keys(&mut self, b: &Val) -> Val {
        let ty = match &b.ty {
            Ty::Buckets { key, .. } => Ty::Arr(key.clone()),
            other => panic!("bucket_keys of {other}"),
        };
        self.emit(Def::BucketKeys(b.exp.clone()), ty)
    }

    /// Number of buckets.
    pub fn bucket_len(&mut self, b: &Val) -> Val {
        assert!(matches!(b.ty, Ty::Buckets { .. }));
        self.emit(Def::BucketLen(b.exp.clone()), Ty::I64)
    }

    /// Look up the bucket with key `key`, producing `default` when absent.
    pub fn bucket_get(&mut self, b: &Val, key: &Val, default: Option<&Val>) -> Val {
        let vt = match &b.ty {
            Ty::Buckets { key: kt, value } => {
                assert_eq!(**kt, key.ty, "bucket key type mismatch");
                (**value).clone()
            }
            other => panic!("bucket_get of {other}"),
        };
        if let Some(d) = default {
            assert_eq!(d.ty, vt, "bucket default type mismatch");
        }
        self.emit(
            Def::BucketGet {
                buckets: b.exp.clone(),
                key: key.exp.clone(),
                default: default.map(|d| d.exp.clone()),
            },
            vt,
        )
    }

    // ----- multiloops --------------------------------------------------------

    /// `Collect_size(_)(f)`: stage a loop over `0..size` collecting `f(i)`.
    pub fn collect(&mut self, size: &Val, f: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        assert_eq!(size.ty, Ty::I64, "loop size must be Int");
        let (value, r) = self.block(&[Ty::I64], |st, params| f(st, &params[0]));
        self.emit(
            Def::Loop(Multiloop::single(
                size.exp.clone(),
                Gen::Collect { cond: None, value },
            )),
            Ty::arr(r.ty),
        )
    }

    /// `Collect_size(c)(f)`: a conditional collect (filter-style).
    pub fn collect_if(
        &mut self,
        size: &Val,
        cond: impl FnOnce(&mut Stage, &Val) -> Val,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
    ) -> Val {
        assert_eq!(size.ty, Ty::I64);
        let (cb, c) = self.block(&[Ty::I64], |st, params| cond(st, &params[0]));
        assert_eq!(c.ty, Ty::Bool, "collect condition must be Bool");
        let (value, r) = self.block(&[Ty::I64], |st, params| f(st, &params[0]));
        self.emit(
            Def::Loop(Multiloop::single(
                size.exp.clone(),
                Gen::Collect {
                    cond: Some(cb),
                    value,
                },
            )),
            Ty::arr(r.ty),
        )
    }

    /// `Reduce_size(_)(f)(r)` with an optional explicit identity.
    pub fn reduce(
        &mut self,
        size: &Val,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
        init: Option<&Val>,
    ) -> Val {
        self.reduce_if(size, None::<fn(&mut Stage, &Val) -> Val>, f, r, init)
    }

    /// `Reduce_size(c)(f)(r)`: a conditional reduce.
    pub fn reduce_if<C>(
        &mut self,
        size: &Val,
        cond: Option<C>,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
        init: Option<&Val>,
    ) -> Val
    where
        C: FnOnce(&mut Stage, &Val) -> Val,
    {
        assert_eq!(size.ty, Ty::I64);
        let cb = cond.map(|c| {
            let (b, cv) = self.block(&[Ty::I64], |st, params| c(st, &params[0]));
            assert_eq!(cv.ty, Ty::Bool, "reduce condition must be Bool");
            b
        });
        let (value, v) = self.block(&[Ty::I64], |st, params| f(st, &params[0]));
        let vt = v.ty.clone();
        let (reducer, rv) = self.block(&[vt.clone(), vt.clone()], |st, params| {
            r(st, &params[0], &params[1])
        });
        assert_eq!(rv.ty, vt, "reducer must return the value type");
        if let Some(i) = init {
            assert_eq!(i.ty, vt, "reduce identity must have the value type");
        }
        self.emit(
            Def::Loop(Multiloop::single(
                size.exp.clone(),
                Gen::Reduce {
                    cond: cb,
                    value,
                    reducer,
                    init: init.map(|i| i.exp.clone()),
                },
            )),
            vt,
        )
    }

    /// `BucketCollect_size(_)(k)(f)`.
    pub fn bucket_collect(
        &mut self,
        size: &Val,
        k: impl FnOnce(&mut Stage, &Val) -> Val,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
    ) -> Val {
        assert_eq!(size.ty, Ty::I64);
        let (key, kv) = self.block(&[Ty::I64], |st, params| k(st, &params[0]));
        let (value, v) = self.block(&[Ty::I64], |st, params| f(st, &params[0]));
        self.emit(
            Def::Loop(Multiloop::single(
                size.exp.clone(),
                Gen::BucketCollect {
                    cond: None,
                    key,
                    value,
                },
            )),
            Ty::buckets(kv.ty, Ty::arr(v.ty)),
        )
    }

    /// `BucketReduce_size(_)(k)(f)(r)`.
    pub fn bucket_reduce(
        &mut self,
        size: &Val,
        k: impl FnOnce(&mut Stage, &Val) -> Val,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
        init: Option<&Val>,
    ) -> Val {
        self.bucket_reduce_if(
            size,
            None::<fn(&mut Stage, &Val) -> Val>,
            k,
            f,
            r,
            init,
        )
    }

    /// `BucketReduce_size(c)(k)(f)(r)`: a conditional grouped reduce.
    pub fn bucket_reduce_if<C>(
        &mut self,
        size: &Val,
        cond: Option<C>,
        k: impl FnOnce(&mut Stage, &Val) -> Val,
        f: impl FnOnce(&mut Stage, &Val) -> Val,
        r: impl FnOnce(&mut Stage, &Val, &Val) -> Val,
        init: Option<&Val>,
    ) -> Val
    where
        C: FnOnce(&mut Stage, &Val) -> Val,
    {
        assert_eq!(size.ty, Ty::I64);
        let cb = cond.map(|c| {
            let (b, cv) = self.block(&[Ty::I64], |st, params| c(st, &params[0]));
            assert_eq!(cv.ty, Ty::Bool, "bucket_reduce condition must be Bool");
            b
        });
        let (key, kv) = self.block(&[Ty::I64], |st, params| k(st, &params[0]));
        let (value, v) = self.block(&[Ty::I64], |st, params| f(st, &params[0]));
        let vt = v.ty.clone();
        let (reducer, rv) = self.block(&[vt.clone(), vt.clone()], |st, params| {
            r(st, &params[0], &params[1])
        });
        assert_eq!(rv.ty, vt, "reducer must return the value type");
        if let Some(i) = init {
            assert_eq!(i.ty, vt);
        }
        self.emit(
            Def::Loop(Multiloop::single(
                size.exp.clone(),
                Gen::BucketReduce {
                    cond: cb,
                    key,
                    value,
                    reducer,
                    init: init.map(|i| i.exp.clone()),
                },
            )),
            Ty::buckets(kv.ty, vt),
        )
    }

    pub(crate) fn emit_flatten(&mut self, arr: &Val, ty: Ty) -> Val {
        self.emit(Def::Flatten(arr.exp.clone()), ty)
    }

    /// Call an opaque external operation (models §4.3 sequential code).
    pub fn extern_call(
        &mut self,
        name: impl Into<String>,
        args: &[&Val],
        ret: Ty,
        effectful: bool,
        whitelisted: bool,
    ) -> Val {
        self.emit(
            Def::Extern {
                name: name.into(),
                args: args.iter().map(|v| v.exp.clone()).collect(),
                ret: ret.clone(),
                effectful,
                whitelisted,
            },
            ret,
        )
    }
}

/// Values a staged block may return.
pub trait BlockResult {
    /// The result expression recorded into the block.
    fn result_exp(&self) -> Exp;
}

impl BlockResult for Val {
    fn result_exp(&self) -> Exp {
        self.exp.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::printer::count_loops;

    #[test]
    fn stage_scalar_ops() {
        let mut st = Stage::new();
        let a = st.lit_f(2.0);
        let b = st.lit_f(3.0);
        let c = st.add(&a, &b);
        let d = st.math(MathFn::Sqrt, &c);
        let p = st.finish(&d);
        assert_eq!(p.body.stmts.len(), 2);
    }

    #[test]
    fn stage_collect_reduce() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let doubled = st.collect(&n, |st, i| {
            let xi = st.read(&x, i);
            let two = st.lit_f(2.0);
            st.mul(&xi, &two)
        });
        let m = st.len(&doubled);
        let zero = st.lit_f(0.0);
        let total = st.reduce(
            &m,
            |st, i| st.read(&doubled, i),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let p = st.finish(&total);
        assert_eq!(count_loops(&p), 2);
    }

    #[test]
    fn stage_bucket_reduce() {
        let mut st = Stage::new();
        let n = st.lit_i(100);
        let three = st.lit_i(3);
        let zero = st.lit_i(0);
        let b = st.bucket_reduce(
            &n,
            |st, i| st.rem(i, &three),
            |_st, i| i.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let vals = st.bucket_values(&b);
        let p = st.finish(&vals);
        assert_eq!(count_loops(&p), 1);
        assert!(p.to_string().contains("BucketReduce"));
    }

    #[test]
    fn stage_tuple_struct() {
        let mut st = Stage::new();
        let a = st.lit_i(1);
        let b = st.lit_f(2.0);
        let t = st.tuple(&[&a, &b]);
        let second = st.tuple_get(&t, 1);
        let sty = StructTy::new("P", vec![("x".into(), Ty::F64), ("y".into(), Ty::F64)]);
        let s = st.struct_new(sty, &[&second, &second]);
        let y = st.field(&s, "y");
        let p = st.finish(&y);
        assert!(typecheck::infer(&p).is_ok());
    }

    #[test]
    #[should_panic(expected = "operand types differ")]
    fn mixing_types_panics() {
        let mut st = Stage::new();
        let a = st.lit_i(1);
        let b = st.lit_f(2.0);
        st.add(&a, &b);
    }

    #[test]
    fn conditional_collect() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let n = st.len(&x);
        let evens = st.collect_if(
            &n,
            |st, i| {
                let xi = st.read(&x, i);
                let two = st.lit_i(2);
                let r = st.rem(&xi, &two);
                let zero = st.lit_i(0);
                st.eq(&r, &zero)
            },
            |st, i| st.read(&x, i),
        );
        let p = st.finish(&evens);
        assert!(p.to_string().contains("cond ("), "{p}");
    }

    #[test]
    fn nested_loops_stage_correctly() {
        // Matrix row sums: collect over rows of (reduce over cols).
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let rows = st.lit_i(10);
        let cols = st.lit_i(5);
        let sums = st.collect(&rows, |st, i| {
            let zero = st.lit_f(0.0);
            st.reduce(
                &cols,
                |st, j| {
                    let scaled = st.mul(i, &cols);
                    let idx = st.add(&scaled, j);
                    st.read(&x, &idx)
                },
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        });
        let p = st.finish(&sums);
        assert_eq!(count_loops(&p), 2);
        // The inner loop must be nested inside the outer one, not at top level.
        let top_loops = p
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s.def, Def::Loop(_)))
            .count();
        assert_eq!(top_loops, 1);
    }

    #[test]
    fn extern_ops() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let sz = st.extern_call("size_field", &[&x], Ty::I64, false, true);
        let p = st.finish(&sz);
        assert!(p.to_string().contains("extern size_field"), "{p}");
    }
}
