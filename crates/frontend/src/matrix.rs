//! Dense row-major matrices on top of flat arrays.
//!
//! A matrix is a struct `{ data: Coll[Double], rows: Int, cols: Int }`; all
//! element accesses stage to the affine read `data(i * cols + j)`, which is
//! exactly what the read-stencil analysis (§4.2) needs to classify row-wise
//! traversals as `Interval`.

use crate::stage::{Stage, Val};
use dmll_core::{LayoutHint, StructTy, Ty};

/// The struct type backing every staged matrix.
pub fn matrix_struct_ty() -> StructTy {
    StructTy::new(
        "MatrixF64",
        vec![
            ("data".into(), Ty::arr(Ty::F64)),
            ("rows".into(), Ty::I64),
            ("cols".into(), Ty::I64),
        ],
    )
}

/// A staged dense `Double` matrix.
#[derive(Clone, Debug)]
pub struct MatrixVal {
    /// The underlying struct value.
    pub val: Val,
}

impl MatrixVal {
    /// Wrap an existing struct value of type [`matrix_struct_ty`].
    pub fn from_val(val: Val) -> MatrixVal {
        assert_eq!(
            val.ty,
            Ty::Struct(matrix_struct_ty()),
            "not a MatrixF64 value"
        );
        MatrixVal { val }
    }

    /// The flat row-major data array.
    pub fn data(&self, st: &mut Stage) -> Val {
        st.field(&self.val, "data")
    }

    /// Number of rows.
    pub fn rows(&self, st: &mut Stage) -> Val {
        st.field(&self.val, "rows")
    }

    /// Number of columns.
    pub fn cols(&self, st: &mut Stage) -> Val {
        st.field(&self.val, "cols")
    }

    /// Element read `m(i, j)`, staged as `data(i * cols + j)`.
    pub fn get(&self, st: &mut Stage, i: &Val, j: &Val) -> Val {
        let data = self.data(st);
        let cols = self.cols(st);
        let base = st.mul(i, &cols);
        let idx = st.add(&base, j);
        st.read(&data, &idx)
    }

    /// `m.mapRows { i => f(i) }`: a collect over the row range. The closure
    /// receives the row *index*; use [`MatrixVal::get`] to read elements.
    pub fn map_rows(&self, st: &mut Stage, f: impl FnOnce(&mut Stage, &Val) -> Val) -> Val {
        let rows = self.rows(st);
        st.collect(&rows, f)
    }

    /// Materialize row `i` as a `Coll[Double]`.
    pub fn row(&self, st: &mut Stage, i: &Val) -> Val {
        let cols = self.cols(st);
        let this = self.clone();
        let i = i.clone();
        st.collect(&cols, move |st, j| this.get(st, &i, j))
    }

    /// Squared Euclidean distance between row `i` of `self` and row `k` of
    /// `other` (the `dist` of the paper's k-means).
    pub fn row_dist2(&self, st: &mut Stage, i: &Val, other: &MatrixVal, k: &Val) -> Val {
        let cols = self.cols(st);
        let zero = st.lit_f(0.0);
        let (this, other) = (self.clone(), other.clone());
        let (i, k) = (i.clone(), k.clone());
        st.reduce(
            &cols,
            move |st, j| {
                let a = this.get(st, &i, j);
                let b = other.get(st, &k, j);
                let d = st.sub(&a, &b);
                st.mul(&d, &d)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        )
    }

    /// Dot product of row `i` with a vector `v` (used by logistic
    /// regression's hypothesis).
    pub fn row_dot(&self, st: &mut Stage, i: &Val, v: &Val) -> Val {
        let cols = self.cols(st);
        let zero = st.lit_f(0.0);
        let this = self.clone();
        let (i, v) = (i.clone(), v.clone());
        st.reduce(
            &cols,
            move |st, j| {
                let a = this.get(st, &i, j);
                let b = st.read(&v, j);
                st.mul(&a, &b)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        )
    }

    /// Column sums as a `Coll[Double]` of length `cols` (a nested
    /// column-reduce as written; the Column-to-Row rule restructures it).
    pub fn sum_cols(&self, st: &mut Stage) -> Val {
        let cols = self.cols(st);
        let rows = self.rows(st);
        let zero = st.lit_f(0.0);
        let this = self.clone();
        st.collect(&cols, move |st, j| {
            let this2 = this.clone();
            let j = j.clone();
            st.reduce(
                &rows,
                move |st, i| this2.get(st, i, &j),
                |st, a, b| st.add(a, b),
                Some(&zero),
            )
        })
    }
}

impl Stage {
    /// Declare a matrix input (`Matrix.fromFile` in the paper), annotated
    /// with a layout like any other data source.
    pub fn input_matrix(&mut self, name: impl Into<String>, layout: LayoutHint) -> MatrixVal {
        let v = self.input(name, Ty::Struct(matrix_struct_ty()), layout);
        MatrixVal { val: v }
    }

    /// Assemble a matrix from a flat data array and dimensions.
    pub fn matrix_from_parts(&mut self, data: &Val, rows: &Val, cols: &Val) -> MatrixVal {
        let v = self.struct_new(matrix_struct_ty(), &[data, rows, cols]);
        MatrixVal { val: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::printer::count_loops;
    use dmll_core::typecheck;

    #[test]
    fn matrix_access_is_affine() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let i = st.lit_i(3);
        let j = st.lit_i(4);
        let v = m.get(&mut st, &i, &j);
        let p = st.finish(&v);
        // data(3 * cols + 4): a mul and an add feed the read.
        let s = p.to_string();
        assert!(s.contains("* x"), "{s}");
        assert!(typecheck::infer(&p).is_ok());
    }

    #[test]
    fn row_dist2_stages_one_reduce() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let c = st.input_matrix("c", LayoutHint::Local);
        let i = st.lit_i(0);
        let k = st.lit_i(1);
        let d = m.row_dist2(&mut st, &i, &c, &k);
        let p = st.finish(&d);
        assert_eq!(count_loops(&p), 1);
    }

    #[test]
    fn sum_cols_is_nested_loop() {
        let mut st = Stage::new();
        let m = st.input_matrix("m", LayoutHint::Partitioned);
        let s = m.sum_cols(&mut st);
        let p = st.finish(&s);
        assert_eq!(count_loops(&p), 2);
        assert_eq!(s.ty, Ty::arr(Ty::F64));
    }

    #[test]
    fn map_rows_min_index_kmeans_shape() {
        // The shared-memory k-means assignment step stages cleanly.
        let mut st = Stage::new();
        let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
        let clusters = st.input_matrix("clusters", LayoutHint::Local);
        let assigned = matrix.map_rows(&mut st, |st, i| {
            let dists = clusters.map_rows(st, |st, k| matrix.row_dist2(st, i, &clusters, k));
            st.min_index(&dists)
        });
        let p = st.finish(&assigned);
        assert_eq!(assigned.ty, Ty::arr(Ty::I64));
        assert!(typecheck::infer(&p).is_ok());
    }

    #[test]
    fn matrix_from_parts_roundtrip() {
        let mut st = Stage::new();
        let d = st.input("d", Ty::arr(Ty::F64), LayoutHint::Local);
        let r = st.lit_i(2);
        let c = st.lit_i(3);
        let m = st.matrix_from_parts(&d, &r, &c);
        let rows = m.rows(&mut st);
        let p = st.finish(&rows);
        assert!(typecheck::infer(&p).is_ok());
    }
}
