#![warn(missing_docs)]

//! # DMLL staging frontend
//!
//! A fluent, implicitly parallel programming model that *stages* DMLL IR:
//! user code runs once at "staging time" and records a [`dmll_core::Program`]
//! made of multiloops, which the optimizer (`dmll-transform`), the analyses
//! (`dmll-analysis`) and the executors then consume.
//!
//! This plays the role of the Delite/OptiML embedding in the paper: the same
//! rich data-parallel operations (`map`, `zipWith`, `filter`, `reduce`,
//! `groupBy`, `groupByReduce`, nested patterns over matrices), with layout
//! annotations only at the data sources.
//!
//! ## Example: dot product
//!
//! ```
//! use dmll_frontend::Stage;
//! use dmll_core::{LayoutHint, Ty};
//!
//! let mut st = Stage::new();
//! let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
//! let y = st.input("y", Ty::arr(Ty::F64), LayoutHint::Partitioned);
//! let prods = st.zip_with(&x, &y, |st, a, b| st.mul(&a, &b));
//! let dot = st.sum(&prods);
//! let program = st.finish(&dot);
//! assert!(dmll_core::typecheck::infer(&program).is_ok());
//! ```

pub mod collections;
pub mod matrix;
pub mod stage;

pub use matrix::MatrixVal;
pub use stage::{Stage, Val};
