//! Runtime values.

use dmll_core::StructTy;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A runtime value produced by interpreting DMLL IR.
///
/// Aggregates are reference-counted so cloning a value is cheap; arrays of
/// primitives use unboxed storage (the interpreter's small nod to the
/// paper's AoS→SoA philosophy).
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Arc<str>),
    /// Unit.
    Unit,
    /// Tuple.
    Tuple(Arc<Vec<Value>>),
    /// Collection.
    Arr(ArrayVal),
    /// Result of a bucket generator.
    Buckets(Arc<BucketsVal>),
    /// Record.
    Struct(Arc<StructVal>),
}

/// Typed collection storage.
#[derive(Clone, Debug)]
pub enum ArrayVal {
    /// Unboxed integer array.
    I64(Arc<Vec<i64>>),
    /// Unboxed float array.
    F64(Arc<Vec<f64>>),
    /// Unboxed boolean array.
    Bool(Arc<Vec<bool>>),
    /// Boxed array of arbitrary values (tuples, nested arrays, structs…).
    Boxed(Arc<Vec<Value>>),
}

impl ArrayVal {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrayVal::I64(v) => v.len(),
            ArrayVal::F64(v) => v.len(),
            ArrayVal::Bool(v) => v.len(),
            ArrayVal::Boxed(v) => v.len(),
        }
    }

    /// True when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<Value> {
        match self {
            ArrayVal::I64(v) => v.get(i).map(|x| Value::I64(*x)),
            ArrayVal::F64(v) => v.get(i).map(|x| Value::F64(*x)),
            ArrayVal::Bool(v) => v.get(i).map(|x| Value::Bool(*x)),
            ArrayVal::Boxed(v) => v.get(i).cloned(),
        }
    }
}

/// A bucket collection: per-bucket values plus the key directory.
///
/// Bucket order is *first-seen key order*, matching the sequential semantics
/// in Figure 2 (`map(k(i))` assigns dense indices as keys appear).
#[derive(Clone, Debug)]
pub struct BucketsVal {
    /// The key of each bucket, in bucket order.
    pub keys: Vec<Value>,
    /// The value of each bucket, aligned with `keys`.
    pub vals: Vec<Value>,
    /// Key-to-bucket-index directory.
    pub index: HashMap<Key, usize>,
}

impl BucketsVal {
    /// Build the directory from parallel key/value vectors.
    pub fn new(keys: Vec<Value>, vals: Vec<Value>) -> BucketsVal {
        assert_eq!(keys.len(), vals.len());
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (Key(k.clone()), i))
            .collect();
        BucketsVal { keys, vals, index }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The bucket value for `key`, if present.
    pub fn get(&self, key: &Value) -> Option<&Value> {
        self.index.get(&Key(key.clone())).map(|&i| &self.vals[i])
    }
}

/// A record value.
#[derive(Clone, Debug)]
pub struct StructVal {
    /// The struct type. Shared: every value of a given nominal type can
    /// (and should) point at one allocation, so consumers that walk a
    /// homogeneous collection can validate the type once by pointer
    /// instead of re-comparing field names per element.
    pub ty: Arc<StructTy>,
    /// Field values, in declaration order.
    pub fields: Vec<Value>,
}

impl StructVal {
    /// Field value by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.ty.field_index(name).map(|i| &self.fields[i])
    }
}

/// A hashable wrapper for values used as bucket keys.
///
/// Floats hash and compare by bit pattern; aggregates other than tuples are
/// rejected at construction time by the type checker (bucket keys are
/// scalars, strings or tuples of those).
#[derive(Clone, Debug)]
pub struct Key(pub Value);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        value_key_eq(&self.0, &other.0)
    }
}

impl Eq for Key {}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        value_key_hash(&self.0, state);
    }
}

fn value_key_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::I64(x), Value::I64(y)) => x == y,
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Unit, Value::Unit) => true,
        (Value::Tuple(x), Value::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| value_key_eq(a, b))
        }
        _ => false,
    }
}

fn value_key_hash<H: std::hash::Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::I64(x) => {
            0u8.hash(state);
            x.hash(state)
        }
        Value::F64(x) => {
            1u8.hash(state);
            x.to_bits().hash(state)
        }
        Value::Bool(x) => {
            2u8.hash(state);
            x.hash(state)
        }
        Value::Str(x) => {
            3u8.hash(state);
            x.hash(state)
        }
        Value::Unit => 4u8.hash(state),
        Value::Tuple(xs) => {
            5u8.hash(state);
            xs.len().hash(state);
            for x in xs.iter() {
                value_key_hash(x, state);
            }
        }
        other => panic!("value not usable as a bucket key: {other:?}"),
    }
    use std::hash::Hash;
}

impl Value {
    /// Build an unboxed float array value.
    pub fn f64_arr(v: Vec<f64>) -> Value {
        Value::Arr(ArrayVal::F64(Arc::new(v)))
    }

    /// Build an unboxed integer array value.
    pub fn i64_arr(v: Vec<i64>) -> Value {
        Value::Arr(ArrayVal::I64(Arc::new(v)))
    }

    /// Build an unboxed boolean array value.
    pub fn bool_arr(v: Vec<bool>) -> Value {
        Value::Arr(ArrayVal::Bool(Arc::new(v)))
    }

    /// Build a boxed array value.
    pub fn boxed_arr(v: Vec<Value>) -> Value {
        Value::Arr(ArrayVal::Boxed(Arc::new(v)))
    }

    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Build a `MatrixF64` struct value from row-major data
    /// (see `dmll_frontend::matrix`).
    pub fn matrix(data: Vec<f64>, rows: usize, cols: usize) -> Value {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Value::Struct(Arc::new(StructVal {
            ty: Arc::new(matrix_struct_ty()),
            fields: vec![
                Value::f64_arr(data),
                Value::I64(rows as i64),
                Value::I64(cols as i64),
            ],
        }))
    }

    /// The integer, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The float, if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The array, if this is a collection.
    pub fn as_arr(&self) -> Option<&ArrayVal> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Extract a `Vec<f64>`, if this is a float collection (or a boxed
    /// collection of floats).
    pub fn to_f64_vec(&self) -> Option<Vec<f64>> {
        match self {
            Value::Arr(ArrayVal::F64(v)) => Some(v.as_ref().clone()),
            Value::Arr(ArrayVal::Boxed(v)) => {
                v.iter().map(Value::as_f64).collect::<Option<Vec<_>>>()
            }
            _ => None,
        }
    }

    /// Extract a `Vec<i64>`, if this is an integer collection.
    pub fn to_i64_vec(&self) -> Option<Vec<i64>> {
        match self {
            Value::Arr(ArrayVal::I64(v)) => Some(v.as_ref().clone()),
            Value::Arr(ArrayVal::Boxed(v)) => {
                v.iter().map(Value::as_i64).collect::<Option<Vec<_>>>()
            }
            _ => None,
        }
    }
}

/// Structural equality with float bit-equality; used by tests comparing
/// pre/post-transformation results.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Arr(a), Value::Arr(b)) => {
                a.len() == b.len() && (0..a.len()).all(|i| a.get(i) == b.get(i))
            }
            (Value::Buckets(a), Value::Buckets(b)) => a.keys == b.keys && a.vals == b.vals,
            (Value::Struct(a), Value::Struct(b)) => a.ty == b.ty && a.fields == b.fields,
            (Value::Tuple(a), Value::Tuple(b)) => a == b,
            _ => value_key_eq(self, other),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Unit => write!(f, "()"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Arr(a) => {
                write!(f, "[")?;
                for i in 0..a.len().min(16) {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a.get(i).expect("in range"))?;
                }
                if a.len() > 16 {
                    write!(f, ", … ({} total)", a.len())?;
                }
                write!(f, "]")
            }
            Value::Buckets(b) => {
                write!(f, "{{")?;
                for i in 0..b.len().min(16) {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} -> {}", b.keys[i], b.vals[i])?;
                }
                if b.len() > 16 {
                    write!(f, ", … ({} total)", b.len())?;
                }
                write!(f, "}}")
            }
            Value::Struct(s) => {
                write!(f, "{} {{ ", s.ty.name)?;
                for (i, ((name, _), v)) in s.ty.fields.iter().zip(&s.fields).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {v}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

fn matrix_struct_ty() -> StructTy {
    StructTy::new(
        "MatrixF64",
        vec![
            ("data".into(), dmll_core::Ty::arr(dmll_core::Ty::F64)),
            ("rows".into(), dmll_core::Ty::I64),
            ("cols".into(), dmll_core::Ty::I64),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_access() {
        let a = Value::f64_arr(vec![1.0, 2.0]);
        let arr = a.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr.get(1), Some(Value::F64(2.0)));
        assert_eq!(arr.get(2), None);
        assert!(!arr.is_empty());
    }

    #[test]
    fn buckets_lookup() {
        let b = BucketsVal::new(
            vec![Value::I64(3), Value::I64(7)],
            vec![Value::F64(1.0), Value::F64(2.0)],
        );
        assert_eq!(b.get(&Value::I64(7)), Some(&Value::F64(2.0)));
        assert_eq!(b.get(&Value::I64(9)), None);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tuple_keys_hash() {
        let mut m: HashMap<Key, i32> = HashMap::new();
        let k1 = Key(Value::Tuple(Arc::new(vec![Value::I64(1), Value::str("a")])));
        let k2 = Key(Value::Tuple(Arc::new(vec![Value::I64(1), Value::str("a")])));
        m.insert(k1, 10);
        assert_eq!(m.get(&k2), Some(&10));
    }

    #[test]
    fn value_equality_across_storage() {
        let unboxed = Value::i64_arr(vec![1, 2, 3]);
        let boxed = Value::boxed_arr(vec![Value::I64(1), Value::I64(2), Value::I64(3)]);
        assert_eq!(unboxed, boxed);
    }

    #[test]
    fn matrix_helper() {
        let m = Value::matrix(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        if let Value::Struct(s) = &m {
            assert_eq!(s.field("rows"), Some(&Value::I64(2)));
            assert_eq!(
                s.field("data").unwrap().to_f64_vec().unwrap(),
                vec![1.0, 2.0, 3.0, 4.0]
            );
        } else {
            panic!("not a struct");
        }
    }

    #[test]
    fn display_truncates() {
        let a = Value::i64_arr((0..100).collect());
        let s = a.to_string();
        assert!(s.contains("(100 total)"), "{s}");
    }
}
