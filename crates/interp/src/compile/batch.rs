//! Batched (block-at-a-time) execution for compiled kernels.
//!
//! The scalar bytecode loop in [`super`] still pays one dispatch `match` per
//! instruction *per element*. This module executes each instruction over a
//! fixed-width block of [`BLOCK`] elements instead: every `i64`/`f64`/`bool`
//! register becomes a column (`Vec<i64>` / `Vec<f64>` / `Vec<bool>`), the
//! per-element blocks run as straight-line loops over those columns (which
//! the compiler can autovectorize), and `Collect`/`Reduce` conditions become
//! **selection vectors** — sorted lane lists that let predicated generators
//! skip dead lanes without a per-element branch in the value block.
//!
//! Bit-identity rules (the tier contract from DESIGN.md §8 still binds):
//!
//! * **Certification.** Only kernels whose per-element blocks (cond, key,
//!   value) consist entirely of typed, column-executable instructions are
//!   batchable ([`kernel_batchable`]); everything else runs the scalar
//!   bytecode loop. Reducer blocks are exempt — they execute on the embedded
//!   scalar state per element, so any compilable reducer batches.
//! * **Deferred errors.** A fallible instruction (division, bounds-checked
//!   read) may fault at some lane; the scalar loop would have stopped there.
//!   The batched executor records the first faulting lane, truncates the
//!   active lanes to those *before* it, finishes the block, and reports the
//!   winning error: minimum by (lane, generator index) — exactly the error
//!   the element-at-a-time loop would have raised first.
//! * **Float folds stay in lane order.** Wrapping integer arithmetic is
//!   associative, so integer block reducers may be tree-folded/vectorized by
//!   the compiler; float reduction order is observable in the bits, so float
//!   folds run sequentially in lane order (and no FMA) — exact-merge
//!   semantics allow nothing else.
//! * **Scalar tail.** A range's final `len % BLOCK` elements run through the
//!   scalar `exec_gens` loop against the same accumulators.
//!
//! Bucket generators keep their per-lane key lookups, but typed `i64` keys
//! get a dense epoch-stamped directory ([`DenseDir`]) in front of the
//! authoritative first-seen-order [`KeyIx`], turning the per-element hash
//! into an array index for the small key domains real workloads have
//! (quantiles of group-bys: flags, barcodes, vertex ids).

use super::{
    apply_f, apply_i, bounds, read_array, stats, ArrayVal, CBlock, CGen, Class, ColBuf, EvalError,
    FastRed, Instr, KAcc, KState, Kernel, KeyIx, RedBuf, Reg, Scalar, Value,
};
use crate::eval::{eval_math, Env};

/// Lanes per block. Wide enough to amortize dispatch and fill vector units;
/// small enough that per-worker column files stay cache-resident.
pub(crate) const BLOCK: usize = 1024;

/// Keys `0 <= k < DENSE_KEY_CAP` use the dense bucket directory.
const DENSE_KEY_CAP: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Certification
// ---------------------------------------------------------------------------

/// Instructions the column executor implements. Everything here is typed
/// (no `V`-class destinations) and loop-free, so a block made only of these
/// runs as straight-line column loops.
fn instr_batchable(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::ConstI { .. }
            | Instr::ConstF { .. }
            | Instr::ConstB { .. }
            | Instr::BinI { .. }
            | Instr::DivI { .. }
            | Instr::RemI { .. }
            | Instr::BinF { .. }
            | Instr::NegI { .. }
            | Instr::NegF { .. }
            | Instr::CmpI { .. }
            | Instr::CmpF { .. }
            | Instr::CmpB { .. }
            | Instr::AndB { .. }
            | Instr::OrB { .. }
            | Instr::NotB { .. }
            | Instr::MuxI { .. }
            | Instr::MuxF { .. }
            | Instr::MuxB { .. }
            | Instr::MathF { .. }
            | Instr::CastIF { .. }
            | Instr::CastFI { .. }
            | Instr::ReadVI { .. }
            | Instr::ReadVF { .. }
            | Instr::ReadVB { .. }
    )
}

fn cblock_batchable(b: &CBlock) -> bool {
    b.result.class != Class::V && b.instrs.iter().all(instr_batchable)
}

/// A kernel is batchable when every generator's per-element blocks certify.
/// Reducer blocks always run on the scalar state, so they are not checked.
pub(crate) fn kernel_batchable(k: &Kernel) -> bool {
    k.gens.iter().all(|g| {
        cblock_batchable(&g.value)
            && g.cond.as_ref().is_none_or(cblock_batchable)
            && g.key.as_ref().is_none_or(cblock_batchable)
    })
}

// ---------------------------------------------------------------------------
// Columnar state
// ---------------------------------------------------------------------------

/// Dense `i64`-key → bucket-slot directory, epoch-stamped so reusing a
/// worker state across tasks never requires clearing the table: entries
/// from an older epoch simply read as misses.
struct DenseDir {
    epoch: u64,
    slots: Vec<(u64, u32)>,
}

impl DenseDir {
    fn new() -> DenseDir {
        DenseDir {
            epoch: 0,
            slots: Vec::new(),
        }
    }
}

/// Batched register files: one [`BLOCK`]-wide column per typed register,
/// plus the embedded scalar state that holds `V` registers (all invariant
/// under certification), runs the preamble, reducer blocks, and the tail.
pub(crate) struct BState {
    ci: Vec<Vec<i64>>,
    cf: Vec<Vec<f64>>,
    cb: Vec<Vec<bool>>,
    /// One dense key directory per top-level generator.
    dense: Vec<DenseDir>,
    pub(crate) scalar: KState,
}

impl Kernel {
    /// Bind free variables, run the preamble on the scalar state, then
    /// splat every scalar register into its column: invariant registers get
    /// their true value in every lane; varying registers hold junk that is
    /// always overwritten before it is read (every non-invariant register
    /// is a block param or an instruction destination, written over the
    /// active lanes before any use in the same block run).
    pub(crate) fn new_batched_state(&self, env: &Env) -> Result<BState, EvalError> {
        let scalar = self.new_state(env)?;
        Ok(BState {
            ci: scalar.ri.iter().map(|&v| vec![v; BLOCK]).collect(),
            cf: scalar.rf.iter().map(|&v| vec![v; BLOCK]).collect(),
            cb: scalar.rb.iter().map(|&v| vec![v; BLOCK]).collect(),
            dense: self.gens.iter().map(|_| DenseDir::new()).collect(),
            scalar,
        })
    }
}

/// Active lanes of one block, in increasing order.
enum Lanes {
    /// All `0..BLOCK` lanes.
    Full,
    /// An explicit selection vector.
    Sel(Vec<u32>),
}

impl Lanes {
    /// Drop every lane `>= lane` (a fallible instruction faulted there).
    fn truncate_before(&mut self, lane: usize) {
        match self {
            Lanes::Full => *self = Lanes::Sel((0..lane as u32).collect()),
            Lanes::Sel(s) => {
                let cut = s.partition_point(|&l| (l as usize) < lane);
                s.truncate(cut);
            }
        }
    }

    fn is_empty(&self) -> bool {
        matches!(self, Lanes::Sel(s) if s.is_empty())
    }
}

/// Run `f` over every active lane; the first `Err` is tagged with its lane.
fn each_lane(
    lanes: &Lanes,
    mut f: impl FnMut(usize) -> Result<(), EvalError>,
) -> Result<(), (usize, EvalError)> {
    match lanes {
        Lanes::Full => {
            for l in 0..BLOCK {
                f(l).map_err(|e| (l, e))?;
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                f(l).map_err(|e| (l, e))?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Column loops
// ---------------------------------------------------------------------------
//
// Destination columns are `mem::take`n out of the register file before the
// operand columns are borrowed (instruction destinations are always freshly
// allocated registers, so `dst` never aliases an operand), which gives the
// optimizer clean, bounds-check-free inner loops over the `Full` lane set.

fn unop<T: Copy, U: Copy>(d: &mut [U], a: &[T], lanes: &Lanes, f: impl Fn(T) -> U) {
    match lanes {
        Lanes::Full => {
            let (d, a) = (&mut d[..BLOCK], &a[..BLOCK]);
            for l in 0..BLOCK {
                d[l] = f(a[l]);
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                d[l] = f(a[l]);
            }
        }
    }
}

fn binop<T: Copy, U: Copy>(d: &mut [U], a: &[T], b: &[T], lanes: &Lanes, f: impl Fn(T, T) -> U) {
    match lanes {
        Lanes::Full => {
            let (d, a, b) = (&mut d[..BLOCK], &a[..BLOCK], &b[..BLOCK]);
            for l in 0..BLOCK {
                d[l] = f(a[l], b[l]);
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                d[l] = f(a[l], b[l]);
            }
        }
    }
}

fn try_binop<T: Copy, U: Copy>(
    d: &mut [U],
    a: &[T],
    b: &[T],
    lanes: &Lanes,
    f: impl Fn(T, T) -> Result<U, EvalError>,
) -> Result<(), (usize, EvalError)> {
    each_lane(lanes, |l| {
        d[l] = f(a[l], b[l])?;
        Ok(())
    })
}

fn muxop<T: Copy>(d: &mut [T], c: &[bool], a: &[T], b: &[T], lanes: &Lanes) {
    match lanes {
        Lanes::Full => {
            let (d, c, a, b) = (&mut d[..BLOCK], &c[..BLOCK], &a[..BLOCK], &b[..BLOCK]);
            for l in 0..BLOCK {
                d[l] = if c[l] { a[l] } else { b[l] };
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                d[l] = if c[l] { a[l] } else { b[l] };
            }
        }
    }
}

/// Gather `f(idx[l])` into `d` over the active lanes.
fn try_gather<T: Copy>(
    d: &mut [T],
    idx: &[i64],
    lanes: &Lanes,
    f: impl Fn(i64) -> Result<T, EvalError>,
) -> Result<(), (usize, EvalError)> {
    each_lane(lanes, |l| {
        d[l] = f(idx[l])?;
        Ok(())
    })
}

macro_rules! take_col {
    ($st:expr, $file:ident, $r:expr) => {
        std::mem::take(&mut $st.$file[$r as usize])
    };
}

impl Kernel {
    /// Execute one certified instruction over the active lanes.
    #[allow(clippy::too_many_lines)]
    fn bstep(&self, ins: &Instr, st: &mut BState, lanes: &Lanes) -> Result<(), (usize, EvalError)> {
        match ins {
            Instr::ConstI { dst, v } => st.ci[*dst as usize].fill(*v),
            Instr::ConstF { dst, v } => st.cf[*dst as usize].fill(*v),
            Instr::ConstB { dst, v } => st.cb[*dst as usize].fill(*v),
            Instr::BinI { op, dst, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| apply_i(op, x, y),
                );
                st.ci[*dst as usize] = d;
            }
            Instr::DivI { dst, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                let r = try_binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(x / y)
                        }
                    },
                );
                st.ci[*dst as usize] = d;
                r?;
            }
            Instr::RemI { dst, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                let r = try_binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(x % y)
                        }
                    },
                );
                st.ci[*dst as usize] = d;
                r?;
            }
            Instr::BinF { op, dst, a, b } => {
                let mut d = take_col!(st, cf, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.cf[*a as usize],
                    &st.cf[*b as usize],
                    lanes,
                    |x, y| apply_f(op, x, y),
                );
                st.cf[*dst as usize] = d;
            }
            Instr::NegI { dst, a } => {
                let mut d = take_col!(st, ci, *dst);
                unop(&mut d, &st.ci[*a as usize], lanes, |x: i64| -x);
                st.ci[*dst as usize] = d;
            }
            Instr::NegF { dst, a } => {
                let mut d = take_col!(st, cf, *dst);
                unop(&mut d, &st.cf[*a as usize], lanes, |x: f64| -x);
                st.cf[*dst as usize] = d;
            }
            Instr::CmpI { op, dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| super::apply_cmp(op, x, y),
                );
                st.cb[*dst as usize] = d;
            }
            Instr::CmpF { op, dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.cf[*a as usize],
                    &st.cf[*b as usize],
                    lanes,
                    |x, y| super::apply_cmp(op, x, y),
                );
                st.cb[*dst as usize] = d;
            }
            Instr::CmpB { op, dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                let eq = matches!(op, super::CmpOp::Eq);
                binop(
                    &mut d,
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                    |x, y| if eq { x == y } else { x != y },
                );
                st.cb[*dst as usize] = d;
            }
            Instr::AndB { dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                binop(
                    &mut d,
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                    |x, y| x && y,
                );
                st.cb[*dst as usize] = d;
            }
            Instr::OrB { dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                binop(
                    &mut d,
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                    |x, y| x || y,
                );
                st.cb[*dst as usize] = d;
            }
            Instr::NotB { dst, a } => {
                let mut d = take_col!(st, cb, *dst);
                unop(&mut d, &st.cb[*a as usize], lanes, |x: bool| !x);
                st.cb[*dst as usize] = d;
            }
            Instr::MuxI { dst, c, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                muxop(
                    &mut d,
                    &st.cb[*c as usize],
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                );
                st.ci[*dst as usize] = d;
            }
            Instr::MuxF { dst, c, a, b } => {
                let mut d = take_col!(st, cf, *dst);
                muxop(
                    &mut d,
                    &st.cb[*c as usize],
                    &st.cf[*a as usize],
                    &st.cf[*b as usize],
                    lanes,
                );
                st.cf[*dst as usize] = d;
            }
            Instr::MuxB { dst, c, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                muxop(
                    &mut d,
                    &st.cb[*c as usize],
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                );
                st.cb[*dst as usize] = d;
            }
            Instr::MathF { f, dst, a } => {
                let mut d = take_col!(st, cf, *dst);
                let f = *f;
                unop(&mut d, &st.cf[*a as usize], lanes, |x| eval_math(f, x));
                st.cf[*dst as usize] = d;
            }
            Instr::CastIF { dst, a } => {
                let mut d = take_col!(st, cf, *dst);
                unop(&mut d, &st.ci[*a as usize], lanes, |x: i64| x as f64);
                st.cf[*dst as usize] = d;
            }
            Instr::CastFI { dst, a } => {
                let mut d = take_col!(st, ci, *dst);
                unop(&mut d, &st.cf[*a as usize], lanes, |x: f64| x as i64);
                st.ci[*dst as usize] = d;
            }
            Instr::ReadVI { dst, arr, idx } => {
                let mut d = take_col!(st, ci, *dst);
                let ic = &st.ci[*idx as usize];
                let r = match &st.scalar.rv[*arr as usize] {
                    Value::Arr(ArrayVal::I64(v)) => try_gather(&mut d, ic, lanes, |i| {
                        let p = bounds(i, v.len())?;
                        Ok(v[p])
                    }),
                    other => try_gather(&mut d, ic, lanes, |i| {
                        read_array(other, &Value::I64(i))?
                            .as_i64()
                            .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))
                    }),
                };
                st.ci[*dst as usize] = d;
                r?;
            }
            Instr::ReadVF { dst, arr, idx } => {
                let mut d = take_col!(st, cf, *dst);
                let ic = &st.ci[*idx as usize];
                let r = match &st.scalar.rv[*arr as usize] {
                    Value::Arr(ArrayVal::F64(v)) => try_gather(&mut d, ic, lanes, |i| {
                        let p = bounds(i, v.len())?;
                        Ok(v[p])
                    }),
                    other => try_gather(&mut d, ic, lanes, |i| {
                        read_array(other, &Value::I64(i))?
                            .as_f64()
                            .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))
                    }),
                };
                st.cf[*dst as usize] = d;
                r?;
            }
            Instr::ReadVB { dst, arr, idx } => {
                let mut d = take_col!(st, cb, *dst);
                let ic = &st.ci[*idx as usize];
                let r = match &st.scalar.rv[*arr as usize] {
                    Value::Arr(ArrayVal::Bool(v)) => try_gather(&mut d, ic, lanes, |i| {
                        let p = bounds(i, v.len())?;
                        Ok(v[p])
                    }),
                    other => try_gather(&mut d, ic, lanes, |i| {
                        read_array(other, &Value::I64(i))?
                            .as_bool()
                            .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))
                    }),
                };
                st.cb[*dst as usize] = d;
                r?;
            }
            other => unreachable!("instruction not certified for batched execution: {other:?}"),
        }
        Ok(())
    }

    /// Write the index-parameter column and run `b`'s instructions over the
    /// active lanes. On a fault, truncates `lanes` to the lanes before the
    /// faulting one and returns the (lane, error) pair.
    fn run_cblock_batched(
        &self,
        b: &CBlock,
        st: &mut BState,
        base: i64,
        lanes: &mut Lanes,
    ) -> Option<(usize, EvalError)> {
        debug_assert_eq!(b.params.len(), 1);
        debug_assert_eq!(b.params[0].class, Class::I);
        let col = &mut st.ci[b.params[0].idx as usize];
        for (l, c) in col.iter_mut().enumerate() {
            *c = base + l as i64;
        }
        for ins in &b.instrs {
            if let Err((lane, e)) = self.bstep(ins, st, lanes) {
                lanes.truncate_before(lane);
                return Some((lane, e));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Accumulation
// ---------------------------------------------------------------------------

/// Append column lane `l` of register `res` to a collect buffer.
fn push_lane(buf: &mut ColBuf, st: &BState, res: Reg, l: usize) {
    match (buf, res.class) {
        (ColBuf::I(v), Class::I) => v.push(st.ci[res.idx as usize][l]),
        (ColBuf::F(v), Class::F) => v.push(st.cf[res.idx as usize][l]),
        (ColBuf::B(v), Class::B) => v.push(st.cb[res.idx as usize][l]),
        _ => unreachable!("batched collect register class"),
    }
}

/// Box column lane `l` of register `res` as a [`Scalar`].
fn lane_scalar(st: &BState, res: Reg, l: usize) -> Scalar {
    match res.class {
        Class::I => Scalar::I(st.ci[res.idx as usize][l]),
        Class::F => Scalar::F(st.cf[res.idx as usize][l]),
        Class::B => Scalar::B(st.cb[res.idx as usize][l]),
        Class::V => unreachable!("batched value class"),
    }
}

/// The authoritative slot lookup for an `i64` key (updates the first-seen
/// key order and the hash index exactly like the scalar path).
fn keyix_slot_i64(kx: &mut KeyIx, k: i64) -> Result<usize, usize> {
    match kx {
        KeyIx::I { keys, ix } => match ix.get(&k) {
            Some(&s) => Ok(s),
            None => {
                let s = keys.len();
                ix.insert(k, s);
                keys.push(k);
                Err(s)
            }
        },
        KeyIx::V { .. } => kx.slot_of_value(&Value::I64(k)),
    }
}

/// Dense-directory slot lookup: an epoch-valid entry answers without
/// touching the hash index; misses fall through to [`keyix_slot_i64`] and
/// are cached. Out-of-range keys always use the authoritative index.
fn slot_dense(kx: &mut KeyIx, dir: &mut DenseDir, k: i64) -> Result<usize, usize> {
    if k >= 0 && (k as usize) < DENSE_KEY_CAP {
        let ki = k as usize;
        if ki >= dir.slots.len() {
            dir.slots.resize(ki + 1, (0, 0));
        }
        let (ep, slot) = dir.slots[ki];
        if ep == dir.epoch {
            return Ok(slot as usize);
        }
        let r = keyix_slot_i64(kx, k);
        let s = match r {
            Ok(s) | Err(s) => s,
        };
        dir.slots[ki] = (dir.epoch, s as u32);
        r
    } else {
        keyix_slot_i64(kx, k)
    }
}

/// Fold a column slice with a monomorphized combiner (so integer folds get
/// clean, vectorizable loops — wrapping arithmetic is associative, which is
/// the block-level "tree fold" the hardware actually performs).
fn fold_slice<T: Copy>(cur: T, col: &[T], f: impl Fn(T, T) -> T) -> T {
    let mut c = cur;
    for &x in col {
        c = f(c, x);
    }
    c
}

fn fold_i(op: super::IOp, cur: i64, col: &[i64]) -> i64 {
    use super::IOp;
    match op {
        IOp::Add => fold_slice(cur, col, |a, b| a.wrapping_add(b)),
        IOp::Sub => fold_slice(cur, col, |a, b| a.wrapping_sub(b)),
        IOp::Mul => fold_slice(cur, col, |a, b| a.wrapping_mul(b)),
        IOp::Min => fold_slice(cur, col, |a, b| a.min(b)),
        IOp::Max => fold_slice(cur, col, |a, b| a.max(b)),
    }
}

impl Kernel {
    /// Accumulate the value (and key) columns of one generator over the
    /// active lanes; faults (from reducer blocks) are lane-tagged.
    fn baccumulate(
        &self,
        gi: usize,
        gen: &CGen,
        acc: &mut KAcc,
        bst: &mut BState,
        lanes: &Lanes,
    ) -> Result<(), (usize, EvalError)> {
        let res = gen.value.result;
        match acc {
            KAcc::Col(buf) => {
                match lanes {
                    Lanes::Full => match (buf, res.class) {
                        (ColBuf::I(v), Class::I) => {
                            v.extend_from_slice(&bst.ci[res.idx as usize][..BLOCK]);
                        }
                        (ColBuf::F(v), Class::F) => {
                            v.extend_from_slice(&bst.cf[res.idx as usize][..BLOCK]);
                        }
                        (ColBuf::B(v), Class::B) => {
                            v.extend_from_slice(&bst.cb[res.idx as usize][..BLOCK]);
                        }
                        _ => unreachable!("batched collect register class"),
                    },
                    Lanes::Sel(s) => {
                        for &l in s {
                            push_lane(buf, bst, res, l as usize);
                        }
                    }
                }
                Ok(())
            }
            KAcc::RedI(state) => {
                if let Some(FastRed::I(op)) = gen.fast_red {
                    let col = &bst.ci[res.idx as usize];
                    match lanes {
                        Lanes::Full => {
                            let col = &col[..BLOCK];
                            let (cur, start) = self.seed_i(gen, state.take(), col[0], bst);
                            *state = Some(fold_i(op, cur, &col[start..]));
                        }
                        Lanes::Sel(s) => {
                            if s.is_empty() {
                                return Ok(());
                            }
                            let (mut cur, start) =
                                self.seed_i(gen, state.take(), col[s[0] as usize], bst);
                            for &l in &s[start..] {
                                cur = apply_i(op, cur, col[l as usize]);
                            }
                            *state = Some(cur);
                        }
                    }
                    return Ok(());
                }
                each_lane(lanes, |l| {
                    let x = bst.ci[res.idx as usize][l];
                    let next = match state.take() {
                        Some(cur) => self.reduce_i(gen, cur, x, &mut bst.scalar)?,
                        None => match gen.init {
                            Some(r) => {
                                let i0 = bst.scalar.ri[r.idx as usize];
                                self.reduce_i(gen, i0, x, &mut bst.scalar)?
                            }
                            None => x,
                        },
                    };
                    *state = Some(next);
                    Ok(())
                })
            }
            KAcc::RedF(state) => {
                if let Some(FastRed::F(op)) = gen.fast_red {
                    // Float folds must stay in lane order: reassociating (or
                    // fusing) would change the bits vs the scalar loop.
                    let col = &bst.cf[res.idx as usize];
                    match lanes {
                        Lanes::Full => {
                            let col = &col[..BLOCK];
                            let (cur, start) = self.seed_f(gen, state.take(), col[0], bst);
                            *state = Some(fold_slice(cur, &col[start..], |a, b| apply_f(op, a, b)));
                        }
                        Lanes::Sel(s) => {
                            if s.is_empty() {
                                return Ok(());
                            }
                            let (mut cur, start) =
                                self.seed_f(gen, state.take(), col[s[0] as usize], bst);
                            for &l in &s[start..] {
                                cur = apply_f(op, cur, col[l as usize]);
                            }
                            *state = Some(cur);
                        }
                    }
                    return Ok(());
                }
                each_lane(lanes, |l| {
                    let x = bst.cf[res.idx as usize][l];
                    let next = match state.take() {
                        Some(cur) => self.reduce_f(gen, cur, x, &mut bst.scalar)?,
                        None => match gen.init {
                            Some(r) => {
                                let i0 = bst.scalar.rf[r.idx as usize];
                                self.reduce_f(gen, i0, x, &mut bst.scalar)?
                            }
                            None => x,
                        },
                    };
                    *state = Some(next);
                    Ok(())
                })
            }
            KAcc::RedB(state) => each_lane(lanes, |l| {
                let x = bst.cb[res.idx as usize][l];
                let next = match state.take() {
                    Some(cur) => self.reduce_b(gen, cur, x, &mut bst.scalar)?,
                    None => match gen.init {
                        Some(r) => {
                            let i0 = bst.scalar.rb[r.idx as usize];
                            self.reduce_b(gen, i0, x, &mut bst.scalar)?
                        }
                        None => x,
                    },
                };
                *state = Some(next);
                Ok(())
            }),
            KAcc::RedV(_) => unreachable!("batched reduce of V class"),
            KAcc::BCol { keys, vals } => {
                let kb = gen.key.as_ref().expect("bucket gen has key");
                let kres = kb.result;
                each_lane(lanes, |l| {
                    let slot = if kres.class == Class::I {
                        slot_dense(keys, &mut bst.dense[gi], bst.ci[kres.idx as usize][l])
                    } else {
                        keys.slot_of_value(&super::scalar_value(lane_scalar(bst, kres, l)))
                    };
                    match slot {
                        Ok(s) => push_lane(&mut vals[s], bst, res, l),
                        Err(_new) => {
                            let mut buf = ColBuf::new(gen.val_class, 1);
                            push_lane(&mut buf, bst, res, l);
                            vals.push(buf);
                        }
                    }
                    Ok(())
                })
            }
            KAcc::BRed { keys, vals } => {
                let kb = gen.key.as_ref().expect("bucket gen has key");
                let kres = kb.result;
                each_lane(lanes, |l| {
                    let slot = if kres.class == Class::I {
                        slot_dense(keys, &mut bst.dense[gi], bst.ci[kres.idx as usize][l])
                    } else {
                        keys.slot_of_value(&super::scalar_value(lane_scalar(bst, kres, l)))
                    };
                    match slot {
                        Ok(s) => match (&mut *vals, res.class) {
                            (RedBuf::I(v), Class::I) => {
                                let x = bst.ci[res.idx as usize][l];
                                v[s] = self.reduce_i(gen, v[s], x, &mut bst.scalar)?;
                            }
                            (RedBuf::F(v), Class::F) => {
                                let x = bst.cf[res.idx as usize][l];
                                v[s] = self.reduce_f(gen, v[s], x, &mut bst.scalar)?;
                            }
                            _ => {
                                let cur = vals.get(s);
                                let x = lane_scalar(bst, res, l);
                                let next = self.reduce_scalar(gen, cur, x, &mut bst.scalar)?;
                                vals.set(s, next)?;
                            }
                        },
                        Err(_new) => vals.push(lane_scalar(bst, res, l))?,
                    }
                    Ok(())
                })
            }
        }
    }

    /// Seed an integer fold exactly like the scalar loop: carry-over state,
    /// or the explicit identity combined with the first element, or the
    /// first element itself. Returns the seed and how many leading lanes it
    /// consumed.
    fn seed_i(&self, gen: &CGen, state: Option<i64>, x0: i64, bst: &BState) -> (i64, usize) {
        match state {
            Some(c) => (c, 0),
            None => match gen.init {
                Some(r) => {
                    let fr = match gen.fast_red {
                        Some(FastRed::I(op)) => op,
                        _ => unreachable!("seed_i on fast integer reducer"),
                    };
                    (apply_i(fr, bst.scalar.ri[r.idx as usize], x0), 1)
                }
                None => (x0, 1),
            },
        }
    }

    /// Float analogue of [`Kernel::seed_i`].
    fn seed_f(&self, gen: &CGen, state: Option<f64>, x0: f64, bst: &BState) -> (f64, usize) {
        match state {
            Some(c) => (c, 0),
            None => match gen.init {
                Some(r) => {
                    let fr = match gen.fast_red {
                        Some(FastRed::F(op)) => op,
                        _ => unreachable!("seed_f on fast float reducer"),
                    };
                    (apply_f(fr, bst.scalar.rf[r.idx as usize], x0), 1)
                }
                None => (x0, 1),
            },
        }
    }

    /// Run one generator over one full block. Returns this generator's
    /// earliest fault, if any; the caller picks the block-wide winner.
    fn exec_gen_block(
        &self,
        gi: usize,
        gen: &CGen,
        acc: &mut KAcc,
        bst: &mut BState,
        base: i64,
    ) -> Option<(usize, EvalError)> {
        let mut pend: Option<(usize, EvalError)> = None;
        let mut lanes = Lanes::Full;
        if let Some(c) = &gen.cond {
            if let Some(x) = self.run_cblock_batched(c, bst, base, &mut lanes) {
                pend = Some(x);
            }
            let col = &bst.cb[c.result.idx as usize];
            let sel: Vec<u32> = match &lanes {
                Lanes::Full => (0..BLOCK as u32).filter(|&l| col[l as usize]).collect(),
                Lanes::Sel(s) => s.iter().copied().filter(|&l| col[l as usize]).collect(),
            };
            lanes = Lanes::Sel(sel);
        }
        if !lanes.is_empty() {
            if let Some(x) = self.run_cblock_batched(&gen.value, bst, base, &mut lanes) {
                pend = Some(x);
            }
            if let Some(kb) = &gen.key {
                if let Some(x) = self.run_cblock_batched(kb, bst, base, &mut lanes) {
                    pend = Some(x);
                }
            }
            if let Err(x) = self.baccumulate(gi, gen, acc, bst, &lanes) {
                pend = Some(x);
            }
        }
        pend
    }

    /// Execute all generators over the full block starting at `base`. The
    /// stage-truncation inside each generator guarantees a later stage's
    /// fault has a strictly smaller lane, so per-generator the last recorded
    /// fault is the earliest; across generators the winner is the minimum
    /// by (lane, generator index) — generator order breaks lane ties because
    /// the scalar loop runs generators in order within one element.
    fn exec_block_batched(
        &self,
        bst: &mut BState,
        accs: &mut [KAcc],
        base: i64,
    ) -> Result<(), EvalError> {
        let mut pend: Option<(usize, EvalError)> = None;
        for (gi, (gen, acc)) in self.gens.iter().zip(accs.iter_mut()).enumerate() {
            if let Some((lane, e)) = self.exec_gen_block(gi, gen, acc, bst, base) {
                if pend.as_ref().is_none_or(|(pl, _)| lane < *pl) {
                    pend = Some((lane, e));
                }
            }
        }
        match pend {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Run the top-level generators over `[start, end)` block-at-a-time,
    /// with the final `len % BLOCK` elements on the scalar tail. Returns the
    /// same raw accumulators as [`Kernel::run_range`], bit-identically.
    pub(crate) fn run_range_batched(
        &self,
        bst: &mut BState,
        start: i64,
        end: i64,
    ) -> Result<Vec<KAcc>, EvalError> {
        for d in bst.dense.iter_mut() {
            d.epoch += 1;
        }
        let hint = (end - start).max(0) as usize;
        let mut accs: Vec<KAcc> = self.gens.iter().map(|g| KAcc::for_gen(g, hint)).collect();
        let mut blocks = 0u64;
        let mut i = start;
        while i + (BLOCK as i64) <= end {
            self.exec_block_batched(bst, &mut accs, i)?;
            blocks += 1;
            i += BLOCK as i64;
        }
        let tail = (end - i).max(0) as u64;
        if i < end {
            self.exec_gens(&self.gens, &mut accs, &mut bst.scalar, i, end)?;
        }
        stats::record_batched_range(blocks, tail);
        Ok(accs)
    }
}
