//! Batched (block-at-a-time) execution for compiled kernels.
//!
//! The scalar bytecode loop in [`super`] still pays one dispatch `match` per
//! instruction *per element*. This module executes each instruction over a
//! fixed-width block of [`BLOCK`] elements instead: every `i64`/`f64`/`bool`
//! register becomes a column (`Vec<i64>` / `Vec<f64>` / `Vec<bool>`), the
//! per-element blocks run as straight-line loops over those columns (which
//! the compiler can autovectorize), and `Collect`/`Reduce` conditions become
//! **selection vectors** — sorted lane lists that let predicated generators
//! skip dead lanes without a per-element branch in the value block.
//!
//! Bit-identity rules (the tier contract from DESIGN.md §8 still binds):
//!
//! * **Certification.** Only kernels whose per-element blocks (cond, key,
//!   value) consist entirely of typed, column-executable instructions are
//!   batchable ([`batch_certify`] reports no reason); everything else
//!   runs the scalar bytecode loop and carries the typed rejection reason.
//!   Reducer blocks are exempt — they execute on the embedded scalar state
//!   per element, so any compilable reducer batches.
//! * **Deferred errors.** A fallible instruction (division, bounds-checked
//!   read) may fault at some lane; the scalar loop would have stopped there.
//!   The batched executor records the first faulting lane, truncates the
//!   active lanes to those *before* it, finishes the block, and reports the
//!   winning error: minimum by (lane, generator index) — exactly the error
//!   the element-at-a-time loop would have raised first.
//! * **Float folds stay in lane order.** Wrapping integer arithmetic is
//!   associative, so integer block reducers may be tree-folded/vectorized by
//!   the compiler; float reduction order is observable in the bits, so float
//!   folds run sequentially in lane order (and no FMA) — exact-merge
//!   semantics allow nothing else.
//! * **Scalar tail.** A range's final `len % BLOCK` elements run through the
//!   scalar `exec_gens` loop against the same accumulators.
//!
//! Bucket generators keep their per-lane key lookups, but typed `i64` keys
//! get a dense epoch-stamped directory ([`DenseDir`]) in front of the
//! authoritative first-seen-order [`KeyIx`], turning the per-element hash
//! into an array index for the small key domains real workloads have
//! (quantiles of group-bys: flags, barcodes, vertex ids).
//!
//! **Nested loops and virtual tuples.** A nested `Reduce` loop whose trip
//! count is loop-invariant (preamble-only size register) runs columnar too:
//! iteration-major, with one accumulator *column* per lane, so the fuse-
//! then-compile pipeline's flagship shapes — k-means' per-row argmin over
//! `k` centroids — stay on the batched tier instead of falling back to
//! scalar bytecode. Per-lane folds apply the reducer lane-wise (never
//! across lanes), so float bits match the element-at-a-time loop exactly.
//! Small tuples of typed components (`(dist, idx)` accumulators) become
//! **virtual tuple columns**: `TupleNewV`/`TupleGet*`/`MuxV` over them
//! execute as per-component column ops, and certification tracks which
//! `V` registers are virtual so nothing ever boxes.

use super::{
    apply_f, apply_i, bounds, read_array, stats, ArrayVal, CBlock, CGen, CLoop, Class, ColBuf,
    EvalError, FastRed, GenKind, Instr, KAcc, KState, Kernel, KeyIx, RedBuf, Reg, Scalar, Value,
};
use crate::eval::{check_extern_ret, eval_math, Env, Externs};

/// Lanes per block. Wide enough to amortize dispatch and fill vector units;
/// small enough that per-worker column files stay cache-resident.
pub(crate) const BLOCK: usize = 1024;

/// SIMD lane-chunk width for the full-block column loops: every full-width
/// column op runs as `BLOCK / LANES` fixed-trip inner loops of `LANES`
/// elements (`chunks_exact` proves the bound to the optimizer), which is
/// the shape LLVM reliably turns into vector code — 8×`i64`/`f64` fills a
/// 512-bit register and two AVX2 registers. `BLOCK % LANES == 0` (checked
/// below), so the chunked path has no remainder.
pub(crate) const LANES: usize = 8;

const _: () = assert!(BLOCK.is_multiple_of(LANES), "full blocks must chunk evenly");

/// Keys `0 <= k < DENSE_KEY_CAP` use the dense bucket directory.
const DENSE_KEY_CAP: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Certification
// ---------------------------------------------------------------------------

/// Why a compiled kernel cannot run on the batched tier. A closed, typed
/// taxonomy — not free-form text — so fallback reasons aggregate stably
/// across runs and the bench JSON key set ([`BatchIneligible::key`]) never
/// shifts when a human-facing message is reworded.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum BatchIneligible {
    /// A read from a boxed or dynamically-typed array.
    BoxedArrayRead,
    /// A boxed (`V`-class) operand outside the virtual-tuple cases.
    BoxedOperand,
    /// A dynamic coercion (`CastDyn`, collection size of a dynamic value).
    DynamicCoercion,
    /// `len` of an operand whose array type is not statically known.
    DynamicLength,
    /// A fallback primitive over boxed operands.
    FallbackPrimitive,
    /// Tuple construction or projection outside the virtual-tuple cases.
    TupleOp,
    /// Struct construction or field read.
    StructOp,
    /// A bucket operation inside a generator body.
    BucketOp,
    /// Any other instruction outside the batched whitelist.
    OutsideWhitelist,
    /// A nested loop whose trip count varies per element.
    NestedTripCountVaries,
    /// A nested loop shape the columnar executor does not run
    /// (non-`Reduce` generator or a conditioned nested generator).
    NestedLoopInBody,
    /// A nested reduce over boxed values.
    NestedBoxedReduce,
    /// A generator whose element value is a boxed (`V`-class) result.
    BoxedGenResult,
    /// A variable-trip nested loop whose body produces or consumes boxed
    /// (or virtual-tuple) values; the segmented executor is scalar-typed.
    SegmentedBoxedValue,
    /// A variable-trip nested loop whose block reducer reads per-element
    /// state beyond its own parameters, so per-lane folds cannot run on
    /// the shared scalar register file.
    SegmentedReducerVaries,
}

impl BatchIneligible {
    /// The stable snake_case identifier used as the JSON key in bench
    /// artifacts. Renaming one of these is a breaking schema change.
    pub fn key(self) -> &'static str {
        match self {
            BatchIneligible::BoxedArrayRead => "boxed_array_read",
            BatchIneligible::BoxedOperand => "boxed_operand",
            BatchIneligible::DynamicCoercion => "dynamic_coercion",
            BatchIneligible::DynamicLength => "dynamic_length",
            BatchIneligible::FallbackPrimitive => "fallback_primitive",
            BatchIneligible::TupleOp => "tuple_op",
            BatchIneligible::StructOp => "struct_op",
            BatchIneligible::BucketOp => "bucket_op",
            BatchIneligible::OutsideWhitelist => "outside_whitelist",
            BatchIneligible::NestedTripCountVaries => "nested_trip_count_varies",
            BatchIneligible::NestedLoopInBody => "nested_loop_in_body",
            BatchIneligible::NestedBoxedReduce => "nested_boxed_reduce",
            BatchIneligible::BoxedGenResult => "boxed_gen_result",
            BatchIneligible::SegmentedBoxedValue => "segmented_boxed_value",
            BatchIneligible::SegmentedReducerVaries => "segmented_reducer_varies",
        }
    }
}

impl std::fmt::Display for BatchIneligible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            BatchIneligible::BoxedArrayRead => "boxed or dynamically-typed array read",
            BatchIneligible::BoxedOperand => "boxed (V-class) operand",
            BatchIneligible::DynamicCoercion => "dynamic coercion",
            BatchIneligible::DynamicLength => "array length of a dynamic operand",
            BatchIneligible::FallbackPrimitive => "fallback primitive (boxed operands)",
            BatchIneligible::TupleOp => "tuple construction or projection",
            BatchIneligible::StructOp => "struct construction or field read",
            BatchIneligible::BucketOp => "bucket operation in generator body",
            BatchIneligible::OutsideWhitelist => "instruction outside the batched whitelist",
            BatchIneligible::NestedTripCountVaries => "nested loop with per-element trip count",
            BatchIneligible::NestedLoopInBody => "nested loop in generator body",
            BatchIneligible::NestedBoxedReduce => "nested reduce over boxed values",
            BatchIneligible::BoxedGenResult => "vector-valued generator element (boxed result)",
            BatchIneligible::SegmentedBoxedValue => {
                "boxed value in a variable-trip (segmented) nested loop"
            }
            BatchIneligible::SegmentedReducerVaries => {
                "segmented nested reducer reads per-element state"
            }
        };
        f.write_str(msg)
    }
}

/// Instructions the column executor implements. Everything here is typed
/// (no `V`-class destinations) and loop-free, so a block made only of these
/// runs as straight-line column loops.
fn instr_batchable(ins: &Instr) -> bool {
    matches!(
        ins,
        Instr::ConstI { .. }
            | Instr::ConstF { .. }
            | Instr::ConstB { .. }
            | Instr::BinI { .. }
            | Instr::DivI { .. }
            | Instr::RemI { .. }
            | Instr::BinF { .. }
            | Instr::NegI { .. }
            | Instr::NegF { .. }
            | Instr::CmpI { .. }
            | Instr::CmpF { .. }
            | Instr::CmpB { .. }
            | Instr::AndB { .. }
            | Instr::OrB { .. }
            | Instr::NotB { .. }
            | Instr::MuxI { .. }
            | Instr::MuxF { .. }
            | Instr::MuxB { .. }
            | Instr::MathF { .. }
            | Instr::CastIF { .. }
            | Instr::CastFI { .. }
            | Instr::ReadVI { .. }
            | Instr::ReadVF { .. }
            | Instr::ReadVB { .. }
    )
}

/// The typed rejection reason for an instruction outside the whitelist
/// (and outside the virtual-tuple/nested-loop cases the certifier handles
/// separately).
fn reject_reason(ins: &Instr) -> BatchIneligible {
    match ins {
        Instr::ReadVV { .. } | Instr::ReadDyn { .. } => BatchIneligible::BoxedArrayRead,
        Instr::ConstV { .. } | Instr::MuxV { .. } | Instr::MathV { .. } => {
            BatchIneligible::BoxedOperand
        }
        Instr::CastDyn { .. } | Instr::SizeI { .. } | Instr::CondB { .. } => {
            BatchIneligible::DynamicCoercion
        }
        Instr::LenA { .. } => BatchIneligible::DynamicLength,
        Instr::PrimV { .. } => BatchIneligible::FallbackPrimitive,
        Instr::TupleNewV { .. }
        | Instr::TupleGetI { .. }
        | Instr::TupleGetF { .. }
        | Instr::TupleGetB { .. }
        | Instr::TupleGetV { .. }
        | Instr::TupleGetDyn { .. } => BatchIneligible::TupleOp,
        Instr::StructNewV { .. } | Instr::StructGetIdx { .. } | Instr::StructGetDyn { .. } => {
            BatchIneligible::StructOp
        }
        Instr::FlattenV { .. }
        | Instr::BucketValuesV { .. }
        | Instr::BucketKeysV { .. }
        | Instr::BucketLenV { .. }
        | Instr::BucketGetV { .. } => BatchIneligible::BucketOp,
        _ => BatchIneligible::OutsideWhitelist,
    }
}

/// The per-class slot in the lane-varying bitmaps (`V` registers are never
/// tracked: boxed values cannot hold trip counts and are never gathered).
fn class_slot(c: Class) -> Option<usize> {
    match c {
        Class::I => Some(0),
        Class::F => Some(1),
        Class::B => Some(2),
        Class::V => None,
    }
}

/// The typed scalar register an instruction writes, if any — used to prove
/// a nested loop's size register preamble-only, and to track which
/// registers vary per element (so segmented bodies know what to gather).
/// `V`-class destinations return `None`.
fn instr_dst_reg(ins: &Instr) -> Option<Reg> {
    let r = |class: Class, idx: u16| Some(Reg { class, idx });
    match ins {
        Instr::ConstI { dst, .. }
        | Instr::BinI { dst, .. }
        | Instr::DivI { dst, .. }
        | Instr::RemI { dst, .. }
        | Instr::NegI { dst, .. }
        | Instr::MuxI { dst, .. }
        | Instr::CastFI { dst, .. }
        | Instr::ReadVI { dst, .. }
        | Instr::TupleGetI { dst, .. }
        | Instr::SizeI { dst, .. }
        | Instr::LenA { dst, .. }
        | Instr::BucketLenV { dst, .. } => r(Class::I, *dst),
        Instr::ConstF { dst, .. }
        | Instr::BinF { dst, .. }
        | Instr::NegF { dst, .. }
        | Instr::MuxF { dst, .. }
        | Instr::MathF { dst, .. }
        | Instr::MathV { dst, .. }
        | Instr::CastIF { dst, .. }
        | Instr::ReadVF { dst, .. }
        | Instr::TupleGetF { dst, .. } => r(Class::F, *dst),
        Instr::ConstB { dst, .. }
        | Instr::CmpI { dst, .. }
        | Instr::CmpF { dst, .. }
        | Instr::CmpB { dst, .. }
        | Instr::AndB { dst, .. }
        | Instr::OrB { dst, .. }
        | Instr::NotB { dst, .. }
        | Instr::MuxB { dst, .. }
        | Instr::CondB { dst, .. }
        | Instr::ReadVB { dst, .. }
        | Instr::TupleGetB { dst, .. } => r(Class::B, *dst),
        Instr::CastDyn { dst, .. }
        | Instr::PrimV { dst, .. }
        | Instr::StructGetIdx { dst, .. }
        | Instr::CallExtern { dst, .. } => (dst.class != Class::V).then_some(*dst),
        Instr::ConstV { .. }
        | Instr::ReadDyn { .. }
        | Instr::MuxV { .. }
        | Instr::ReadVV { .. }
        | Instr::TupleNewV { .. }
        | Instr::TupleGetV { .. }
        | Instr::TupleGetDyn { .. }
        | Instr::StructNewV { .. }
        | Instr::StructGetDyn { .. }
        | Instr::FlattenV { .. }
        | Instr::BucketValuesV { .. }
        | Instr::BucketKeysV { .. }
        | Instr::BucketGetV { .. }
        | Instr::Loop(_) => None,
    }
}

/// Visit every typed register a certified *segmented-body* instruction
/// reads. Only whitelist instructions and `CallExtern` reach this —
/// segmented certification rejects everything else first.
fn seg_instr_reads(ins: &Instr, mut f: impl FnMut(Reg)) {
    let i = |idx: u16| Reg {
        class: Class::I,
        idx,
    };
    let fl = |idx: u16| Reg {
        class: Class::F,
        idx,
    };
    let b = |idx: u16| Reg {
        class: Class::B,
        idx,
    };
    let v = |idx: u16| Reg {
        class: Class::V,
        idx,
    };
    match ins {
        Instr::ConstI { .. } | Instr::ConstF { .. } | Instr::ConstB { .. } => {}
        Instr::BinI { a, b: y, .. } | Instr::DivI { a, b: y, .. } | Instr::RemI { a, b: y, .. } => {
            f(i(*a));
            f(i(*y));
        }
        Instr::BinF { a, b: y, .. } => {
            f(fl(*a));
            f(fl(*y));
        }
        Instr::NegI { a, .. } => f(i(*a)),
        Instr::NegF { a, .. } | Instr::MathF { a, .. } => f(fl(*a)),
        Instr::CmpI { a, b: y, .. } => {
            f(i(*a));
            f(i(*y));
        }
        Instr::CmpF { a, b: y, .. } => {
            f(fl(*a));
            f(fl(*y));
        }
        Instr::CmpB { a, b: y, .. } | Instr::AndB { a, b: y, .. } | Instr::OrB { a, b: y, .. } => {
            f(b(*a));
            f(b(*y));
        }
        Instr::NotB { a, .. } => f(b(*a)),
        Instr::MuxI { c, a, b: y, .. } => {
            f(b(*c));
            f(i(*a));
            f(i(*y));
        }
        Instr::MuxF { c, a, b: y, .. } => {
            f(b(*c));
            f(fl(*a));
            f(fl(*y));
        }
        Instr::MuxB { c, a, b: y, .. } => {
            f(b(*c));
            f(b(*a));
            f(b(*y));
        }
        Instr::CastIF { a, .. } => f(i(*a)),
        Instr::CastFI { a, .. } => f(fl(*a)),
        Instr::ReadVI { arr, idx, .. }
        | Instr::ReadVF { arr, idx, .. }
        | Instr::ReadVB { arr, idx, .. } => {
            f(v(*arr));
            f(i(*idx));
        }
        Instr::CallExtern { args, .. } => {
            for a in args {
                f(*a);
            }
        }
        other => unreachable!("segmented bodies only contain whitelist instructions: {other:?}"),
    }
}

/// Visit each register `b` reads before any write inside `b` — its free
/// reads, the values it pulls from the enclosing (outer) block. Only valid
/// on certified segmented blocks.
fn free_seg_reads(b: &CBlock, mut f: impl FnMut(Reg)) {
    let mut written: Vec<Reg> = b.params.clone();
    for ins in &b.instrs {
        seg_instr_reads(ins, |r| {
            if !written.contains(&r) {
                f(r);
            }
        });
        if let Some(d) = instr_dst_reg(ins) {
            written.push(d);
        }
    }
}

fn note_gen_writes(gens: &[CGen], varying: &mut [Vec<bool>; 3]) {
    for g in gens {
        let blocks = [
            Some(&g.value),
            g.cond.as_ref(),
            g.key.as_ref(),
            g.reducer.as_ref(),
        ];
        for b in blocks.into_iter().flatten() {
            for p in &b.params {
                if let Some(s) = class_slot(p.class) {
                    varying[s][p.idx as usize] = true;
                }
            }
            for ins in &b.instrs {
                if let Some(d) = instr_dst_reg(ins) {
                    if let Some(s) = class_slot(d.class) {
                        varying[s][d.idx as usize] = true;
                    }
                }
            }
        }
    }
}

/// Certifier state: walks the kernel's per-element blocks in execution
/// order, tracking which `V` registers hold *virtual tuples* (tuples of
/// typed components kept as per-component columns) and which `I` registers
/// vary per element (so nested loop sizes can be proven invariant).
struct Cert<'a> {
    k: &'a Kernel,
    /// Component classes per virtual `V` register.
    virt: Vec<Option<Vec<Class>>>,
    /// Typed registers written inside any per-element block, per class
    /// (`I`/`F`/`B`). A batched nested loop shares one trip count across
    /// lanes, so its size register must not be among the `I` entries; a
    /// *segmented* nested loop gathers exactly these registers from its
    /// owner lane into the flattened iteration space.
    varying: [Vec<bool>; 3],
    /// Execution plans for segmented nested loops, parallel to `k.loops`
    /// (`None` = invariant-trip, runs the columnar nested path).
    seg_plans: Vec<Option<SegPlan>>,
}

impl<'a> Cert<'a> {
    fn new(k: &'a Kernel) -> Cert<'a> {
        let mut varying = [
            vec![false; k.n_regs[0]],
            vec![false; k.n_regs[1]],
            vec![false; k.n_regs[2]],
        ];
        note_gen_writes(&k.gens, &mut varying);
        for cl in &k.loops {
            note_gen_writes(&cl.gens, &mut varying);
            for d in &cl.dsts {
                if let Some(s) = class_slot(d.class) {
                    varying[s][d.idx as usize] = true;
                }
            }
        }
        Cert {
            k,
            virt: vec![None; k.n_regs[3]],
            varying,
            seg_plans: (0..k.loops.len()).map(|_| None).collect(),
        }
    }

    fn is_varying(&self, r: Reg) -> bool {
        class_slot(r.class).is_some_and(|s| self.varying[s][r.idx as usize])
    }

    fn comps_of(&self, t: u16) -> Option<&Vec<Class>> {
        self.virt[t as usize].as_ref()
    }

    fn expect_comp(&self, t: u16, idx: u32, class: Class) -> Result<(), BatchIneligible> {
        match self.comps_of(t) {
            Some(comps) if comps.get(idx as usize) == Some(&class) => Ok(()),
            _ => Err(BatchIneligible::TupleOp),
        }
    }

    fn certify_block(&mut self, b: &CBlock) -> Result<(), BatchIneligible> {
        for ins in &b.instrs {
            if instr_batchable(ins) {
                continue;
            }
            match ins {
                Instr::TupleNewV { dst, args } => {
                    if args.iter().any(|r| r.class == Class::V) {
                        return Err(BatchIneligible::TupleOp);
                    }
                    self.virt[*dst as usize] = Some(args.iter().map(|r| r.class).collect());
                }
                Instr::TupleGetI { t, idx, .. } => self.expect_comp(*t, *idx, Class::I)?,
                Instr::TupleGetF { t, idx, .. } => self.expect_comp(*t, *idx, Class::F)?,
                Instr::TupleGetB { t, idx, .. } => self.expect_comp(*t, *idx, Class::B)?,
                Instr::MuxV { dst, a, b, .. } => {
                    match (self.comps_of(*a), self.comps_of(*b)) {
                        (Some(x), Some(y)) if x == y => {
                            let comps = x.clone();
                            self.virt[*dst as usize] = Some(comps);
                        }
                        _ => return Err(BatchIneligible::BoxedOperand),
                    }
                }
                Instr::CallExtern { args, .. } => {
                    // Per-lane scalar calls: every typed operand has a
                    // column, and a `V` operand must be a real boxed value
                    // in `scalar.rv` (invariant), not a virtual tuple.
                    if args
                        .iter()
                        .any(|r| r.class == Class::V && self.virt[r.idx as usize].is_some())
                    {
                        return Err(BatchIneligible::BoxedOperand);
                    }
                }
                Instr::Loop(li) => self.certify_cloop(*li)?,
                ins => return Err(reject_reason(ins)),
            }
        }
        Ok(())
    }

    /// Certify a nested loop: invariant trip count, `Reduce`-only
    /// unconditional generators, batchable value blocks, and reducers that
    /// either fast-fold or certify columnar themselves (typed or over
    /// matching virtual tuples). Loops whose trip count *varies* per lane
    /// take the segmented path instead of rejecting outright.
    fn certify_cloop(&mut self, li: u32) -> Result<(), BatchIneligible> {
        let k = self.k;
        let cl = &k.loops[li as usize];
        if self.varying[0][cl.size as usize] {
            return self.certify_cloop_segmented(li, cl);
        }
        for (gen, dst) in cl.gens.iter().zip(&cl.dsts) {
            if gen.kind != GenKind::Reduce || gen.cond.is_some() {
                return Err(BatchIneligible::NestedLoopInBody);
            }
            self.certify_block(&gen.value)?;
            let res = gen.value.result;
            if res.class == Class::V {
                let Some(comps) = self.comps_of(res.idx).cloned() else {
                    return Err(BatchIneligible::BoxedGenResult);
                };
                if gen.init.is_some() {
                    return Err(BatchIneligible::NestedBoxedReduce);
                }
                let rb = gen
                    .reducer
                    .as_ref()
                    .ok_or(BatchIneligible::NestedBoxedReduce)?;
                if rb.params.len() != 2 || rb.params.iter().any(|p| p.class != Class::V) {
                    return Err(BatchIneligible::NestedBoxedReduce);
                }
                self.virt[rb.params[0].idx as usize] = Some(comps.clone());
                self.virt[rb.params[1].idx as usize] = Some(comps.clone());
                self.certify_block(rb)?;
                if rb.result.class != Class::V
                    || self.comps_of(rb.result.idx) != Some(&comps)
                    || dst.class != Class::V
                {
                    return Err(BatchIneligible::NestedBoxedReduce);
                }
                self.virt[dst.idx as usize] = Some(comps);
            } else if gen.fast_red.is_none() {
                let rb = gen
                    .reducer
                    .as_ref()
                    .ok_or(BatchIneligible::NestedBoxedReduce)?;
                if rb.params.len() != 2
                    || rb.params.iter().any(|p| p.class != res.class)
                    || rb.result.class != res.class
                {
                    return Err(BatchIneligible::NestedBoxedReduce);
                }
                self.certify_block(rb)?;
            }
        }
        Ok(())
    }

    /// Certify a nested loop whose trip count is lane-varying for the
    /// *segmented* executor: flatten the per-lane iteration spaces
    /// CSR-style into [`BLOCK`]-wide chunks, run the value blocks over the
    /// flat space, and fold back per owner lane. Requirements: `Reduce`-
    /// only unconditional generators with typed (non-boxed) results, value
    /// blocks of whitelist instructions (plus `CallExtern`; no third
    /// nesting level), and reducers that fast-fold or read nothing
    /// lane-varying beyond their parameters (the fold runs on the shared
    /// scalar register file).
    fn certify_cloop_segmented(&mut self, li: u32, cl: &CLoop) -> Result<(), BatchIneligible> {
        for (gen, dst) in cl.gens.iter().zip(&cl.dsts) {
            if gen.kind != GenKind::Reduce || gen.cond.is_some() {
                return Err(BatchIneligible::NestedLoopInBody);
            }
            let res = gen.value.result;
            if res.class == Class::V || dst.class == Class::V {
                return Err(BatchIneligible::SegmentedBoxedValue);
            }
            self.certify_seg_block(&gen.value)?;
            if gen.fast_red.is_none() {
                let rb = gen
                    .reducer
                    .as_ref()
                    .ok_or(BatchIneligible::NestedBoxedReduce)?;
                if rb.params.len() != 2
                    || rb.params.iter().any(|p| p.class != res.class)
                    || rb.result.class != res.class
                {
                    return Err(BatchIneligible::NestedBoxedReduce);
                }
                self.certify_seg_reducer(rb)?;
            }
        }
        // Gather set: lane-varying outer registers the flattened bodies
        // read, deduped in first-read order.
        let mut gather: Vec<Reg> = Vec::new();
        for gen in &cl.gens {
            free_seg_reads(&gen.value, |r| {
                if self.is_varying(r) && !gather.contains(&r) {
                    gather.push(r);
                }
            });
        }
        self.seg_plans[li as usize] = Some(SegPlan { gather });
        Ok(())
    }

    /// A segmented value block: whitelist instructions plus per-lane
    /// `CallExtern`. No nested `Instr::Loop` (a third, data-dependent
    /// nesting level falls back with a typed reason) and nothing virtual
    /// or boxed-producing.
    fn certify_seg_block(&self, b: &CBlock) -> Result<(), BatchIneligible> {
        for ins in &b.instrs {
            match ins {
                Instr::Loop(_) => return Err(BatchIneligible::NestedLoopInBody),
                Instr::CallExtern { args, .. } => {
                    if args
                        .iter()
                        .any(|r| r.class == Class::V && self.virt[r.idx as usize].is_some())
                    {
                        return Err(BatchIneligible::BoxedOperand);
                    }
                }
                ins if instr_batchable(ins) => {}
                ins => {
                    return Err(match reject_reason(ins) {
                        BatchIneligible::TupleOp => BatchIneligible::SegmentedBoxedValue,
                        r => r,
                    })
                }
            }
        }
        Ok(())
    }

    /// A segmented block reducer folds per flat element on the shared
    /// scalar register file, so beyond its two parameters it may only read
    /// lane-invariant registers (whose true values the scalar state holds).
    fn certify_seg_reducer(&self, rb: &CBlock) -> Result<(), BatchIneligible> {
        for ins in &rb.instrs {
            match ins {
                Instr::CallExtern { args, .. } => {
                    if args
                        .iter()
                        .any(|r| r.class == Class::V && self.virt[r.idx as usize].is_some())
                    {
                        return Err(BatchIneligible::BoxedOperand);
                    }
                }
                ins if instr_batchable(ins) => {}
                _ => return Err(BatchIneligible::NestedBoxedReduce),
            }
        }
        let mut varies = false;
        free_seg_reads(rb, |r| varies = varies || self.is_varying(r));
        if varies {
            return Err(BatchIneligible::SegmentedReducerVaries);
        }
        Ok(())
    }
}

/// Execution plan for a *segmented* nested loop (lane-varying trip count):
/// the lane-varying outer registers its flattened bodies read, gathered
/// from the saved outer column into each flat position by owner lane.
#[derive(Debug)]
pub(crate) struct SegPlan {
    pub gather: Vec<Reg>,
}

/// Certify a kernel for the batched tier: the first non-certifying
/// block/instruction mapped to a stable, typed reason (`None` = the kernel
/// certifies), plus the segmented execution plans for any lane-varying
/// nested loops. Surfaced through the per-loop fallback counters so
/// "batched_loops: 0" is never an unexplained miss.
pub(crate) fn batch_certify(k: &Kernel) -> (Option<BatchIneligible>, Vec<Option<SegPlan>>) {
    let mut cert = Cert::new(k);
    for g in &k.gens {
        let blocks = [Some(&g.value), g.cond.as_ref(), g.key.as_ref()];
        for b in blocks.into_iter().flatten() {
            if b.result.class == Class::V {
                return (Some(BatchIneligible::BoxedGenResult), Vec::new());
            }
            if let Err(r) = cert.certify_block(b) {
                return (Some(r), Vec::new());
            }
        }
    }
    (None, cert.seg_plans)
}

// ---------------------------------------------------------------------------
// Columnar state
// ---------------------------------------------------------------------------

/// Dense `i64`-key → bucket-slot directory, epoch-stamped so reusing a
/// worker state across tasks never requires clearing the table: entries
/// from an older epoch simply read as misses.
struct DenseDir {
    epoch: u64,
    slots: Vec<(u64, u32)>,
}

impl DenseDir {
    fn new() -> DenseDir {
        DenseDir {
            epoch: 0,
            slots: Vec::new(),
        }
    }
}

/// One component column of a virtual tuple.
#[derive(Clone)]
enum VCol {
    I(Vec<i64>),
    F(Vec<f64>),
    B(Vec<bool>),
}

/// Batched register files: one [`BLOCK`]-wide column per typed register,
/// plus the embedded scalar state that holds `V` registers (all invariant
/// under certification), runs the preamble, reducer blocks, and the tail.
pub(crate) struct BState {
    ci: Vec<Vec<i64>>,
    cf: Vec<Vec<f64>>,
    cb: Vec<Vec<bool>>,
    /// Virtual tuple columns per `V` register (`None` = a real boxed value
    /// living in `scalar.rv`; certification keeps the two disjoint).
    cv: Vec<Option<Vec<VCol>>>,
    /// One dense key directory per top-level generator.
    dense: Vec<DenseDir>,
    /// Per-element block executions since the last flush that ran the
    /// full-width lane-chunked (SIMD) path; drained into the process-wide
    /// counter once per `run_range_batched` call.
    simd_blocks: u64,
    /// Flattened-chunk executions of segmented nested loops since the last
    /// flush; drained alongside `simd_blocks`.
    segmented_blocks: u64,
    pub(crate) scalar: KState,
}

impl Kernel {
    /// Bind free variables, run the preamble on the scalar state, then
    /// splat every scalar register into its column: invariant registers get
    /// their true value in every lane; varying registers hold junk that is
    /// always overwritten before it is read (every non-invariant register
    /// is a block param or an instruction destination, written over the
    /// active lanes before any use in the same block run).
    pub(crate) fn new_batched_state(&self, env: &Env, externs: &Externs) -> Result<BState, EvalError> {
        let scalar = self.new_state(env, externs)?;
        Ok(BState {
            ci: scalar.ri.iter().map(|&v| vec![v; BLOCK]).collect(),
            cf: scalar.rf.iter().map(|&v| vec![v; BLOCK]).collect(),
            cb: scalar.rb.iter().map(|&v| vec![v; BLOCK]).collect(),
            cv: vec![None; scalar.rv.len()],
            dense: self.gens.iter().map(|_| DenseDir::new()).collect(),
            simd_blocks: 0,
            segmented_blocks: 0,
            scalar,
        })
    }
}

/// Active lanes of one block, in increasing order.
#[derive(Clone)]
enum Lanes {
    /// All `0..BLOCK` lanes.
    Full,
    /// An explicit selection vector.
    Sel(Vec<u32>),
}

impl Lanes {
    /// Drop every lane `>= lane` (a fallible instruction faulted there).
    fn truncate_before(&mut self, lane: usize) {
        match self {
            Lanes::Full => *self = Lanes::Sel((0..lane as u32).collect()),
            Lanes::Sel(s) => {
                let cut = s.partition_point(|&l| (l as usize) < lane);
                s.truncate(cut);
            }
        }
    }

    fn is_empty(&self) -> bool {
        matches!(self, Lanes::Sel(s) if s.is_empty())
    }

    /// The lowest active lane.
    fn first(&self) -> Option<usize> {
        match self {
            Lanes::Full => Some(0),
            Lanes::Sel(s) => s.first().map(|&l| l as usize),
        }
    }
}

/// Run `f` over every active lane; the first `Err` is tagged with its lane.
fn each_lane(
    lanes: &Lanes,
    mut f: impl FnMut(usize) -> Result<(), EvalError>,
) -> Result<(), (usize, EvalError)> {
    match lanes {
        Lanes::Full => {
            for l in 0..BLOCK {
                f(l).map_err(|e| (l, e))?;
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                f(l).map_err(|e| (l, e))?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Column loops
// ---------------------------------------------------------------------------
//
// Destination columns are `mem::take`n out of the register file before the
// operand columns are borrowed (instruction destinations are always freshly
// allocated registers, so `dst` never aliases an operand), which gives the
// optimizer clean, bounds-check-free inner loops over the `Full` lane set.

fn unop<T: Copy, U: Copy>(d: &mut [U], a: &[T], lanes: &Lanes, f: impl Fn(T) -> U) {
    match lanes {
        Lanes::Full => {
            let (d, a) = (&mut d[..BLOCK], &a[..BLOCK]);
            for (dc, ac) in d.chunks_exact_mut(LANES).zip(a.chunks_exact(LANES)) {
                for l in 0..LANES {
                    dc[l] = f(ac[l]);
                }
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                d[l] = f(a[l]);
            }
        }
    }
}

fn binop<T: Copy, U: Copy>(d: &mut [U], a: &[T], b: &[T], lanes: &Lanes, f: impl Fn(T, T) -> U) {
    match lanes {
        Lanes::Full => {
            let (d, a, b) = (&mut d[..BLOCK], &a[..BLOCK], &b[..BLOCK]);
            for ((dc, ac), bc) in d
                .chunks_exact_mut(LANES)
                .zip(a.chunks_exact(LANES))
                .zip(b.chunks_exact(LANES))
            {
                for l in 0..LANES {
                    dc[l] = f(ac[l], bc[l]);
                }
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                d[l] = f(a[l], b[l]);
            }
        }
    }
}

fn try_binop<T: Copy, U: Copy>(
    d: &mut [U],
    a: &[T],
    b: &[T],
    lanes: &Lanes,
    f: impl Fn(T, T) -> Result<U, EvalError>,
) -> Result<(), (usize, EvalError)> {
    each_lane(lanes, |l| {
        d[l] = f(a[l], b[l])?;
        Ok(())
    })
}

fn muxop<T: Copy>(d: &mut [T], c: &[bool], a: &[T], b: &[T], lanes: &Lanes) {
    match lanes {
        Lanes::Full => {
            let (d, c, a, b) = (&mut d[..BLOCK], &c[..BLOCK], &a[..BLOCK], &b[..BLOCK]);
            for (((dc, cc), ac), bc) in d
                .chunks_exact_mut(LANES)
                .zip(c.chunks_exact(LANES))
                .zip(a.chunks_exact(LANES))
                .zip(b.chunks_exact(LANES))
            {
                for l in 0..LANES {
                    dc[l] = if cc[l] { ac[l] } else { bc[l] };
                }
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                d[l] = if c[l] { a[l] } else { b[l] };
            }
        }
    }
}

/// Blend `b` into `d` (which holds `a`'s values) where the condition is
/// false — the in-place half of a `MuxV` over virtual tuple components.
fn blend<T: Copy>(d: &mut [T], c: &[bool], b: &[T], lanes: &Lanes) {
    match lanes {
        Lanes::Full => {
            let (d, c, b) = (&mut d[..BLOCK], &c[..BLOCK], &b[..BLOCK]);
            for ((dc, cc), bc) in d
                .chunks_exact_mut(LANES)
                .zip(c.chunks_exact(LANES))
                .zip(b.chunks_exact(LANES))
            {
                for l in 0..LANES {
                    // Branchless select keeps the chunk vectorizable.
                    dc[l] = if cc[l] { dc[l] } else { bc[l] };
                }
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                if !c[l] {
                    d[l] = b[l];
                }
            }
        }
    }
}

/// Fold `col` into `acc` lane-wise. Per-lane chains are independent, so
/// float folds here never reassociate across lanes.
fn fold_lanes<T: Copy>(acc: &mut [T], col: &[T], lanes: &Lanes, f: impl Fn(T, T) -> T) {
    match lanes {
        Lanes::Full => {
            let (a, c) = (&mut acc[..BLOCK], &col[..BLOCK]);
            for (ac, cc) in a.chunks_exact_mut(LANES).zip(c.chunks_exact(LANES)) {
                for l in 0..LANES {
                    ac[l] = f(ac[l], cc[l]);
                }
            }
        }
        Lanes::Sel(s) => {
            for &l in s {
                let l = l as usize;
                acc[l] = f(acc[l], col[l]);
            }
        }
    }
}

/// Gather `f(idx[l])` into `d` over the active lanes.
fn try_gather<T: Copy>(
    d: &mut [T],
    idx: &[i64],
    lanes: &Lanes,
    f: impl Fn(i64) -> Result<T, EvalError>,
) -> Result<(), (usize, EvalError)> {
    each_lane(lanes, |l| {
        d[l] = f(idx[l])?;
        Ok(())
    })
}

macro_rules! take_col {
    ($st:expr, $file:ident, $r:expr) => {
        std::mem::take(&mut $st.$file[$r as usize])
    };
}

impl Kernel {
    /// Execute one certified instruction over the active lanes.
    #[allow(clippy::too_many_lines)]
    fn bstep(&self, ins: &Instr, st: &mut BState, lanes: &Lanes) -> Result<(), (usize, EvalError)> {
        match ins {
            Instr::ConstI { dst, v } => st.ci[*dst as usize].fill(*v),
            Instr::ConstF { dst, v } => st.cf[*dst as usize].fill(*v),
            Instr::ConstB { dst, v } => st.cb[*dst as usize].fill(*v),
            Instr::BinI { op, dst, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| apply_i(op, x, y),
                );
                st.ci[*dst as usize] = d;
            }
            Instr::DivI { dst, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                let r = try_binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(x / y)
                        }
                    },
                );
                st.ci[*dst as usize] = d;
                r?;
            }
            Instr::RemI { dst, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                let r = try_binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| {
                        if y == 0 {
                            Err(EvalError::DivisionByZero)
                        } else {
                            Ok(x % y)
                        }
                    },
                );
                st.ci[*dst as usize] = d;
                r?;
            }
            Instr::BinF { op, dst, a, b } => {
                let mut d = take_col!(st, cf, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.cf[*a as usize],
                    &st.cf[*b as usize],
                    lanes,
                    |x, y| apply_f(op, x, y),
                );
                st.cf[*dst as usize] = d;
            }
            Instr::NegI { dst, a } => {
                let mut d = take_col!(st, ci, *dst);
                unop(&mut d, &st.ci[*a as usize], lanes, |x: i64| -x);
                st.ci[*dst as usize] = d;
            }
            Instr::NegF { dst, a } => {
                let mut d = take_col!(st, cf, *dst);
                unop(&mut d, &st.cf[*a as usize], lanes, |x: f64| -x);
                st.cf[*dst as usize] = d;
            }
            Instr::CmpI { op, dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                    |x, y| super::apply_cmp(op, x, y),
                );
                st.cb[*dst as usize] = d;
            }
            Instr::CmpF { op, dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                let op = *op;
                binop(
                    &mut d,
                    &st.cf[*a as usize],
                    &st.cf[*b as usize],
                    lanes,
                    |x, y| super::apply_cmp(op, x, y),
                );
                st.cb[*dst as usize] = d;
            }
            Instr::CmpB { op, dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                let eq = matches!(op, super::CmpOp::Eq);
                binop(
                    &mut d,
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                    |x, y| if eq { x == y } else { x != y },
                );
                st.cb[*dst as usize] = d;
            }
            Instr::AndB { dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                binop(
                    &mut d,
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                    |x, y| x && y,
                );
                st.cb[*dst as usize] = d;
            }
            Instr::OrB { dst, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                binop(
                    &mut d,
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                    |x, y| x || y,
                );
                st.cb[*dst as usize] = d;
            }
            Instr::NotB { dst, a } => {
                let mut d = take_col!(st, cb, *dst);
                unop(&mut d, &st.cb[*a as usize], lanes, |x: bool| !x);
                st.cb[*dst as usize] = d;
            }
            Instr::MuxI { dst, c, a, b } => {
                let mut d = take_col!(st, ci, *dst);
                muxop(
                    &mut d,
                    &st.cb[*c as usize],
                    &st.ci[*a as usize],
                    &st.ci[*b as usize],
                    lanes,
                );
                st.ci[*dst as usize] = d;
            }
            Instr::MuxF { dst, c, a, b } => {
                let mut d = take_col!(st, cf, *dst);
                muxop(
                    &mut d,
                    &st.cb[*c as usize],
                    &st.cf[*a as usize],
                    &st.cf[*b as usize],
                    lanes,
                );
                st.cf[*dst as usize] = d;
            }
            Instr::MuxB { dst, c, a, b } => {
                let mut d = take_col!(st, cb, *dst);
                muxop(
                    &mut d,
                    &st.cb[*c as usize],
                    &st.cb[*a as usize],
                    &st.cb[*b as usize],
                    lanes,
                );
                st.cb[*dst as usize] = d;
            }
            Instr::MathF { f, dst, a } => {
                let mut d = take_col!(st, cf, *dst);
                let f = *f;
                unop(&mut d, &st.cf[*a as usize], lanes, |x| eval_math(f, x));
                st.cf[*dst as usize] = d;
            }
            Instr::CastIF { dst, a } => {
                let mut d = take_col!(st, cf, *dst);
                unop(&mut d, &st.ci[*a as usize], lanes, |x: i64| x as f64);
                st.cf[*dst as usize] = d;
            }
            Instr::CastFI { dst, a } => {
                let mut d = take_col!(st, ci, *dst);
                unop(&mut d, &st.cf[*a as usize], lanes, |x: f64| x as i64);
                st.ci[*dst as usize] = d;
            }
            Instr::ReadVI { dst, arr, idx } => {
                let mut d = take_col!(st, ci, *dst);
                let ic = &st.ci[*idx as usize];
                let r = match &st.scalar.rv[*arr as usize] {
                    Value::Arr(ArrayVal::I64(v)) => try_gather(&mut d, ic, lanes, |i| {
                        let p = bounds(i, v.len())?;
                        Ok(v[p])
                    }),
                    other => try_gather(&mut d, ic, lanes, |i| {
                        read_array(other, &Value::I64(i))?
                            .as_i64()
                            .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))
                    }),
                };
                st.ci[*dst as usize] = d;
                r?;
            }
            Instr::ReadVF { dst, arr, idx } => {
                let mut d = take_col!(st, cf, *dst);
                let ic = &st.ci[*idx as usize];
                let r = match &st.scalar.rv[*arr as usize] {
                    Value::Arr(ArrayVal::F64(v)) => try_gather(&mut d, ic, lanes, |i| {
                        let p = bounds(i, v.len())?;
                        Ok(v[p])
                    }),
                    other => try_gather(&mut d, ic, lanes, |i| {
                        read_array(other, &Value::I64(i))?
                            .as_f64()
                            .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))
                    }),
                };
                st.cf[*dst as usize] = d;
                r?;
            }
            Instr::ReadVB { dst, arr, idx } => {
                let mut d = take_col!(st, cb, *dst);
                let ic = &st.ci[*idx as usize];
                let r = match &st.scalar.rv[*arr as usize] {
                    Value::Arr(ArrayVal::Bool(v)) => try_gather(&mut d, ic, lanes, |i| {
                        let p = bounds(i, v.len())?;
                        Ok(v[p])
                    }),
                    other => try_gather(&mut d, ic, lanes, |i| {
                        read_array(other, &Value::I64(i))?
                            .as_bool()
                            .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))
                    }),
                };
                st.cb[*dst as usize] = d;
                r?;
            }
            Instr::TupleNewV { dst, args } => {
                let comps = args
                    .iter()
                    .map(|r| match r.class {
                        Class::I => VCol::I(st.ci[r.idx as usize].clone()),
                        Class::F => VCol::F(st.cf[r.idx as usize].clone()),
                        Class::B => VCol::B(st.cb[r.idx as usize].clone()),
                        Class::V => unreachable!("certified tuple components are typed"),
                    })
                    .collect();
                st.cv[*dst as usize] = Some(comps);
            }
            Instr::TupleGetI { dst, t, idx } => {
                let mut d = take_col!(st, ci, *dst);
                match &st.cv[*t as usize].as_ref().expect("virtual tuple register")
                    [*idx as usize]
                {
                    VCol::I(c) => unop(&mut d, c, lanes, |x| x),
                    _ => unreachable!("certified tuple component class"),
                }
                st.ci[*dst as usize] = d;
            }
            Instr::TupleGetF { dst, t, idx } => {
                let mut d = take_col!(st, cf, *dst);
                match &st.cv[*t as usize].as_ref().expect("virtual tuple register")
                    [*idx as usize]
                {
                    VCol::F(c) => unop(&mut d, c, lanes, |x| x),
                    _ => unreachable!("certified tuple component class"),
                }
                st.cf[*dst as usize] = d;
            }
            Instr::TupleGetB { dst, t, idx } => {
                let mut d = take_col!(st, cb, *dst);
                match &st.cv[*t as usize].as_ref().expect("virtual tuple register")
                    [*idx as usize]
                {
                    VCol::B(c) => unop(&mut d, c, lanes, |x| x),
                    _ => unreachable!("certified tuple component class"),
                }
                st.cb[*dst as usize] = d;
            }
            Instr::MuxV { dst, c, a, b } => {
                let mut out = st.cv[*a as usize].clone().expect("virtual tuple register");
                {
                    let bv = st.cv[*b as usize].as_ref().expect("virtual tuple register");
                    let cc = &st.cb[*c as usize];
                    for (oc, bc) in out.iter_mut().zip(bv) {
                        match (oc, bc) {
                            (VCol::I(o), VCol::I(bb)) => blend(o, cc, bb, lanes),
                            (VCol::F(o), VCol::F(bb)) => blend(o, cc, bb, lanes),
                            (VCol::B(o), VCol::B(bb)) => blend(o, cc, bb, lanes),
                            _ => unreachable!("certified tuple component class"),
                        }
                    }
                }
                st.cv[*dst as usize] = Some(out);
            }
            Instr::CallExtern { dst, ext, args } => {
                // Per-lane scalar calls in lane order: handlers are opaque,
                // so there is no columnar form, but certification guarantees
                // every operand marshals from a column (or an invariant
                // boxed value) and the checked return lands in a column.
                let decl = &self.externs[*ext as usize];
                let Some(f) = st.scalar.ext[*ext as usize].clone() else {
                    return Err((
                        lanes.first().unwrap_or(0),
                        EvalError::UnknownExtern(decl.name.clone()),
                    ));
                };
                let marshal = |st: &BState, l: usize| -> Vec<Value> {
                    args.iter()
                        .map(|a| match a.class {
                            Class::I => Value::I64(st.ci[a.idx as usize][l]),
                            Class::F => Value::F64(st.cf[a.idx as usize][l]),
                            Class::B => Value::Bool(st.cb[a.idx as usize][l]),
                            Class::V => st.scalar.rv[a.idx as usize].clone(),
                        })
                        .collect()
                };
                let call = |st: &BState, l: usize| -> Result<Value, EvalError> {
                    let v = f(&marshal(st, l))?;
                    check_extern_ret(&decl.name, &decl.ret, &v)?;
                    Ok(v)
                };
                match dst.class {
                    Class::I => {
                        let mut d = take_col!(st, ci, dst.idx);
                        let r = each_lane(lanes, |l| {
                            d[l] = call(st, l)?.as_i64().expect("checked extern return");
                            Ok(())
                        });
                        st.ci[dst.idx as usize] = d;
                        r?;
                    }
                    Class::F => {
                        let mut d = take_col!(st, cf, dst.idx);
                        let r = each_lane(lanes, |l| {
                            d[l] = call(st, l)?.as_f64().expect("checked extern return");
                            Ok(())
                        });
                        st.cf[dst.idx as usize] = d;
                        r?;
                    }
                    Class::B => {
                        let mut d = take_col!(st, cb, dst.idx);
                        let r = each_lane(lanes, |l| {
                            d[l] = call(st, l)?.as_bool().expect("checked extern return");
                            Ok(())
                        });
                        st.cb[dst.idx as usize] = d;
                        r?;
                    }
                    Class::V => unreachable!("extern returns are scalar-typed"),
                }
            }
            Instr::Loop(li) => {
                let cl = &self.loops[*li as usize];
                return match self.seg_plans.get(*li as usize).and_then(Option::as_ref) {
                    Some(plan) => self.run_cloop_segmented(cl, plan, st, lanes),
                    None => self.run_cloop_batched(cl, st, lanes),
                };
            }
            other => unreachable!("instruction not certified for batched execution: {other:?}"),
        }
        Ok(())
    }

    /// Run a straight-line instruction sequence over the active lanes,
    /// surviving faults: a fault truncates the lanes to those before it and
    /// execution continues for the survivors (the scalar loop runs earlier
    /// elements to completion before a later element ever faults, so a
    /// survivor's own later fault must still be discovered — it wins).
    /// Returns the minimum-lane fault.
    fn run_instrs_resilient(
        &self,
        instrs: &[Instr],
        st: &mut BState,
        lanes: &mut Lanes,
    ) -> Option<(usize, EvalError)> {
        let mut pend: Option<(usize, EvalError)> = None;
        for ins in instrs {
            if lanes.is_empty() {
                break;
            }
            if let Err((lane, e)) = self.bstep(ins, st, lanes) {
                lanes.truncate_before(lane);
                if pend.as_ref().is_none_or(|(pl, _)| lane < *pl) {
                    pend = Some((lane, e));
                }
            }
        }
        pend
    }

    /// Write the index-parameter column and run `b`'s instructions over the
    /// active lanes. On faults, truncates `lanes` to the lanes before the
    /// earliest one, finishes the block for the survivors, and returns the
    /// winning (lane, error) pair.
    fn run_cblock_batched(
        &self,
        b: &CBlock,
        st: &mut BState,
        base: i64,
        lanes: &mut Lanes,
    ) -> Option<(usize, EvalError)> {
        debug_assert_eq!(b.params.len(), 1);
        debug_assert_eq!(b.params[0].class, Class::I);
        if matches!(lanes, Lanes::Full) {
            st.simd_blocks += 1;
        }
        let col = &mut st.ci[b.params[0].idx as usize];
        for (l, c) in col.iter_mut().enumerate() {
            *c = base + l as i64;
        }
        self.run_instrs_resilient(&b.instrs, st, lanes)
    }
}

// ---------------------------------------------------------------------------
// Nested loops
// ---------------------------------------------------------------------------

/// A nested reduce accumulator: one lane-wide column (or virtual tuple of
/// columns) holding every lane's running reduction.
enum NAcc {
    I(Vec<i64>),
    F(Vec<f64>),
    B(Vec<bool>),
    V(Vec<VCol>),
}

/// Record `new` into `pend` if it is the earliest-lane fault seen so far.
fn note_fault(pend: &mut Option<(usize, EvalError)>, new: Option<(usize, EvalError)>) {
    if let Some((lane, e)) = new {
        if pend.as_ref().is_none_or(|(pl, _)| lane < *pl) {
            *pend = Some((lane, e));
        }
    }
}

impl Kernel {
    /// Execute a certified nested loop columnar: iteration-major over the
    /// active lanes, folding each iteration's value column into per-lane
    /// accumulators. Per-lane fold chains run in iteration order (the
    /// scalar loop's order), so float bits match exactly; faults truncate
    /// the local lane set and the earliest lane's error wins, matching the
    /// element-major scalar loop.
    fn run_cloop_batched(
        &self,
        cl: &CLoop,
        st: &mut BState,
        lanes: &Lanes,
    ) -> Result<(), (usize, EvalError)> {
        // Certification proved the size register preamble-only, so the
        // scalar state holds its (lane-invariant) value.
        let size = st.scalar.ri[cl.size as usize];
        let mut local = lanes.clone();
        let mut pend: Option<(usize, EvalError)> = None;
        // An explicit identity seeds the accumulator with its column, so
        // iteration 0 folds reduce(init, x0) exactly like the scalar loop.
        let mut accs: Vec<Option<NAcc>> = cl
            .gens
            .iter()
            .map(|g| g.init.map(|r| init_nacc(r, st)))
            .collect();
        for it in 0..size.max(0) {
            if local.is_empty() {
                break;
            }
            for (gen, acc) in cl.gens.iter().zip(accs.iter_mut()) {
                if local.is_empty() {
                    break;
                }
                note_fault(
                    &mut pend,
                    self.run_nested_value(&gen.value, st, it, &mut local),
                );
                if local.is_empty() {
                    break;
                }
                note_fault(&mut pend, self.nested_fold(gen, acc, st, &mut local));
            }
        }
        for (dst, acc) in cl.dsts.iter().zip(accs) {
            match acc {
                Some(a) => write_nacc(*dst, a, st),
                None => {
                    // No iterations ran and no identity: every surviving
                    // element's reduce is empty; the element-major scalar
                    // loop faults at the first of them.
                    if let Some(l) = local.first() {
                        note_fault(&mut pend, Some((l, EvalError::EmptyReduce)));
                    }
                    break;
                }
            }
        }
        match pend {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Run a nested value block for one iteration: the index parameter is
    /// the iteration number, identical in every lane.
    fn run_nested_value(
        &self,
        b: &CBlock,
        st: &mut BState,
        it: i64,
        lanes: &mut Lanes,
    ) -> Option<(usize, EvalError)> {
        debug_assert_eq!(b.params.len(), 1);
        debug_assert_eq!(b.params[0].class, Class::I);
        if matches!(lanes, Lanes::Full) {
            st.simd_blocks += 1;
        }
        st.ci[b.params[0].idx as usize].fill(it);
        self.run_instrs_resilient(&b.instrs, st, lanes)
    }

    /// Fold the value column of one nested iteration into the per-lane
    /// accumulator (seeding it from the first iteration when there is no
    /// explicit identity).
    fn nested_fold(
        &self,
        gen: &CGen,
        acc: &mut Option<NAcc>,
        st: &mut BState,
        lanes: &mut Lanes,
    ) -> Option<(usize, EvalError)> {
        let res = gen.value.result;
        let Some(a) = acc else {
            *acc = Some(match res.class {
                Class::I => NAcc::I(st.ci[res.idx as usize].clone()),
                Class::F => NAcc::F(st.cf[res.idx as usize].clone()),
                Class::B => NAcc::B(st.cb[res.idx as usize].clone()),
                Class::V => NAcc::V(
                    st.cv[res.idx as usize]
                        .as_ref()
                        .expect("virtual tuple register")
                        .clone(),
                ),
            });
            return None;
        };
        match (&mut *a, gen.fast_red) {
            (NAcc::I(av), Some(FastRed::I(op))) => {
                fold_lanes(av, &st.ci[res.idx as usize], lanes, |x, y| apply_i(op, x, y));
                None
            }
            (NAcc::F(av), Some(FastRed::F(op))) => {
                fold_lanes(av, &st.cf[res.idx as usize], lanes, |x, y| apply_f(op, x, y));
                None
            }
            _ => self.nested_fold_reducer(gen, a, st, lanes),
        }
    }

    /// Apply a block reducer columnar: bind the accumulator and value
    /// columns to the parameter registers, run the block over the active
    /// lanes, and read the result column back as the new accumulator.
    fn nested_fold_reducer(
        &self,
        gen: &CGen,
        acc: &mut NAcc,
        st: &mut BState,
        lanes: &mut Lanes,
    ) -> Option<(usize, EvalError)> {
        let rb = gen.reducer.as_ref().expect("reduce gen has reducer");
        let (p0, p1) = (rb.params[0], rb.params[1]);
        let res = gen.value.result;
        match acc {
            NAcc::I(av) => {
                st.ci[p0.idx as usize].clone_from(av);
                if p1.idx != res.idx {
                    let mut d = take_col!(st, ci, p1.idx);
                    d.clone_from(&st.ci[res.idx as usize]);
                    st.ci[p1.idx as usize] = d;
                }
                let pend = self.run_instrs_resilient(&rb.instrs, st, lanes);
                av.clone_from(&st.ci[rb.result.idx as usize]);
                pend
            }
            NAcc::F(av) => {
                st.cf[p0.idx as usize].clone_from(av);
                if p1.idx != res.idx {
                    let mut d = take_col!(st, cf, p1.idx);
                    d.clone_from(&st.cf[res.idx as usize]);
                    st.cf[p1.idx as usize] = d;
                }
                let pend = self.run_instrs_resilient(&rb.instrs, st, lanes);
                av.clone_from(&st.cf[rb.result.idx as usize]);
                pend
            }
            NAcc::B(av) => {
                st.cb[p0.idx as usize].clone_from(av);
                if p1.idx != res.idx {
                    let mut d = take_col!(st, cb, p1.idx);
                    d.clone_from(&st.cb[res.idx as usize]);
                    st.cb[p1.idx as usize] = d;
                }
                let pend = self.run_instrs_resilient(&rb.instrs, st, lanes);
                av.clone_from(&st.cb[rb.result.idx as usize]);
                pend
            }
            NAcc::V(comps) => {
                st.cv[p0.idx as usize] = Some(std::mem::take(comps));
                if p1.idx != res.idx {
                    let val = st.cv[res.idx as usize]
                        .as_ref()
                        .expect("virtual tuple register")
                        .clone();
                    st.cv[p1.idx as usize] = Some(val);
                }
                let pend = self.run_instrs_resilient(&rb.instrs, st, lanes);
                *comps = st.cv[rb.result.idx as usize]
                    .clone()
                    .expect("virtual reducer result");
                pend
            }
        }
    }
}

/// Seed an accumulator from an explicit identity register's column.
fn init_nacc(r: Reg, st: &BState) -> NAcc {
    match r.class {
        Class::I => NAcc::I(st.ci[r.idx as usize].clone()),
        Class::F => NAcc::F(st.cf[r.idx as usize].clone()),
        Class::B => NAcc::B(st.cb[r.idx as usize].clone()),
        Class::V => unreachable!("certified nested reduce identity is typed"),
    }
}

/// Write a sealed accumulator into its destination register's column.
fn write_nacc(dst: Reg, a: NAcc, st: &mut BState) {
    match a {
        NAcc::I(v) => st.ci[dst.idx as usize] = v,
        NAcc::F(v) => st.cf[dst.idx as usize] = v,
        NAcc::B(v) => st.cb[dst.idx as usize] = v,
        NAcc::V(comps) => st.cv[dst.idx as usize] = Some(comps),
    }
}

// ---------------------------------------------------------------------------
// Segmented nested loops
// ---------------------------------------------------------------------------
//
// A nested loop whose trip count *varies* per lane cannot run iteration-major
// (lanes disagree on when to stop). The segmented executor flattens the
// per-lane iteration spaces CSR-style instead: walking the active lanes in
// order, each lane contributes `trips[lane]` flat positions, and the flat
// space executes in [`BLOCK`]-wide chunks — the value blocks run columnar
// over the chunk with the iteration number in the index-parameter column and
// every lane-varying outer register *gathered* from its owner lane. Results
// fold back per owner with the same reducers the scalar loop uses.
//
// Bit-identity: lane-major flat order IS the element-at-a-time execution
// order (element `l` runs all its iterations before element `l+1`), so
// per-owner fold chains see values in exactly the scalar sequence — float
// bits match — and the minimum faulting flat position (ties broken by
// generator order) is exactly the scalar loop's first error. On a chunk
// fault the remaining chunks are abandoned: they only hold positions of
// lanes at or after the faulting owner, and the caller truncates those
// lanes anyway.

/// Per-lane running reductions of one segmented generator (typed only —
/// certification rejects boxed/virtual segmented accumulators).
enum SegAcc {
    I(Vec<i64>),
    F(Vec<f64>),
    B(Vec<bool>),
}

/// An outer column displaced for the duration of a segmented loop: the
/// original (per-lane) values, read by owner when gathering, while the
/// register file holds a scratch column of gathered per-position values.
enum SegSaved {
    I(u16, Vec<i64>),
    F(u16, Vec<f64>),
    B(u16, Vec<bool>),
}

/// Fold one chunk's value column into the per-owner accumulators, in flat
/// position order. Positions whose owner has no running value yet seed it
/// (matching the scalar loop's first-iteration seeding); the rest fold
/// through `red`. Returns the first faulting position and its error.
fn seg_fold_col<T: Copy>(
    av: &mut [T],
    started: &mut [bool],
    col: &[T],
    owner: &[u32],
    lanes: &Lanes,
    mut red: impl FnMut(T, T) -> Result<T, EvalError>,
) -> Option<(usize, EvalError)> {
    let mut go = |j: usize| -> Result<(), EvalError> {
        let o = owner[j] as usize;
        if started[o] {
            av[o] = red(av[o], col[j])?;
        } else {
            av[o] = col[j];
            started[o] = true;
        }
        Ok(())
    };
    match lanes {
        Lanes::Full => {
            for j in 0..BLOCK {
                if let Err(e) = go(j) {
                    return Some((j, e));
                }
            }
        }
        Lanes::Sel(s) => {
            for &j in s {
                let j = j as usize;
                if let Err(e) = go(j) {
                    return Some((j, e));
                }
            }
        }
    }
    None
}

impl Kernel {
    /// Fold the surviving chunk positions of `gen`'s value column into its
    /// accumulator. Block reducers run per position on the embedded scalar
    /// state (certification proved their free reads lane-invariant); the
    /// value column is displaced around the fold so the scalar state can be
    /// borrowed mutably.
    fn seg_fold(
        &self,
        gen: &CGen,
        acc: &mut SegAcc,
        started: &mut [bool],
        owner: &[u32],
        st: &mut BState,
        lanes: &Lanes,
    ) -> Option<(usize, EvalError)> {
        let res = gen.value.result;
        match acc {
            SegAcc::I(av) => {
                let col = take_col!(st, ci, res.idx);
                let pend = seg_fold_col(av, started, &col, owner, lanes, |a, b| {
                    self.reduce_i(gen, a, b, &mut st.scalar)
                });
                st.ci[res.idx as usize] = col;
                pend
            }
            SegAcc::F(av) => {
                let col = take_col!(st, cf, res.idx);
                let pend = seg_fold_col(av, started, &col, owner, lanes, |a, b| {
                    self.reduce_f(gen, a, b, &mut st.scalar)
                });
                st.cf[res.idx as usize] = col;
                pend
            }
            SegAcc::B(av) => {
                let col = take_col!(st, cb, res.idx);
                let pend = seg_fold_col(av, started, &col, owner, lanes, |a, b| {
                    self.reduce_b(gen, a, b, &mut st.scalar)
                });
                st.cb[res.idx as usize] = col;
                pend
            }
        }
    }

    /// Execute a lane-varying nested loop segmented (see the module note
    /// above): flatten lane-major, run the value blocks chunk-at-a-time
    /// over the flat space, fold back per owner lane, and reconstruct the
    /// exact scalar error (earliest flat position, then generator order,
    /// with `EmptyReduce` surfacing at its owner's element position).
    #[allow(clippy::too_many_lines)]
    fn run_cloop_segmented(
        &self,
        cl: &CLoop,
        plan: &SegPlan,
        st: &mut BState,
        lanes: &Lanes,
    ) -> Result<(), (usize, EvalError)> {
        let active: Vec<u32> = match lanes {
            Lanes::Full => (0..BLOCK as u32).collect(),
            Lanes::Sel(s) => s.clone(),
        };
        // Per-active-lane trip counts, read before any column is displaced.
        let trips: Vec<i64> = active
            .iter()
            .map(|&l| st.ci[cl.size as usize][l as usize].max(0))
            .collect();
        // An explicit identity seeds every lane's accumulator — including
        // zero-trip lanes, whose reduce seals to the identity exactly as
        // the scalar loop's `seal_gen` does.
        let mut accs: Vec<SegAcc> = Vec::with_capacity(cl.gens.len());
        let mut started: Vec<Vec<bool>> = Vec::with_capacity(cl.gens.len());
        for gen in &cl.gens {
            let res = gen.value.result;
            match gen.init {
                Some(r) => {
                    debug_assert_eq!(r.class, res.class);
                    accs.push(match res.class {
                        Class::I => SegAcc::I(st.ci[r.idx as usize].clone()),
                        Class::F => SegAcc::F(st.cf[r.idx as usize].clone()),
                        Class::B => SegAcc::B(st.cb[r.idx as usize].clone()),
                        Class::V => unreachable!("segmented accumulators are typed"),
                    });
                    started.push(vec![true; BLOCK]);
                }
                None => {
                    accs.push(match res.class {
                        Class::I => SegAcc::I(vec![0; BLOCK]),
                        Class::F => SegAcc::F(vec![0.0; BLOCK]),
                        Class::B => SegAcc::B(vec![false; BLOCK]),
                        Class::V => unreachable!("segmented accumulators are typed"),
                    });
                    started.push(vec![false; BLOCK]);
                }
            }
        }
        // Displace the gathered outer columns: the originals feed the
        // per-position gathers; scratch columns take their register slots.
        let saved: Vec<SegSaved> = plan
            .gather
            .iter()
            .map(|r| match r.class {
                Class::I => SegSaved::I(
                    r.idx,
                    std::mem::replace(&mut st.ci[r.idx as usize], vec![0; BLOCK]),
                ),
                Class::F => SegSaved::F(
                    r.idx,
                    std::mem::replace(&mut st.cf[r.idx as usize], vec![0.0; BLOCK]),
                ),
                Class::B => SegSaved::B(
                    r.idx,
                    std::mem::replace(&mut st.cb[r.idx as usize], vec![false; BLOCK]),
                ),
                Class::V => unreachable!("gathered registers are typed"),
            })
            .collect();
        let mut owner = vec![0u32; BLOCK];
        let mut itbuf = vec![0i64; BLOCK];
        // During the chunk loop `pend` holds (flat chunk position, error);
        // it is remapped to (owner lane, error) once the loop exits.
        let mut pend: Option<(usize, EvalError)> = None;
        let (mut ai, mut it) = (0usize, 0i64);
        while ai < active.len() {
            // Fill the next chunk lane-major: lane `active[ai]` contributes
            // iterations `it..trips[ai]`, then the cursor moves on.
            let mut m = 0usize;
            while m < BLOCK && ai < active.len() {
                if it >= trips[ai] {
                    ai += 1;
                    it = 0;
                    continue;
                }
                owner[m] = active[ai];
                itbuf[m] = it;
                it += 1;
                m += 1;
            }
            if m == 0 {
                break;
            }
            st.segmented_blocks += 1;
            let mut chunk_lanes = if m == BLOCK {
                Lanes::Full
            } else {
                Lanes::Sel((0..m as u32).collect())
            };
            for s in &saved {
                match s {
                    SegSaved::I(idx, outer) => {
                        let col = &mut st.ci[*idx as usize];
                        for j in 0..m {
                            col[j] = outer[owner[j] as usize];
                        }
                    }
                    SegSaved::F(idx, outer) => {
                        let col = &mut st.cf[*idx as usize];
                        for j in 0..m {
                            col[j] = outer[owner[j] as usize];
                        }
                    }
                    SegSaved::B(idx, outer) => {
                        let col = &mut st.cb[*idx as usize];
                        for j in 0..m {
                            col[j] = outer[owner[j] as usize];
                        }
                    }
                }
            }
            for (gen, (acc, strt)) in cl.gens.iter().zip(accs.iter_mut().zip(started.iter_mut())) {
                if chunk_lanes.is_empty() {
                    break;
                }
                let p = gen.value.params[0];
                debug_assert_eq!(gen.value.params.len(), 1);
                debug_assert_eq!(p.class, Class::I);
                st.ci[p.idx as usize][..m].copy_from_slice(&itbuf[..m]);
                if matches!(chunk_lanes, Lanes::Full) {
                    st.simd_blocks += 1;
                }
                note_fault(
                    &mut pend,
                    self.run_instrs_resilient(&gen.value.instrs, st, &mut chunk_lanes),
                );
                if chunk_lanes.is_empty() {
                    break;
                }
                let fault = self.seg_fold(gen, acc, strt, &owner, st, &chunk_lanes);
                if let Some((j, _)) = fault {
                    chunk_lanes.truncate_before(j);
                }
                note_fault(&mut pend, fault);
            }
            if pend.is_some() {
                // Every remaining position belongs to the faulting owner or
                // a later lane; the caller drops those lanes regardless.
                break;
            }
        }
        for s in saved {
            match s {
                SegSaved::I(idx, outer) => st.ci[idx as usize] = outer,
                SegSaved::F(idx, outer) => st.cf[idx as usize] = outer,
                SegSaved::B(idx, outer) => st.cb[idx as usize] = outer,
            }
        }
        let mut pend = pend.map(|(j, e)| (owner[j] as usize, e));
        // A zero-trip lane with no identity seals to `EmptyReduce` at its
        // element position — which beats any fault at a *later* owner lane
        // (the element-major loop reaches the seal first). `note_fault`'s
        // strict minimum also keeps unstarted lanes at or after a faulting
        // owner (whose chunks never ran) from masking the real error.
        'seal: for &l in &active {
            let l = l as usize;
            for strt in &started {
                if !strt[l] {
                    note_fault(&mut pend, Some((l, EvalError::EmptyReduce)));
                    break 'seal;
                }
            }
        }
        for (dst, acc) in cl.dsts.iter().zip(accs) {
            match acc {
                SegAcc::I(v) => st.ci[dst.idx as usize] = v,
                SegAcc::F(v) => st.cf[dst.idx as usize] = v,
                SegAcc::B(v) => st.cb[dst.idx as usize] = v,
            }
        }
        match pend {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Accumulation
// ---------------------------------------------------------------------------

/// Append column lane `l` of register `res` to a collect buffer.
fn push_lane(buf: &mut ColBuf, st: &BState, res: Reg, l: usize) {
    match (buf, res.class) {
        (ColBuf::I(v), Class::I) => v.push(st.ci[res.idx as usize][l]),
        (ColBuf::F(v), Class::F) => v.push(st.cf[res.idx as usize][l]),
        (ColBuf::B(v), Class::B) => v.push(st.cb[res.idx as usize][l]),
        _ => unreachable!("batched collect register class"),
    }
}

/// Box column lane `l` of register `res` as a [`Scalar`].
fn lane_scalar(st: &BState, res: Reg, l: usize) -> Scalar {
    match res.class {
        Class::I => Scalar::I(st.ci[res.idx as usize][l]),
        Class::F => Scalar::F(st.cf[res.idx as usize][l]),
        Class::B => Scalar::B(st.cb[res.idx as usize][l]),
        Class::V => unreachable!("batched value class"),
    }
}

/// The authoritative slot lookup for an `i64` key (updates the first-seen
/// key order and the hash index exactly like the scalar path).
fn keyix_slot_i64(kx: &mut KeyIx, k: i64) -> Result<usize, usize> {
    match kx {
        KeyIx::I { keys, ix } => match ix.get(&k) {
            Some(&s) => Ok(s),
            None => {
                let s = keys.len();
                ix.insert(k, s);
                keys.push(k);
                Err(s)
            }
        },
        KeyIx::V { .. } => kx.slot_of_value(&Value::I64(k)),
    }
}

/// Dense-directory slot lookup: an epoch-valid entry answers without
/// touching the hash index; misses fall through to [`keyix_slot_i64`] and
/// are cached. Out-of-range keys always use the authoritative index.
fn slot_dense(kx: &mut KeyIx, dir: &mut DenseDir, k: i64) -> Result<usize, usize> {
    if k >= 0 && (k as usize) < DENSE_KEY_CAP {
        let ki = k as usize;
        if ki >= dir.slots.len() {
            dir.slots.resize(ki + 1, (0, 0));
        }
        let (ep, slot) = dir.slots[ki];
        if ep == dir.epoch {
            return Ok(slot as usize);
        }
        let r = keyix_slot_i64(kx, k);
        let s = match r {
            Ok(s) | Err(s) => s,
        };
        dir.slots[ki] = (dir.epoch, s as u32);
        r
    } else {
        keyix_slot_i64(kx, k)
    }
}

/// Fold a column slice with a monomorphized combiner, strictly in lane
/// order — the only legal shape for floats, whose rounding makes the fold
/// order observable in the bits.
fn fold_slice<T: Copy>(cur: T, col: &[T], f: impl Fn(T, T) -> T) -> T {
    let mut c = cur;
    for &x in col {
        c = f(c, x);
    }
    c
}

/// Tree-fold an integer column through [`LANES`] independent partial
/// accumulators — the explicitly SIMD-shaped reduction. Exact for any
/// associative-and-commutative combiner with identity `id` (wrapping
/// `+`/`*`, `min`/`max`): regrouping wrapping arithmetic cannot change the
/// result, so this matches the sequential lane-order fold bit-for-bit.
fn tree_fold_i(cur: i64, col: &[i64], id: i64, f: impl Fn(i64, i64) -> i64) -> i64 {
    let mut part = [id; LANES];
    let mut chunks = col.chunks_exact(LANES);
    for ch in chunks.by_ref() {
        for l in 0..LANES {
            part[l] = f(part[l], ch[l]);
        }
    }
    let mut acc = cur;
    for p in part {
        acc = f(acc, p);
    }
    for &x in chunks.remainder() {
        acc = f(acc, x);
    }
    acc
}

fn fold_i(op: super::IOp, cur: i64, col: &[i64]) -> i64 {
    use super::IOp;
    match op {
        IOp::Add => tree_fold_i(cur, col, 0, |a, b| a.wrapping_add(b)),
        // Subtraction is not associative: the running difference must walk
        // the lanes in order.
        IOp::Sub => fold_slice(cur, col, |a, b| a.wrapping_sub(b)),
        IOp::Mul => tree_fold_i(cur, col, 1, |a, b| a.wrapping_mul(b)),
        IOp::Min => tree_fold_i(cur, col, i64::MAX, |a, b| a.min(b)),
        IOp::Max => tree_fold_i(cur, col, i64::MIN, |a, b| a.max(b)),
    }
}

impl Kernel {
    /// Accumulate the value (and key) columns of one generator over the
    /// active lanes; faults (from reducer blocks) are lane-tagged.
    fn baccumulate(
        &self,
        gi: usize,
        gen: &CGen,
        acc: &mut KAcc,
        bst: &mut BState,
        lanes: &Lanes,
    ) -> Result<(), (usize, EvalError)> {
        let res = gen.value.result;
        match acc {
            KAcc::Col(buf) => {
                match lanes {
                    Lanes::Full => match (buf, res.class) {
                        (ColBuf::I(v), Class::I) => {
                            v.extend_from_slice(&bst.ci[res.idx as usize][..BLOCK]);
                        }
                        (ColBuf::F(v), Class::F) => {
                            v.extend_from_slice(&bst.cf[res.idx as usize][..BLOCK]);
                        }
                        (ColBuf::B(v), Class::B) => {
                            v.extend_from_slice(&bst.cb[res.idx as usize][..BLOCK]);
                        }
                        _ => unreachable!("batched collect register class"),
                    },
                    Lanes::Sel(s) => {
                        for &l in s {
                            push_lane(buf, bst, res, l as usize);
                        }
                    }
                }
                Ok(())
            }
            KAcc::RedI(state) => {
                if let Some(FastRed::I(op)) = gen.fast_red {
                    let col = &bst.ci[res.idx as usize];
                    match lanes {
                        Lanes::Full => {
                            let col = &col[..BLOCK];
                            let (cur, start) = self.seed_i(gen, state.take(), col[0], bst);
                            *state = Some(fold_i(op, cur, &col[start..]));
                        }
                        Lanes::Sel(s) => {
                            if s.is_empty() {
                                return Ok(());
                            }
                            let (mut cur, start) =
                                self.seed_i(gen, state.take(), col[s[0] as usize], bst);
                            for &l in &s[start..] {
                                cur = apply_i(op, cur, col[l as usize]);
                            }
                            *state = Some(cur);
                        }
                    }
                    return Ok(());
                }
                each_lane(lanes, |l| {
                    let x = bst.ci[res.idx as usize][l];
                    let next = match state.take() {
                        Some(cur) => self.reduce_i(gen, cur, x, &mut bst.scalar)?,
                        None => match gen.init {
                            Some(r) => {
                                let i0 = bst.scalar.ri[r.idx as usize];
                                self.reduce_i(gen, i0, x, &mut bst.scalar)?
                            }
                            None => x,
                        },
                    };
                    *state = Some(next);
                    Ok(())
                })
            }
            KAcc::RedF(state) => {
                if let Some(FastRed::F(op)) = gen.fast_red {
                    // Float folds must stay in lane order: reassociating (or
                    // fusing) would change the bits vs the scalar loop.
                    let col = &bst.cf[res.idx as usize];
                    match lanes {
                        Lanes::Full => {
                            let col = &col[..BLOCK];
                            let (cur, start) = self.seed_f(gen, state.take(), col[0], bst);
                            *state = Some(fold_slice(cur, &col[start..], |a, b| apply_f(op, a, b)));
                        }
                        Lanes::Sel(s) => {
                            if s.is_empty() {
                                return Ok(());
                            }
                            let (mut cur, start) =
                                self.seed_f(gen, state.take(), col[s[0] as usize], bst);
                            for &l in &s[start..] {
                                cur = apply_f(op, cur, col[l as usize]);
                            }
                            *state = Some(cur);
                        }
                    }
                    return Ok(());
                }
                each_lane(lanes, |l| {
                    let x = bst.cf[res.idx as usize][l];
                    let next = match state.take() {
                        Some(cur) => self.reduce_f(gen, cur, x, &mut bst.scalar)?,
                        None => match gen.init {
                            Some(r) => {
                                let i0 = bst.scalar.rf[r.idx as usize];
                                self.reduce_f(gen, i0, x, &mut bst.scalar)?
                            }
                            None => x,
                        },
                    };
                    *state = Some(next);
                    Ok(())
                })
            }
            KAcc::RedB(state) => each_lane(lanes, |l| {
                let x = bst.cb[res.idx as usize][l];
                let next = match state.take() {
                    Some(cur) => self.reduce_b(gen, cur, x, &mut bst.scalar)?,
                    None => match gen.init {
                        Some(r) => {
                            let i0 = bst.scalar.rb[r.idx as usize];
                            self.reduce_b(gen, i0, x, &mut bst.scalar)?
                        }
                        None => x,
                    },
                };
                *state = Some(next);
                Ok(())
            }),
            KAcc::RedV(_) => unreachable!("batched reduce of V class"),
            KAcc::BCol { keys, vals } => {
                let kb = gen.key.as_ref().expect("bucket gen has key");
                let kres = kb.result;
                each_lane(lanes, |l| {
                    let slot = if kres.class == Class::I {
                        slot_dense(keys, &mut bst.dense[gi], bst.ci[kres.idx as usize][l])
                    } else {
                        keys.slot_of_value(&super::scalar_value(lane_scalar(bst, kres, l)))
                    };
                    match slot {
                        Ok(s) => push_lane(&mut vals[s], bst, res, l),
                        Err(_new) => {
                            let mut buf = ColBuf::new(gen.val_class, 1);
                            push_lane(&mut buf, bst, res, l);
                            vals.push(buf);
                        }
                    }
                    Ok(())
                })
            }
            KAcc::BRed { keys, vals } => {
                let kb = gen.key.as_ref().expect("bucket gen has key");
                let kres = kb.result;
                each_lane(lanes, |l| {
                    let slot = if kres.class == Class::I {
                        slot_dense(keys, &mut bst.dense[gi], bst.ci[kres.idx as usize][l])
                    } else {
                        keys.slot_of_value(&super::scalar_value(lane_scalar(bst, kres, l)))
                    };
                    match slot {
                        Ok(s) => match (&mut *vals, res.class) {
                            (RedBuf::I(v), Class::I) => {
                                let x = bst.ci[res.idx as usize][l];
                                v[s] = self.reduce_i(gen, v[s], x, &mut bst.scalar)?;
                            }
                            (RedBuf::F(v), Class::F) => {
                                let x = bst.cf[res.idx as usize][l];
                                v[s] = self.reduce_f(gen, v[s], x, &mut bst.scalar)?;
                            }
                            _ => {
                                let cur = vals.get(s);
                                let x = lane_scalar(bst, res, l);
                                let next = self.reduce_scalar(gen, cur, x, &mut bst.scalar)?;
                                vals.set(s, next)?;
                            }
                        },
                        Err(_new) => vals.push(lane_scalar(bst, res, l))?,
                    }
                    Ok(())
                })
            }
        }
    }

    /// Seed an integer fold exactly like the scalar loop: carry-over state,
    /// or the explicit identity combined with the first element, or the
    /// first element itself. Returns the seed and how many leading lanes it
    /// consumed.
    fn seed_i(&self, gen: &CGen, state: Option<i64>, x0: i64, bst: &BState) -> (i64, usize) {
        match state {
            Some(c) => (c, 0),
            None => match gen.init {
                Some(r) => {
                    let fr = match gen.fast_red {
                        Some(FastRed::I(op)) => op,
                        _ => unreachable!("seed_i on fast integer reducer"),
                    };
                    (apply_i(fr, bst.scalar.ri[r.idx as usize], x0), 1)
                }
                None => (x0, 1),
            },
        }
    }

    /// Float analogue of [`Kernel::seed_i`].
    fn seed_f(&self, gen: &CGen, state: Option<f64>, x0: f64, bst: &BState) -> (f64, usize) {
        match state {
            Some(c) => (c, 0),
            None => match gen.init {
                Some(r) => {
                    let fr = match gen.fast_red {
                        Some(FastRed::F(op)) => op,
                        _ => unreachable!("seed_f on fast float reducer"),
                    };
                    (apply_f(fr, bst.scalar.rf[r.idx as usize], x0), 1)
                }
                None => (x0, 1),
            },
        }
    }

    /// Run one generator over one full block. Returns this generator's
    /// earliest fault, if any; the caller picks the block-wide winner.
    fn exec_gen_block(
        &self,
        gi: usize,
        gen: &CGen,
        acc: &mut KAcc,
        bst: &mut BState,
        base: i64,
    ) -> Option<(usize, EvalError)> {
        let mut pend: Option<(usize, EvalError)> = None;
        let mut lanes = Lanes::Full;
        if let Some(c) = &gen.cond {
            if let Some(x) = self.run_cblock_batched(c, bst, base, &mut lanes) {
                pend = Some(x);
            }
            let col = &bst.cb[c.result.idx as usize];
            let sel: Vec<u32> = match &lanes {
                // Branch-free cursor compaction: write every lane id at the
                // cursor, advance the cursor by the condition bit. No
                // per-lane branch, so the dense full-block case compacts at
                // memory speed regardless of the predicate's selectivity.
                Lanes::Full => {
                    let col = &col[..BLOCK];
                    let mut sel = vec![0u32; BLOCK];
                    let mut n = 0usize;
                    for (l, &keep) in col.iter().enumerate() {
                        sel[n] = l as u32;
                        n += keep as usize;
                    }
                    sel.truncate(n);
                    sel
                }
                Lanes::Sel(s) => s.iter().copied().filter(|&l| col[l as usize]).collect(),
            };
            lanes = Lanes::Sel(sel);
        }
        if !lanes.is_empty() {
            if let Some(x) = self.run_cblock_batched(&gen.value, bst, base, &mut lanes) {
                pend = Some(x);
            }
            if let Some(kb) = &gen.key {
                if let Some(x) = self.run_cblock_batched(kb, bst, base, &mut lanes) {
                    pend = Some(x);
                }
            }
            if let Err(x) = self.baccumulate(gi, gen, acc, bst, &lanes) {
                pend = Some(x);
            }
        }
        pend
    }

    /// Execute all generators over the full block starting at `base`. The
    /// stage-truncation inside each generator guarantees a later stage's
    /// fault has a strictly smaller lane, so per-generator the last recorded
    /// fault is the earliest; across generators the winner is the minimum
    /// by (lane, generator index) — generator order breaks lane ties because
    /// the scalar loop runs generators in order within one element.
    fn exec_block_batched(
        &self,
        bst: &mut BState,
        accs: &mut [KAcc],
        base: i64,
    ) -> Result<(), EvalError> {
        let mut pend: Option<(usize, EvalError)> = None;
        for (gi, (gen, acc)) in self.gens.iter().zip(accs.iter_mut()).enumerate() {
            if let Some((lane, e)) = self.exec_gen_block(gi, gen, acc, bst, base) {
                if pend.as_ref().is_none_or(|(pl, _)| lane < *pl) {
                    pend = Some((lane, e));
                }
            }
        }
        match pend {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Run the top-level generators over `[start, end)` block-at-a-time,
    /// with the final `len % BLOCK` elements on the scalar tail. Returns the
    /// same raw accumulators as [`Kernel::run_range`], bit-identically.
    pub(crate) fn run_range_batched(
        &self,
        bst: &mut BState,
        start: i64,
        end: i64,
    ) -> Result<Vec<KAcc>, EvalError> {
        for d in bst.dense.iter_mut() {
            d.epoch += 1;
        }
        let hint = (end - start).max(0) as usize;
        let mut accs: Vec<KAcc> = self.gens.iter().map(|g| KAcc::for_gen(g, hint)).collect();
        let mut blocks = 0u64;
        let mut i = start;
        while i + (BLOCK as i64) <= end {
            self.exec_block_batched(bst, &mut accs, i)?;
            blocks += 1;
            i += BLOCK as i64;
        }
        let tail = (end - i).max(0) as u64;
        if i < end {
            self.exec_gens(&self.gens, &mut accs, &mut bst.scalar, i, end)?;
        }
        stats::record_batched_range(blocks, tail);
        stats::record_simd_blocks(std::mem::take(&mut bst.simd_blocks));
        stats::record_segmented_blocks(std::mem::take(&mut bst.segmented_blocks));
        Ok(accs)
    }
}
