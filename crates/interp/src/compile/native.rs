//! Native-tier glue: emit a certified kernel as C++, compile and `dlopen`
//! it (via `dmll_codegen::native`), and marshal kernel invocations across
//! the `extern "C"` SoA-pointer ABI.
//!
//! The native tier is a strict subset of the batched tier: a kernel is
//! offered to it only when already batch-certified, and every failure —
//! ineligible construct, missing compiler, or a runtime fault signalled by
//! the entry's nonzero return — degrades to the batched executor, which is
//! semantically complete and reproduces the exact error or panic the
//! interpreter defines. Results on the success path are bit-identical by
//! construction: the emitter mirrors the interpreter's scalar semantics
//! operation for operation (wrapping integer arithmetic, checked division,
//! bit-exact float constants, saturating casts) and declines anything it
//! cannot mirror (transcendental libm calls, float min/max tie-breaking).
//!
//! Caching: the compiled shared object lives in a `OnceLock` on the
//! [`Kernel`], so the kernel LRU cache (keyed by structural hash + rewrite
//! fingerprint + environment refinement) owns the `dlopen` handle; evicting
//! the kernel drops the library.

use super::{Class, ColBuf, KAcc, KeyIx, Kernel, RedBuf};
use crate::eval::Env;
use crate::stats;
use crate::value::{ArrayVal, Value};
use dmll_codegen::{
    emit_kernel_entry, NativeArr, NativeGenOut, NativeIneligible, NativeLib, NativeVarTy,
};
use dmll_core::gen::GenKind;
use dmll_core::{Multiloop, Sym};
use std::collections::HashMap;
use std::time::Instant;

/// Symbol name of the emitted entry point. Fixed across kernels: each
/// shared object is loaded with its own local handle and resolved through
/// it, so names never collide.
const ENTRY_NAME: &str = "dmll_kernel_entry";

/// A ready-to-run native kernel: the loaded library plus the marshaling
/// plan for its free variables.
#[derive(Debug)]
pub(crate) struct NativeEntry {
    lib: NativeLib,
    /// Free-variable ABI types, in `Kernel::free` order — the same order
    /// the emitter assigned per-class argument indices in.
    vars: Vec<NativeVarTy>,
}

/// Classify one environment value at the ABI boundary.
fn classify(v: &Value) -> Option<NativeVarTy> {
    match v {
        Value::I64(_) => Some(NativeVarTy::I64),
        Value::F64(_) => Some(NativeVarTy::F64),
        Value::Bool(_) => Some(NativeVarTy::Bool),
        Value::Arr(ArrayVal::I64(_)) => Some(NativeVarTy::ArrI64),
        Value::Arr(ArrayVal::F64(_)) => Some(NativeVarTy::ArrF64),
        Value::Arr(ArrayVal::Bool(_)) => Some(NativeVarTy::ArrBool),
        _ => None,
    }
}

/// Typed per-generator output storage for one native call.
enum ColStore {
    I(Vec<i64>),
    F(Vec<f64>),
    B(Vec<u8>),
}

impl ColStore {
    fn with_capacity(class: Class, cap: usize) -> Option<ColStore> {
        Some(match class {
            Class::I => ColStore::I(Vec::with_capacity(cap)),
            Class::F => ColStore::F(Vec::with_capacity(cap)),
            Class::B => ColStore::B(Vec::with_capacity(cap)),
            Class::V => return None,
        })
    }

    fn ptr(&mut self) -> *mut std::ffi::c_void {
        match self {
            ColStore::I(v) => v.as_mut_ptr().cast(),
            ColStore::F(v) => v.as_mut_ptr().cast(),
            ColStore::B(v) => v.as_mut_ptr().cast(),
        }
    }

    /// Adopt `count` elements the native kernel wrote into the spare
    /// capacity. Sound: the entry writes at most one element per loop
    /// iteration (≤ capacity) and the count is clamped besides.
    fn adopt(self, count: usize) -> ColBuf {
        match self {
            ColStore::I(mut v) => {
                unsafe { v.set_len(count.min(v.capacity())) };
                ColBuf::I(v)
            }
            ColStore::F(mut v) => {
                unsafe { v.set_len(count.min(v.capacity())) };
                ColBuf::F(v)
            }
            ColStore::B(mut v) => {
                unsafe { v.set_len(count.min(v.capacity())) };
                ColBuf::B(v.into_iter().map(|b| b != 0).collect())
            }
        }
    }

    fn adopt_red(self, count: usize) -> RedBuf {
        match self.adopt(count) {
            ColBuf::I(v) => RedBuf::I(v),
            ColBuf::F(v) => RedBuf::F(v),
            ColBuf::B(v) => RedBuf::B(v),
            ColBuf::V(v) => RedBuf::V(v),
        }
    }
}

enum GenBufs {
    Col(ColStore),
    Red,
    BRed {
        keys: Vec<i64>,
        vals: ColStore,
        table: Vec<u32>,
    },
}

impl Kernel {
    /// The native entry for this kernel, compiled on first request.
    /// `Err` is the cached typed decline; callers count it per invocation
    /// so fallback reasons stay visible after stats resets.
    pub(crate) fn native_entry(
        &self,
        ml: &Multiloop,
        env: &Env,
    ) -> Result<&NativeEntry, &NativeIneligible> {
        self.native
            .get_or_init(|| self.build_native(ml, env))
            .as_ref()
    }

    fn build_native(&self, ml: &Multiloop, env: &Env) -> Result<NativeEntry, NativeIneligible> {
        // Cross-check against the scalar compiler's authoritative view
        // before emitting: generator kinds and value classes drive the
        // caller-side buffer allocation, so anything the emitter would have
        // to guess about is declined here.
        for gen in &self.gens {
            match gen.kind {
                GenKind::BucketCollect => return Err(NativeIneligible::BucketCollect),
                GenKind::BucketReduce if !gen.key_typed => {
                    return Err(NativeIneligible::UntypedBucketKey)
                }
                _ => {}
            }
            if gen.val_class == Class::V {
                return Err(NativeIneligible::NonScalarValue);
            }
        }
        let mut vars: Vec<(Sym, NativeVarTy)> = Vec::with_capacity(self.free.len());
        for (sym, _reg) in &self.free {
            let v = env
                .get(sym.0 as usize)
                .and_then(|s| s.as_ref())
                .ok_or(NativeIneligible::UnsupportedFreeVar)?;
            let vty = classify(v).ok_or(NativeIneligible::UnsupportedFreeVar)?;
            vars.push((*sym, vty));
        }
        let source = emit_kernel_entry(ml, &vars, ENTRY_NAME)?;
        let t0 = Instant::now();
        let lib = dmll_codegen::compile_and_load(&source, ENTRY_NAME)?;
        stats::record_native_compile(t0.elapsed());
        Ok(NativeEntry {
            lib,
            vars: vars.into_iter().map(|(_, t)| t).collect(),
        })
    }

    /// Run `[start, end)` through the loaded native entry. `None` means the
    /// kernel signalled a runtime fault (division by zero, out-of-bounds
    /// read, overflow edge case) or the environment stopped matching the
    /// compiled marshaling plan; the caller re-runs the range on the
    /// batched tier, which reproduces the interpreter's exact outcome.
    pub(crate) fn run_range_native(
        &self,
        entry: &NativeEntry,
        env: &Env,
        start: i64,
        end: i64,
    ) -> Option<Vec<KAcc>> {
        // Marshal free variables in `free` order; per-class indices line up
        // with the emitter's assignment by construction.
        let mut si: Vec<i64> = Vec::new();
        let mut sf: Vec<f64> = Vec::new();
        let mut sb: Vec<u8> = Vec::new();
        let mut arrs: Vec<NativeArr> = Vec::new();
        for ((sym, _reg), vty) in self.free.iter().zip(&entry.vars) {
            let v = env.get(sym.0 as usize).and_then(|s| s.as_ref());
            let ok = match (v, vty) {
                (Some(Value::I64(x)), NativeVarTy::I64) => {
                    si.push(*x);
                    true
                }
                (Some(Value::F64(x)), NativeVarTy::F64) => {
                    sf.push(*x);
                    true
                }
                (Some(Value::Bool(x)), NativeVarTy::Bool) => {
                    sb.push(u8::from(*x));
                    true
                }
                (Some(Value::Arr(ArrayVal::I64(a))), NativeVarTy::ArrI64) => {
                    arrs.push(NativeArr {
                        ptr: a.as_ptr().cast(),
                        len: a.len() as i64,
                    });
                    true
                }
                (Some(Value::Arr(ArrayVal::F64(a))), NativeVarTy::ArrF64) => {
                    arrs.push(NativeArr {
                        ptr: a.as_ptr().cast(),
                        len: a.len() as i64,
                    });
                    true
                }
                (Some(Value::Arr(ArrayVal::Bool(a))), NativeVarTy::ArrBool) => {
                    // `bool` is one byte, 0 or 1: reading it as `u8` from C
                    // is sound.
                    arrs.push(NativeArr {
                        ptr: a.as_ptr() as *const std::ffi::c_void,
                        len: a.len() as i64,
                    });
                    true
                }
                _ => false,
            };
            if !ok {
                stats::record_native_fallback("marshal_mismatch");
                return None;
            }
        }

        let n = (end - start).max(0) as usize;
        let table_cap = (2 * n.max(1)).next_power_of_two().max(16);
        let mut bufs: Vec<GenBufs> = Vec::with_capacity(self.gens.len());
        let mut outs: Vec<NativeGenOut> = Vec::with_capacity(self.gens.len());
        for gen in &self.gens {
            let mut out = NativeGenOut {
                out: std::ptr::null_mut(),
                keys: std::ptr::null_mut(),
                table: std::ptr::null_mut(),
                table_cap: 0,
                count: 0,
                ival: 0,
                fval: 0.0,
                bval: 0,
            };
            let b = match gen.kind {
                GenKind::Collect => {
                    let mut store = ColStore::with_capacity(gen.val_class, n)?;
                    out.out = store.ptr();
                    GenBufs::Col(store)
                }
                GenKind::Reduce => GenBufs::Red,
                GenKind::BucketReduce => {
                    let mut keys: Vec<i64> = Vec::with_capacity(n.max(1));
                    let mut vals = ColStore::with_capacity(gen.val_class, n.max(1))?;
                    let mut table = vec![u32::MAX; table_cap];
                    out.keys = keys.as_mut_ptr();
                    out.out = vals.ptr();
                    out.table = table.as_mut_ptr();
                    out.table_cap = table_cap as i64;
                    GenBufs::BRed { keys, vals, table }
                }
                GenKind::BucketCollect => return None,
            };
            bufs.push(b);
            outs.push(out);
        }

        let f = entry.lib.entry();
        let rc = unsafe {
            f(
                start,
                end,
                si.as_ptr(),
                sf.as_ptr(),
                sb.as_ptr(),
                arrs.as_ptr(),
                outs.as_mut_ptr(),
            )
        };
        if rc != 0 {
            stats::record_native_fallback("runtime_fault");
            return None;
        }

        let mut accs = Vec::with_capacity(self.gens.len());
        for ((gen, buf), out) in self.gens.iter().zip(bufs).zip(&outs) {
            let count = out.count.clamp(0, n as i64) as usize;
            let acc = match buf {
                GenBufs::Col(store) => KAcc::Col(store.adopt(count)),
                GenBufs::Red => {
                    if out.count == 0 {
                        match gen.val_class {
                            Class::I => KAcc::RedI(None),
                            Class::F => KAcc::RedF(None),
                            Class::B => KAcc::RedB(None),
                            Class::V => return None,
                        }
                    } else {
                        match gen.val_class {
                            Class::I => KAcc::RedI(Some(out.ival)),
                            Class::F => KAcc::RedF(Some(out.fval)),
                            Class::B => KAcc::RedB(Some(out.bval != 0)),
                            Class::V => return None,
                        }
                    }
                }
                GenBufs::BRed {
                    mut keys,
                    vals,
                    table: _table,
                } => {
                    unsafe { keys.set_len(count.min(keys.capacity())) };
                    let ix: HashMap<i64, usize> =
                        keys.iter().enumerate().map(|(s, k)| (*k, s)).collect();
                    KAcc::BRed {
                        keys: KeyIx::I { keys, ix },
                        vals: vals.adopt_red(count),
                    }
                }
            };
            accs.push(acc);
        }
        Some(accs)
    }
}
