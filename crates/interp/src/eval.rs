//! The sequential evaluator: a direct implementation of Figure 2.

use crate::error::EvalError;
use crate::value::{ArrayVal, BucketsVal, Key, StructVal, Value};
use crate::{compile, fuse, stats};
use dmll_core::{Block, Const, Def, Exp, Gen, MathFn, Multiloop, PrimOp, Program};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// A handler for [`Def::Extern`] operations.
pub type ExternFn = Arc<dyn Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync>;

/// A named registry of [`ExternFn`] handlers, shared between the
/// sequential interpreter, the compiled kernel tiers (which resolve
/// handlers by name when a kernel state is built), and the parallel
/// executor.
#[derive(Clone, Default)]
pub struct Externs(HashMap<String, ExternFn>);

impl Externs {
    /// An empty registry.
    pub fn new() -> Externs {
        Externs(HashMap::new())
    }

    /// Register a handler under `name` (replacing any previous one).
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    ) {
        self.0.insert(name.into(), Arc::new(f));
    }

    pub(crate) fn insert_fn(&mut self, name: String, f: ExternFn) {
        self.0.insert(name, f);
    }

    pub(crate) fn get(&self, name: &str) -> Option<&ExternFn> {
        self.0.get(name)
    }
}

impl std::fmt::Debug for Externs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.0.keys()).finish()
    }
}

/// Enforce an extern's declared scalar return type at the call site, so
/// every tier (tree-walker, scalar kernel, batched kernel) raises the same
/// error for a handler that violates its declaration. Non-scalar
/// declarations are not checked: the walker stores whatever the handler
/// returned, and the compiler declines such externs anyway.
pub(crate) fn check_extern_ret(
    name: &str,
    ret: &dmll_core::Ty,
    v: &Value,
) -> Result<(), EvalError> {
    let ok = match ret {
        dmll_core::Ty::I64 => matches!(v, Value::I64(_)),
        dmll_core::Ty::F64 => matches!(v, Value::F64(_)),
        dmll_core::Ty::Bool => matches!(v, Value::Bool(_)),
        _ => true,
    };
    if ok {
        Ok(())
    } else {
        Err(EvalError::TypeMismatch(format!(
            "extern {name} returned {v:?} but declares {ret}"
        )))
    }
}

/// An interpreter instance bound to one program.
pub struct Interp<'p> {
    program: &'p Program,
    externs: Externs,
    /// Whether top-level multiloops may run on the compiled kernel tier.
    /// Loops the compiler rejects fall back to the tree-walker either way.
    use_compiled: bool,
    /// Whether batchable kernels may run block-at-a-time. Off means every
    /// compiled loop uses the scalar bytecode loop (benches use this to
    /// isolate the batched tier's contribution).
    use_batched: bool,
    /// Whether certified kernels may run on the native (compiled C) tier.
    /// Off by default: the native tier needs a system C++ compiler and is
    /// opted into explicitly; ineligible or uncompilable loops fall back to
    /// the batched tier with a typed, counted reason.
    use_native: bool,
    /// Kernel cache used by the compiled tier; `None` = the process-global
    /// default store.
    kernel_cache: Option<crate::KernelCacheHandle>,
    /// Whether to run the fuse-then-compile rewrite before execution.
    fuse: bool,
    /// Rewrite fingerprint of `program` (0 = as-written / identity rewrite).
    /// Participates in kernel-cache keys so fused and unfused variants of a
    /// loop never share an entry.
    fuse_fingerprint: u64,
    /// Per-instance memo of the fusion outcome. Sound because `program` is
    /// borrowed immutably for this interpreter's whole lifetime — repeat
    /// `run` calls on one `Interp` skip even the global memo's hash lookup.
    fused_memo: std::sync::OnceLock<Arc<fuse::FusedProgram>>,
}

/// Per-run execution-tier accounting: how many top-level multiloops ran on
/// each tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Top-level loops executed as compiled kernels.
    pub compiled_loops: u64,
    /// Top-level loops executed by the tree-walker.
    pub treewalk_loops: u64,
}

/// Environment: one slot per symbol. Symbols are globally unique within a
/// program, so a flat vector indexed by symbol id is both simple and fast.
pub(crate) type Env = Vec<Option<Value>>;

impl<'p> Interp<'p> {
    /// Create an interpreter for `program`.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            externs: Externs::new(),
            use_compiled: true,
            use_batched: true,
            use_native: false,
            kernel_cache: None,
            fuse: true,
            fuse_fingerprint: 0,
            fused_memo: std::sync::OnceLock::new(),
        }
    }

    /// Compile kernels through `cache` instead of the process-global store
    /// (long-lived services inject a shared cache so concurrent queries
    /// reuse each other's compiles and hit rates are observable per view).
    pub fn with_kernel_cache(mut self, cache: crate::KernelCacheHandle) -> Self {
        self.kernel_cache = Some(cache);
        self
    }

    /// Disable the compiled kernel tier: every loop tree-walks. Benches use
    /// this to measure the baseline; differential tests use it as the
    /// reference semantics.
    pub fn without_compiled_tier(mut self) -> Self {
        self.use_compiled = false;
        self
    }

    /// Keep the compiled tier but force the scalar (element-at-a-time)
    /// bytecode loop, never the batched executor.
    pub fn without_batched_tier(mut self) -> Self {
        self.use_batched = false;
        self
    }

    /// Enable the native tier: certified batchable kernels are lowered to
    /// C, compiled with the system C++ compiler, and `dlopen`ed. Loops that
    /// fail certification or compilation fall back to the batched tier
    /// with a typed, counted reason — never an error.
    pub fn with_native(mut self) -> Self {
        self.use_native = true;
        self
    }

    /// Skip the fuse-then-compile rewrite: execute the program exactly as
    /// written. Benches use this to measure the unfused tiers; differential
    /// tests use it to pin fused against unfused results.
    pub fn without_fusion(mut self) -> Self {
        self.fuse = false;
        self
    }

    /// Register a handler for an extern operation.
    pub fn with_extern(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    ) -> Self {
        self.externs.insert(name, f);
        self
    }

    /// Install a whole extern registry (replacing the current one). The
    /// parallel executor and benches use this to thread a shared registry
    /// into worker interpreters.
    pub fn with_externs(mut self, externs: Externs) -> Self {
        self.externs = externs;
        self
    }

    /// The extern registry this interpreter resolves [`Def::Extern`] calls
    /// against.
    pub(crate) fn externs(&self) -> &Externs {
        &self.externs
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Bind this interpreter to an already-fused program: skip the rewrite
    /// hook and key kernels under `fingerprint`. The parallel executor does
    /// its own program swap and uses this to thread the fingerprint through.
    pub(crate) fn with_fuse_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fuse = false;
        self.fuse_fingerprint = fingerprint;
        self
    }

    /// The rewrite fingerprint kernels are keyed under (0 = as-written).
    pub(crate) fn fuse_fingerprint(&self) -> u64 {
        self.fuse_fingerprint
    }

    /// Run the program with named inputs, returning its result value.
    ///
    /// # Errors
    ///
    /// Fails when an input is missing or evaluation raises (out-of-bounds
    /// read, empty reduce without identity, unknown extern, …).
    pub fn run(&self, inputs: &[(&str, Value)]) -> Result<Value, EvalError> {
        self.run_report(inputs).map(|(v, _)| v)
    }

    /// Like [`Interp::run`], also reporting which execution tier each
    /// top-level multiloop ran on.
    ///
    /// # Errors
    ///
    /// See [`Interp::run`].
    pub fn run_report(&self, inputs: &[(&str, Value)]) -> Result<(Value, RunReport), EvalError> {
        if self.fuse {
            let fused = self
                .fused_memo
                .get_or_init(|| fuse::fused_program(self.program))
                .clone();
            stats::record_fusion(fused.applied, fused.rejected);
            if let Some(fp) = &fused.program {
                // Delegate to a sub-interpreter bound to the fused body,
                // carrying the fingerprint into kernel-cache keys.
                let sub = Interp {
                    program: fp,
                    externs: self.externs.clone(),
                    use_compiled: self.use_compiled,
                    use_batched: self.use_batched,
                    use_native: self.use_native,
                    kernel_cache: self.kernel_cache.clone(),
                    fuse: false,
                    fuse_fingerprint: fused.fingerprint,
                    fused_memo: std::sync::OnceLock::new(),
                };
                // Rewrites preserve values but can shift *which* error a
                // faulting program raises (e.g. Conditional Reduce turns
                // an empty-cluster EmptyReduce into a MissingBucket).
                // On error, re-running the program as written keeps error
                // identity exact, and costs nothing on the non-error path.
                if let ok @ Ok(_) = sub.run_report(inputs) {
                    return ok;
                }
            }
        }
        let mut env: Env = vec![None; self.program.next_sym_id() as usize];
        for input in &self.program.inputs {
            let v = inputs
                .iter()
                .find(|(n, _)| *n == input.name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| EvalError::MissingInput(input.name.clone()))?;
            env[input.sym.0 as usize] = Some(v);
        }
        let mut report = RunReport::default();
        let b = &self.program.body;
        for stmt in &b.stmts {
            let vals = match &stmt.def {
                Def::Loop(ml) => self.eval_top_loop(ml, &mut env, &mut report)?,
                d => self.eval_def_internal(d, &mut env)?,
            };
            debug_assert_eq!(vals.len(), stmt.lhs.len());
            for (s, v) in stmt.lhs.iter().zip(vals) {
                env[s.0 as usize] = Some(v);
            }
        }
        let out = self.eval_exp(&b.result, &env)?;
        Ok((out, report))
    }

    /// Evaluate a top-level multiloop on the fastest applicable tier.
    /// Nested loops run inside whichever tier owns the enclosing loop.
    fn eval_top_loop(
        &self,
        ml: &Multiloop,
        env: &mut Env,
        report: &mut RunReport,
    ) -> Result<Vec<Value>, EvalError> {
        let (vals, compiled) =
            self.eval_loop_tiered(ml, env, self.use_compiled, self.use_batched, self.use_native)?;
        if compiled {
            report.compiled_loops += 1;
        } else {
            report.treewalk_loops += 1;
        }
        Ok(vals)
    }

    /// Run one top-level multiloop over its full range, compiled when
    /// `use_compiled` and the loop compiles, tree-walking otherwise. The
    /// returned flag says which tier ran. Shared with the parallel
    /// executor's small-loop path.
    pub(crate) fn eval_loop_tiered(
        &self,
        ml: &Multiloop,
        env: &mut Env,
        use_compiled: bool,
        use_batched: bool,
        use_native: bool,
    ) -> Result<(Vec<Value>, bool), EvalError> {
        if use_compiled {
            let kernel = match &self.kernel_cache {
                Some(cache) => cache.kernel_for(ml, env, self.fuse_fingerprint),
                None => compile::kernel_for(ml, env, self.fuse_fingerprint),
            };
            if let Some(kernel) = kernel {
                let size = self
                    .eval_exp(&ml.size, env)?
                    .as_i64()
                    .ok_or_else(|| EvalError::TypeMismatch("loop size".into()))?;
                let t0 = Instant::now();
                // Native tier: only offered batch-certified loops, so a
                // runtime fault (or decline) always has the batched path
                // below to land on.
                if use_native && use_batched && kernel.batchable {
                    match kernel.native_entry(ml, env) {
                        Ok(entry) => {
                            if let Some(accs) = kernel.run_range_native(entry, env, 0, size) {
                                let mut st = kernel.new_state(env, &self.externs)?;
                                let vals = kernel.seal_values(accs, &mut st)?;
                                let dt = t0.elapsed();
                                stats::record_native(size.max(0) as u64, dt);
                                stats::record_compiled(size.max(0) as u64, dt);
                                return Ok((vals, true));
                            }
                            // Fault: fall through to batched, which
                            // reproduces the interpreter's exact outcome.
                        }
                        Err(reason) => stats::record_native_fallback(reason.key()),
                    }
                }
                let vals = if use_batched && kernel.batchable {
                    let mut bst = kernel.new_batched_state(env, &self.externs)?;
                    let accs = kernel.run_range_batched(&mut bst, 0, size)?;
                    let vals = kernel.seal_values(accs, &mut bst.scalar)?;
                    stats::record_batched(size.max(0) as u64, t0.elapsed());
                    vals
                } else {
                    if use_batched {
                        if let Some(reason) = kernel.batch_reject {
                            stats::record_batch_ineligible(reason);
                        }
                    }
                    let mut st = kernel.new_state(env, &self.externs)?;
                    let accs = kernel.run_range(&mut st, 0, size)?;
                    kernel.seal_values(accs, &mut st)?
                };
                stats::record_compiled(size.max(0) as u64, t0.elapsed());
                return Ok((vals, true));
            }
        }
        let elements = self
            .eval_exp(&ml.size, env)
            .ok()
            .and_then(|v| v.as_i64())
            .map_or(0, |s| s.max(0) as u64);
        let t0 = Instant::now();
        let vals = self.eval_loop(ml, env, 0, None)?;
        stats::record_treewalk(elements, t0.elapsed());
        Ok((vals, false))
    }

    pub(crate) fn eval_block(
        &self,
        b: &Block,
        args: &[Value],
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        debug_assert_eq!(b.params.len(), args.len());
        for (p, a) in b.params.iter().zip(args) {
            env[p.0 as usize] = Some(a.clone());
        }
        match self.drive(Frame::Block(BlockFrame { block: b, si: 0 }), env)? {
            Driven::Value(v) => Ok(v),
            Driven::Accs(_) => unreachable!("root block yields a value"),
        }
    }

    pub(crate) fn eval_exp(&self, e: &Exp, env: &Env) -> Result<Value, EvalError> {
        match e {
            Exp::Const(c) => Ok(const_value(c)),
            Exp::Sym(s) => env[s.0 as usize]
                .clone()
                .ok_or_else(|| EvalError::TypeMismatch(format!("unset symbol {s}"))),
        }
    }

    pub(crate) fn eval_def_internal(
        &self,
        d: &Def,
        env: &mut Env,
    ) -> Result<Vec<Value>, EvalError> {
        let one = |v: Value| Ok(vec![v]);
        match d {
            Def::Prim { op, args } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval_exp(a, env)?);
                }
                one(eval_prim(*op, &vs)?)
            }
            Def::Math { f, arg } => {
                let v = self.eval_exp(arg, env)?;
                let x = v
                    .as_f64()
                    .ok_or_else(|| EvalError::TypeMismatch("math on non-float".into()))?;
                one(Value::F64(eval_math(*f, x)))
            }
            Def::Cast { to, value } => {
                let v = self.eval_exp(value, env)?;
                one(match (to, v) {
                    (dmll_core::Ty::F64, Value::I64(i)) => Value::F64(i as f64),
                    (dmll_core::Ty::F64, Value::F64(f)) => Value::F64(f),
                    (dmll_core::Ty::I64, Value::F64(f)) => Value::I64(f as i64),
                    (dmll_core::Ty::I64, Value::I64(i)) => Value::I64(i),
                    (t, v) => return Err(EvalError::TypeMismatch(format!("cast {v:?} to {t}"))),
                })
            }
            Def::ArrayLen(e) => {
                let v = self.eval_exp(e, env)?;
                let a = v
                    .as_arr()
                    .ok_or_else(|| EvalError::TypeMismatch("len of non-array".into()))?;
                one(Value::I64(a.len() as i64))
            }
            Def::ArrayRead { arr, index } => {
                let av = self.eval_exp(arr, env)?;
                let iv = self.eval_exp(index, env)?;
                one(read_array(&av, &iv)?)
            }
            Def::TupleNew(es) => {
                let mut vs = Vec::with_capacity(es.len());
                for e in es {
                    vs.push(self.eval_exp(e, env)?);
                }
                one(Value::Tuple(Arc::new(vs)))
            }
            Def::TupleGet { tuple, index } => {
                let v = self.eval_exp(tuple, env)?;
                match v {
                    Value::Tuple(vs) => vs
                        .get(*index)
                        .cloned()
                        .map(|v| vec![v])
                        .ok_or_else(|| EvalError::TypeMismatch("tuple index".into())),
                    other => Err(EvalError::TypeMismatch(format!(
                        "tuple projection from {other:?}"
                    ))),
                }
            }
            Def::StructNew { ty, fields } => {
                let mut vs = Vec::with_capacity(fields.len());
                for e in fields {
                    vs.push(self.eval_exp(e, env)?);
                }
                one(Value::Struct(Arc::new(StructVal {
                    ty: Arc::new(ty.clone()),
                    fields: vs,
                })))
            }
            Def::StructGet { obj, field } => {
                let v = self.eval_exp(obj, env)?;
                match v {
                    Value::Struct(s) => s
                        .field(field)
                        .cloned()
                        .map(|v| vec![v])
                        .ok_or_else(|| EvalError::TypeMismatch(format!("no field {field}"))),
                    other => Err(EvalError::TypeMismatch(format!(
                        "field read from {other:?}"
                    ))),
                }
            }
            Def::Flatten(e) => {
                let v = self.eval_exp(e, env)?;
                let outer = v
                    .as_arr()
                    .ok_or_else(|| EvalError::TypeMismatch("flatten of non-array".into()))?;
                let mut out = Vec::new();
                for i in 0..outer.len() {
                    let inner = outer.get(i).expect("in range");
                    let inner = inner
                        .as_arr()
                        .ok_or_else(|| EvalError::TypeMismatch("flatten of non-nested".into()))?;
                    for j in 0..inner.len() {
                        out.push(inner.get(j).expect("in range"));
                    }
                }
                one(Value::Arr(seal_array(out)))
            }
            Def::BucketValues(e) => {
                let v = self.eval_exp(e, env)?;
                match v {
                    Value::Buckets(b) => one(Value::Arr(seal_array(b.vals.clone()))),
                    other => Err(EvalError::TypeMismatch(format!(
                        "bucketValues of {other:?}"
                    ))),
                }
            }
            Def::BucketKeys(e) => {
                let v = self.eval_exp(e, env)?;
                match v {
                    Value::Buckets(b) => one(Value::Arr(seal_array(b.keys.clone()))),
                    other => Err(EvalError::TypeMismatch(format!("bucketKeys of {other:?}"))),
                }
            }
            Def::BucketLen(e) => {
                let v = self.eval_exp(e, env)?;
                match v {
                    Value::Buckets(b) => one(Value::I64(b.len() as i64)),
                    other => Err(EvalError::TypeMismatch(format!("bucketLen of {other:?}"))),
                }
            }
            Def::BucketGet {
                buckets,
                key,
                default,
            } => {
                let bv = self.eval_exp(buckets, env)?;
                let kv = self.eval_exp(key, env)?;
                match bv {
                    Value::Buckets(b) => match b.get(&kv) {
                        Some(v) => one(v.clone()),
                        None => match default {
                            Some(d) => one(self.eval_exp(d, env)?),
                            None => Err(EvalError::MissingBucket(kv.to_string())),
                        },
                    },
                    other => Err(EvalError::TypeMismatch(format!("bucketGet of {other:?}"))),
                }
            }
            Def::Loop(ml) => self.eval_loop(ml, env, 0, None),
            Def::Extern {
                name, args, ret, ..
            } => {
                let f = self
                    .externs
                    .get(name)
                    .ok_or_else(|| EvalError::UnknownExtern(name.clone()))?
                    .clone();
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval_exp(a, env)?);
                }
                let v = f(&vs)?;
                check_extern_ret(name, ret, &v)?;
                one(v)
            }
        }
    }

    /// Evaluate a multiloop over `[start, end)` where `end` defaults to the
    /// loop's size. Sub-range evaluation is what the hierarchical runtime
    /// uses to split loops over hardware resources.
    pub(crate) fn eval_loop(
        &self,
        ml: &Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Value>, EvalError> {
        let accs = self.eval_loop_accs(ml, env, start, end)?;
        ml.gens
            .iter()
            .zip(accs)
            .map(|(gen, acc)| self.seal_acc(gen, acc, env))
            .collect()
    }

    /// Evaluate a multiloop over a sub-range, returning the raw per-generator
    /// accumulators (unsealed). The parallel executor merges accumulators
    /// from several sub-ranges before sealing.
    pub(crate) fn eval_loop_accs(
        &self,
        ml: &Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Acc>, EvalError> {
        let root = self.loop_frame(ml, env, start, end, None)?;
        match self.drive(Frame::Loop(root), env)? {
            Driven::Accs(accs) => Ok(accs),
            Driven::Value(_) => unreachable!("root loop yields accumulators"),
        }
    }

    /// Build a suspended frame for one multiloop activation, evaluating its
    /// size bound eagerly (exactly where the recursive walker evaluated it).
    fn loop_frame<'a>(
        &self,
        ml: &'a Multiloop,
        env: &Env,
        start: i64,
        end: Option<i64>,
        lhs: Option<&'a [dmll_core::Sym]>,
    ) -> Result<LoopFrame<'a>, EvalError> {
        let size = self
            .eval_exp(&ml.size, env)?
            .as_i64()
            .ok_or_else(|| EvalError::TypeMismatch("loop size".into()))?;
        let end = end.unwrap_or(size).min(size);
        Ok(LoopFrame {
            ml,
            lhs,
            i: start,
            end,
            gi: 0,
            accs: ml.gens.iter().map(Acc::for_gen).collect(),
            phase: Phase::NextGen,
        })
    }

    /// The stackless driver: runs the frame machine to completion starting
    /// from `root`. Loop nesting lives on the explicit frame stack — only
    /// straight-line work (expressions, non-loop defs) touches the native
    /// stack — so IR depth is bounded by the heap, not by thread stack size.
    fn drive<'a>(&self, root: Frame<'a>, env: &mut Env) -> Result<Driven, EvalError> {
        let mut frames: Vec<Frame<'a>> = vec![root];
        // Results of completed sub-blocks, consumed by the loop frame that
        // pushed them.
        let mut vals: Vec<Value> = Vec::new();
        loop {
            let top = frames.last_mut().expect("machine has a frame");
            match top {
                Frame::Block(bf) => {
                    if let Some(stmt) = bf.block.stmts.get(bf.si) {
                        bf.si += 1;
                        if let Def::Loop(ml) = &stmt.def {
                            let lf =
                                self.loop_frame(ml, env, 0, None, Some(stmt.lhs.as_slice()))?;
                            frames.push(Frame::Loop(lf));
                        } else {
                            let out = self.eval_def_internal(&stmt.def, env)?;
                            debug_assert_eq!(out.len(), stmt.lhs.len());
                            for (s, v) in stmt.lhs.iter().zip(out) {
                                env[s.0 as usize] = Some(v);
                            }
                        }
                    } else {
                        let v = self.eval_exp(&bf.block.result, env)?;
                        frames.pop();
                        if frames.is_empty() {
                            return Ok(Driven::Value(v));
                        }
                        vals.push(v);
                    }
                }
                Frame::Loop(lf) => {
                    if let Some(block) = self.step_loop(lf, env, &mut vals)? {
                        frames.push(Frame::Block(BlockFrame { block, si: 0 }));
                    } else {
                        let Some(Frame::Loop(lf)) = frames.pop() else {
                            unreachable!("loop frame on top");
                        };
                        match lf.lhs {
                            Some(lhs) => {
                                debug_assert_eq!(lhs.len(), lf.ml.gens.len());
                                for ((gen, acc), s) in
                                    lf.ml.gens.iter().zip(lf.accs).zip(lhs)
                                {
                                    let v = self.seal_acc(gen, acc, env)?;
                                    env[s.0 as usize] = Some(v);
                                }
                            }
                            None => {
                                debug_assert!(frames.is_empty());
                                return Ok(Driven::Accs(lf.accs));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Advance one loop frame until it either needs a sub-block evaluated
    /// (returns the block, with its parameters already bound in `env`) or
    /// has consumed its whole range (returns `None`; the driver seals).
    /// State transitions mirror the recursive walker's per-element,
    /// per-generator order exactly: cond → value → (bucket key) → fold.
    fn step_loop<'a>(
        &self,
        lf: &mut LoopFrame<'a>,
        env: &mut Env,
        vals: &mut Vec<Value>,
    ) -> Result<Option<&'a Block>, EvalError> {
        let ml = lf.ml;
        loop {
            match std::mem::replace(&mut lf.phase, Phase::NextGen) {
                Phase::NextGen => {
                    if ml.gens.is_empty() {
                        // Generator-free loop: nothing to do per element.
                        return Ok(None);
                    }
                    if lf.gi >= ml.gens.len() {
                        lf.gi = 0;
                        lf.i += 1;
                    }
                    if lf.i >= lf.end {
                        return Ok(None);
                    }
                    let gen = &ml.gens[lf.gi];
                    match gen.cond() {
                        Some(c) => {
                            bind_params(env, c, &[Value::I64(lf.i)]);
                            lf.phase = Phase::AwaitCond;
                            return Ok(Some(c));
                        }
                        None => {
                            let b = gen.value();
                            bind_params(env, b, &[Value::I64(lf.i)]);
                            lf.phase = Phase::AwaitValue;
                            return Ok(Some(b));
                        }
                    }
                }
                Phase::AwaitCond => {
                    let pass = vals
                        .pop()
                        .expect("cond result")
                        .as_bool()
                        .ok_or_else(|| EvalError::TypeMismatch("condition".into()))?;
                    if pass {
                        let b = ml.gens[lf.gi].value();
                        bind_params(env, b, &[Value::I64(lf.i)]);
                        lf.phase = Phase::AwaitValue;
                        return Ok(Some(b));
                    }
                    lf.gi += 1;
                }
                Phase::AwaitValue => {
                    let v = vals.pop().expect("value result");
                    match (&ml.gens[lf.gi], &mut lf.accs[lf.gi]) {
                        (Gen::Collect { .. }, Acc::Collect(out)) => {
                            out.push(v);
                            lf.gi += 1;
                        }
                        (Gen::Reduce { reducer, init, .. }, Acc::Reduce(state)) => {
                            match state.take() {
                                Some(cur) => {
                                    bind_params(env, reducer, &[cur, v]);
                                    lf.phase = Phase::AwaitReduce;
                                    return Ok(Some(reducer));
                                }
                                None => match init {
                                    Some(ie) => {
                                        let i0 = self.eval_exp(ie, env)?;
                                        bind_params(env, reducer, &[i0, v]);
                                        lf.phase = Phase::AwaitReduce;
                                        return Ok(Some(reducer));
                                    }
                                    None => {
                                        *state = Some(v);
                                        lf.gi += 1;
                                    }
                                },
                            }
                        }
                        (Gen::BucketCollect { key, .. }, _) | (Gen::BucketReduce { key, .. }, _) => {
                            bind_params(env, key, &[Value::I64(lf.i)]);
                            lf.phase = Phase::AwaitKey { v };
                            return Ok(Some(key));
                        }
                        _ => unreachable!("accumulator matches generator"),
                    }
                }
                Phase::AwaitReduce => {
                    let next = vals.pop().expect("reducer result");
                    match &mut lf.accs[lf.gi] {
                        Acc::Reduce(state) => *state = Some(next),
                        _ => unreachable!("reduce accumulator"),
                    }
                    lf.gi += 1;
                }
                Phase::AwaitKey { v } => {
                    let k = vals.pop().expect("key result");
                    match (&ml.gens[lf.gi], &mut lf.accs[lf.gi]) {
                        (
                            Gen::BucketCollect { .. },
                            Acc::BucketCollect { keys, vals: bvals, index },
                        ) => {
                            let slot = *index.entry(Key(k.clone())).or_insert_with(|| {
                                keys.push(k);
                                bvals.push(Vec::new());
                                keys.len() - 1
                            });
                            bvals[slot].push(v);
                            lf.gi += 1;
                        }
                        (
                            Gen::BucketReduce { reducer, .. },
                            Acc::BucketReduce { keys, vals: bvals, index },
                        ) => match index.get(&Key(k.clone())) {
                            Some(&slot) => {
                                let cur = bvals[slot].clone();
                                bind_params(env, reducer, &[cur, v]);
                                lf.phase = Phase::AwaitBucketReduce { slot };
                                return Ok(Some(reducer));
                            }
                            None => {
                                index.insert(Key(k.clone()), keys.len());
                                keys.push(k);
                                bvals.push(v);
                                lf.gi += 1;
                            }
                        },
                        _ => unreachable!("accumulator matches generator"),
                    }
                }
                Phase::AwaitBucketReduce { slot } => {
                    let r = vals.pop().expect("bucket reducer result");
                    match &mut lf.accs[lf.gi] {
                        Acc::BucketReduce { vals: bvals, .. } => bvals[slot] = r,
                        _ => unreachable!("bucket reduce accumulator"),
                    }
                    lf.gi += 1;
                }
            }
        }
    }

    pub(crate) fn seal_acc(&self, gen: &Gen, acc: Acc, env: &mut Env) -> Result<Value, EvalError> {
        Ok(match acc {
            Acc::Collect(out) => Value::Arr(seal_array(out)),
            Acc::Reduce(state) => match state {
                Some(v) => v,
                None => match gen {
                    Gen::Reduce { init: Some(i), .. } => self.eval_exp(i, env)?,
                    _ => return Err(EvalError::EmptyReduce),
                },
            },
            Acc::BucketCollect { keys, vals, .. } => Value::Buckets(Arc::new(BucketsVal::new(
                keys,
                vals.into_iter()
                    .map(|v| Value::Arr(seal_array(v)))
                    .collect(),
            ))),
            Acc::BucketReduce { keys, vals, .. } => {
                Value::Buckets(Arc::new(BucketsVal::new(keys, vals)))
            }
        })
    }
}

/// One suspended activation of the stackless frame machine. The tree-walker
/// used to recurse Rust-natively through nested [`Def::Loop`]s, so deep IR
/// could overflow the native stack; the machine keeps loop and block
/// continuations on an explicit heap stack instead.
enum Frame<'a> {
    Block(BlockFrame<'a>),
    Loop(LoopFrame<'a>),
}

/// A block mid-execution: statements before `si` have run.
struct BlockFrame<'a> {
    block: &'a Block,
    si: usize,
}

/// A multiloop mid-execution.
struct LoopFrame<'a> {
    ml: &'a Multiloop,
    /// Destination symbols in the enclosing block; `None` marks the root
    /// frame of an accumulator-level entry ([`Interp::eval_loop_accs`]),
    /// whose accumulators are returned unsealed.
    lhs: Option<&'a [dmll_core::Sym]>,
    /// Current element, in `[start, end)`.
    i: i64,
    end: i64,
    /// Current generator index for element `i`.
    gi: usize,
    accs: Vec<Acc>,
    phase: Phase,
}

/// What the loop frame is waiting on from the sub-block it last pushed.
enum Phase {
    /// Not waiting: dispatch the next generator (or element).
    NextGen,
    /// A condition block's result is on the value stack.
    AwaitCond,
    /// The generator's value block result is on the value stack.
    AwaitValue,
    /// A bucket generator's key block result is on the value stack;
    /// `v` is the already-evaluated element value.
    AwaitKey { v: Value },
    /// A reducer block's result is on the value stack.
    AwaitReduce,
    /// A bucket reducer's result is on the value stack, destined for `slot`.
    AwaitBucketReduce { slot: usize },
}

/// What the machine's root frame produced.
enum Driven {
    Value(Value),
    Accs(Vec<Acc>),
}

/// Bind a block's parameters in the environment. Symbols are globally
/// unique within a program, so binding at push time (rather than keeping
/// per-frame scopes) cannot clobber an outer frame's live slots.
fn bind_params(env: &mut Env, b: &Block, args: &[Value]) {
    debug_assert_eq!(b.params.len(), args.len());
    for (p, a) in b.params.iter().zip(args) {
        env[p.0 as usize] = Some(a.clone());
    }
}

/// Per-generator accumulator state (shared with the parallel executor).
pub(crate) enum Acc {
    Collect(Vec<Value>),
    Reduce(Option<Value>),
    BucketCollect {
        keys: Vec<Value>,
        vals: Vec<Vec<Value>>,
        index: HashMap<Key, usize>,
    },
    BucketReduce {
        keys: Vec<Value>,
        vals: Vec<Value>,
        index: HashMap<Key, usize>,
    },
}

impl Acc {
    pub(crate) fn for_gen(gen: &Gen) -> Acc {
        match gen {
            Gen::Collect { .. } => Acc::Collect(Vec::new()),
            Gen::Reduce { .. } => Acc::Reduce(None),
            Gen::BucketCollect { .. } => Acc::BucketCollect {
                keys: Vec::new(),
                vals: Vec::new(),
                index: HashMap::new(),
            },
            Gen::BucketReduce { .. } => Acc::BucketReduce {
                keys: Vec::new(),
                vals: Vec::new(),
                index: HashMap::new(),
            },
        }
    }
}

/// Specialize a boxed value vector to unboxed storage when homogeneous.
pub(crate) fn seal_array(vals: Vec<Value>) -> ArrayVal {
    match vals.first() {
        Some(Value::I64(_)) if vals.iter().all(|v| matches!(v, Value::I64(_))) => ArrayVal::I64(
            Arc::new(vals.iter().map(|v| v.as_i64().expect("i64")).collect()),
        ),
        Some(Value::F64(_)) if vals.iter().all(|v| matches!(v, Value::F64(_))) => ArrayVal::F64(
            Arc::new(vals.iter().map(|v| v.as_f64().expect("f64")).collect()),
        ),
        Some(Value::Bool(_)) if vals.iter().all(|v| matches!(v, Value::Bool(_))) => ArrayVal::Bool(
            Arc::new(vals.iter().map(|v| v.as_bool().expect("bool")).collect()),
        ),
        _ => ArrayVal::Boxed(Arc::new(vals)),
    }
}

pub(crate) fn read_array(arr: &Value, index: &Value) -> Result<Value, EvalError> {
    let a = arr
        .as_arr()
        .ok_or_else(|| EvalError::TypeMismatch("read of non-array".into()))?;
    let i = index
        .as_i64()
        .ok_or_else(|| EvalError::TypeMismatch("non-integer index".into()))?;
    if i < 0 || i as usize >= a.len() {
        return Err(EvalError::IndexOutOfBounds {
            index: i,
            len: a.len(),
        });
    }
    Ok(a.get(i as usize).expect("in range"))
}

fn const_value(c: &Const) -> Value {
    match c {
        Const::I64(v) => Value::I64(*v),
        Const::F64(v) => Value::F64(*v),
        Const::Bool(v) => Value::Bool(*v),
        Const::Str(s) => Value::Str(s.clone()),
        Const::Unit => Value::Unit,
    }
}

pub(crate) fn eval_math(f: MathFn, x: f64) -> f64 {
    match f {
        MathFn::Exp => x.exp(),
        MathFn::Log => x.ln(),
        MathFn::Sqrt => x.sqrt(),
        MathFn::Abs => x.abs(),
        MathFn::Sin => x.sin(),
        MathFn::Cos => x.cos(),
        MathFn::Tanh => x.tanh(),
        MathFn::Floor => x.floor(),
        MathFn::Ceil => x.ceil(),
    }
}

pub(crate) fn eval_prim(op: PrimOp, args: &[Value]) -> Result<Value, EvalError> {
    use PrimOp::*;
    use Value::*;
    let type_err = || EvalError::TypeMismatch(format!("{op} applied to {args:?}"));
    Ok(match (op, args) {
        (Add, [I64(a), I64(b)]) => I64(a.wrapping_add(*b)),
        (Add, [F64(a), F64(b)]) => F64(a + b),
        (Sub, [I64(a), I64(b)]) => I64(a.wrapping_sub(*b)),
        (Sub, [F64(a), F64(b)]) => F64(a - b),
        (Mul, [I64(a), I64(b)]) => I64(a.wrapping_mul(*b)),
        (Mul, [F64(a), F64(b)]) => F64(a * b),
        (Div, [I64(a), I64(b)]) => {
            if *b == 0 {
                return Err(EvalError::DivisionByZero);
            }
            I64(a / b)
        }
        (Div, [F64(a), F64(b)]) => F64(a / b),
        (Rem, [I64(a), I64(b)]) => {
            if *b == 0 {
                return Err(EvalError::DivisionByZero);
            }
            I64(a % b)
        }
        (Min, [I64(a), I64(b)]) => I64(*a.min(b)),
        (Min, [F64(a), F64(b)]) => F64(a.min(*b)),
        (Max, [I64(a), I64(b)]) => I64(*a.max(b)),
        (Max, [F64(a), F64(b)]) => F64(a.max(*b)),
        (Neg, [I64(a)]) => I64(-a),
        (Neg, [F64(a)]) => F64(-a),
        (Eq, [a, b]) => Bool(a == b),
        (Ne, [a, b]) => Bool(a != b),
        (Lt, [I64(a), I64(b)]) => Bool(a < b),
        (Lt, [F64(a), F64(b)]) => Bool(a < b),
        (Le, [I64(a), I64(b)]) => Bool(a <= b),
        (Le, [F64(a), F64(b)]) => Bool(a <= b),
        (Gt, [I64(a), I64(b)]) => Bool(a > b),
        (Gt, [F64(a), F64(b)]) => Bool(a > b),
        (Ge, [I64(a), I64(b)]) => Bool(a >= b),
        (Ge, [F64(a), F64(b)]) => Bool(a >= b),
        (And, [Bool(a), Bool(b)]) => Bool(*a && *b),
        (Or, [Bool(a), Bool(b)]) => Bool(*a || *b),
        (Not, [Bool(a)]) => Bool(!a),
        (Mux, [Bool(c), a, b]) => {
            if *c {
                a.clone()
            } else {
                b.clone()
            }
        }
        _ => return Err(type_err()),
    })
}

/// Run `program` on the given named inputs with the default (empty) extern
/// registry.
///
/// # Errors
///
/// See [`Interp::run`].
pub fn eval(program: &Program, inputs: &[(&str, Value)]) -> Result<Value, EvalError> {
    Interp::new(program).run(inputs)
}

/// Run `program` with the compiled tier disabled and the fusion rewrite
/// skipped — pure tree-walking over the program exactly as written.
/// Differential tests and tier benches use this as the reference.
///
/// # Errors
///
/// See [`Interp::run`].
pub fn eval_tree_walk(program: &Program, inputs: &[(&str, Value)]) -> Result<Value, EvalError> {
    Interp::new(program)
        .without_compiled_tier()
        .without_fusion()
        .run(inputs)
}

/// Run `program` with a set of extern handlers.
///
/// # Errors
///
/// See [`Interp::run`].
pub fn eval_with_externs(
    program: &Program,
    inputs: &[(&str, Value)],
    externs: Vec<(String, ExternFn)>,
) -> Result<Value, EvalError> {
    let mut interp = Interp::new(program);
    for (name, f) in externs {
        interp.externs.insert_fn(name, f);
    }
    interp.run(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    #[test]
    fn map_reduce_roundtrip() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let doubled = st.map(&x, |st, e| {
            let two = st.lit_f(2.0);
            st.mul(e, &two)
        });
        let total = st.sum(&doubled);
        let p = st.finish(&total);
        let out = eval(&p, &[("x", Value::f64_arr(vec![1.0, 2.0, 3.0]))]).unwrap();
        assert_eq!(out, Value::F64(12.0));
    }

    #[test]
    fn filter_keeps_order() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let evens = st.filter(&x, |st, e| {
            let two = st.lit_i(2);
            let r = st.rem(e, &two);
            let zero = st.lit_i(0);
            st.eq(&r, &zero)
        });
        let p = st.finish(&evens);
        let out = eval(&p, &[("x", Value::i64_arr(vec![5, 2, 7, 4, 6, 1]))]).unwrap();
        assert_eq!(out.to_i64_vec().unwrap(), vec![2, 4, 6]);
    }

    #[test]
    fn group_by_first_seen_order() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let g = st.group_by(&x, |st, e| {
            let three = st.lit_i(3);
            st.rem(e, &three)
        });
        let keys = st.bucket_keys(&g);
        let p = st.finish(&keys);
        let out = eval(&p, &[("x", Value::i64_arr(vec![7, 3, 5, 9, 8]))]).unwrap();
        // 7%3=1 first, 3%3=0 second, 5%3=2 third.
        assert_eq!(out.to_i64_vec().unwrap(), vec![1, 0, 2]);
    }

    #[test]
    fn bucket_reduce_sums_per_key() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Local);
        let zero = st.lit_i(0);
        let sums = st.group_by_reduce(
            &x,
            |st, e| {
                let two = st.lit_i(2);
                st.rem(e, &two)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let vals = st.bucket_values(&sums);
        let p = st.finish(&vals);
        let out = eval(&p, &[("x", Value::i64_arr(vec![1, 2, 3, 4, 5]))]).unwrap();
        // odd first (1+3+5=9), then even (2+4=6).
        assert_eq!(out.to_i64_vec().unwrap(), vec![9, 6]);
    }

    #[test]
    fn min_index_runs() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let mi = st.min_index(&x);
        let p = st.finish(&mi);
        let out = eval(&p, &[("x", Value::f64_arr(vec![3.0, 1.0, 2.0, 1.5]))]).unwrap();
        assert_eq!(out, Value::I64(1));
    }

    #[test]
    fn empty_reduce_without_init_errors() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let r = st.reduce_elems(&x, |st, a, b| st.add(a, b));
        let p = st.finish(&r);
        let err = eval(&p, &[("x", Value::f64_arr(vec![]))]).unwrap_err();
        assert_eq!(err, EvalError::EmptyReduce);
    }

    #[test]
    fn empty_reduce_with_init_yields_init() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let total = st.sum(&x);
        let p = st.finish(&total);
        let out = eval(&p, &[("x", Value::f64_arr(vec![]))]).unwrap();
        assert_eq!(out, Value::F64(0.0));
    }

    #[test]
    fn out_of_bounds_read_errors() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let idx = st.lit_i(10);
        let v = st.read(&x, &idx);
        let p = st.finish(&v);
        let err = eval(&p, &[("x", Value::f64_arr(vec![1.0]))]).unwrap_err();
        assert_eq!(err, EvalError::IndexOutOfBounds { index: 10, len: 1 });
    }

    #[test]
    fn missing_input_errors() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let total = st.sum(&x);
        let p = st.finish(&total);
        let err = eval(&p, &[]).unwrap_err();
        assert_eq!(err, EvalError::MissingInput("x".into()));
    }

    #[test]
    fn extern_dispatch() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
        let n = st.extern_call("my_len", &[&x], Ty::I64, false, true);
        let p = st.finish(&n);
        let out = eval_with_externs(
            &p,
            &[("x", Value::f64_arr(vec![1.0, 2.0]))],
            vec![(
                "my_len".to_string(),
                Arc::new(|args: &[Value]| {
                    Ok(Value::I64(args[0].as_arr().map_or(0, |a| a.len() as i64)))
                }) as ExternFn,
            )],
        )
        .unwrap();
        assert_eq!(out, Value::I64(2));
        assert_eq!(
            eval(&p, &[("x", Value::f64_arr(vec![]))]).unwrap_err(),
            EvalError::UnknownExtern("my_len".into())
        );
    }

    #[test]
    fn integer_division_by_zero() {
        let mut st = Stage::new();
        let a = st.lit_i(3);
        let b = st.lit_i(0);
        let d = st.div(&a, &b);
        let p = st.finish(&d);
        assert_eq!(eval(&p, &[]).unwrap_err(), EvalError::DivisionByZero);
    }

    #[test]
    fn matrix_kmeans_assignment() {
        // Two clear clusters; nearest-centroid assignment must separate them.
        let mut st = Stage::new();
        let matrix = st.input_matrix("matrix", LayoutHint::Partitioned);
        let clusters = st.input_matrix("clusters", LayoutHint::Local);
        let assigned = matrix.map_rows(&mut st, |st, i| {
            let dists = clusters.map_rows(st, |st, k| matrix.row_dist2(st, i, &clusters, k));
            st.min_index(&dists)
        });
        let p = st.finish(&assigned);
        let matrix_v = Value::matrix(vec![0.0, 0.1, 10.0, 9.9, 0.2, 0.0, 9.8, 10.1], 4, 2);
        let clusters_v = Value::matrix(vec![0.0, 0.0, 10.0, 10.0], 2, 2);
        let out = eval(&p, &[("matrix", matrix_v), ("clusters", clusters_v)]).unwrap();
        assert_eq!(out.to_i64_vec().unwrap(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn mux_selects() {
        let mut st = Stage::new();
        let c = st.lit_b(false);
        let a = st.lit_i(1);
        let b = st.lit_i(2);
        let m = st.mux(&c, &a, &b);
        let p = st.finish(&m);
        assert_eq!(eval(&p, &[]).unwrap(), Value::I64(2));
    }
}
