//! The compiled execution tier: multiloop bodies lowered to a flat
//! register-based bytecode over unboxed `i64`/`f64`/`bool` registers.
//!
//! The tree-walking evaluator ([`crate::eval`]) pays per element for every
//! `Exp` match, every `Env` slot write and every boxed [`Value`]. This
//! module removes that overhead for the hot path: each top-level
//! [`Multiloop`]'s generator component functions (condition / key / value /
//! reducer) are lowered once into straight-line instruction sequences whose
//! operands are typed registers, and the per-element loop runs those
//! sequences against typed accumulators that write straight into
//! `Vec<i64>` / `Vec<f64>` buffers.
//!
//! Design rules (see DESIGN.md §8):
//!
//! * **Bit-identical semantics or bust.** Every typed instruction
//!   replicates the tree-walker's behaviour exactly, including error
//!   variants (`IndexOutOfBounds`, `DivisionByZero`, `EmptyReduce`, …),
//!   wrapping integer arithmetic, first-seen bucket order, and the
//!   `seal_array` storage rules (empty collects seal to `Boxed`). Anything
//!   the compiler cannot prove it can replicate is *rejected* and the whole
//!   loop falls back to the tree-walker — so a fallback is never a
//!   behaviour change, only a missed speedup.
//! * **Refined value types.** Free variables are classified from their
//!   runtime values ([`VTy`]); the classification is part of the kernel
//!   cache key, so a cached kernel is only reused when operand storage
//!   (e.g. `ArrayVal::F64` vs `Boxed`) matches what it was compiled for.
//! * **Loop-invariant hoisting.** Infallible statements whose operands are
//!   loop-invariant are executed once per invocation in a preamble instead
//!   of once per element. Fallible operations (division, reads, dynamic
//!   projections) are never hoisted, because the tree-walker would not have
//!   executed them for an empty loop.
//! * **Boxed fallback ops.** Structs, tuples and polymorphic primitives
//!   that cannot be typed still compile — into generic instructions over
//!   `Value` registers that call the same helpers as the tree-walker.
//!
//! Kernels are cached in an LRU store keyed by a structural hash of the
//! multiloop plus the free-variable [`VTy`]s, so iterative apps (k-means,
//! logreg, PageRank epochs) compile each loop once. The store is an
//! injectable [`KernelCacheHandle`] — one process-global default for
//! one-shot runs, or a caller-owned handle (the query service shares one
//! across tenants and surfaces per-tenant hit rates through handle views).

pub(crate) mod batch;
pub(crate) mod native;

pub use batch::BatchIneligible;

use crate::error::EvalError;
use crate::eval::{check_extern_ret, eval_math, eval_prim, read_array, seal_array, Env, ExternFn, Externs};
use crate::stats;
use crate::value::{ArrayVal, BucketsVal, Key, StructVal, Value};
use dmll_core::gen::GenKind;
use dmll_core::visit::free_syms;
use dmll_core::{Block, Const, Def, Exp, Gen, MathFn, Multiloop, PrimOp, Program, StructTy, Sym, Ty};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Register model
// ---------------------------------------------------------------------------

/// Register class: which register file a value lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Class {
    /// Unboxed `i64`.
    I,
    /// Unboxed `f64`.
    F,
    /// Unboxed `bool`.
    B,
    /// Boxed [`Value`] (tuples, structs, arrays, buckets, strings, unit).
    V,
}

/// A typed register reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Reg {
    pub class: Class,
    pub idx: u16,
}

/// Refined runtime type of a symbol: drives register-class assignment and
/// certifies typed instructions (e.g. an unboxed read requires the array
/// operand to be `Arr(F)`). Also the kernel cache-key component for free
/// variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum VTy {
    /// `i64` scalar.
    I,
    /// `f64` scalar.
    F,
    /// `bool` scalar.
    B,
    /// String.
    Str,
    /// Unit.
    Unit,
    /// An array with unboxed element storage; the inner type is always
    /// `I`, `F` or `B`.
    Arr(Box<VTy>),
    /// Definitely an array, element storage unknown (boxed or empty).
    ArrGen,
    /// A tuple with per-component refinements.
    Tuple(Arc<Vec<VTy>>),
    /// A struct of known type with per-field refinements.
    Struct(Arc<StructTy>, Arc<Vec<VTy>>),
    /// A bucket collection.
    Buckets,
    /// Anything else / unknown.
    Gen,
}

impl VTy {
    pub(crate) fn class(&self) -> Class {
        match self {
            VTy::I => Class::I,
            VTy::F => Class::F,
            VTy::B => Class::B,
            _ => Class::V,
        }
    }

    /// Classify a runtime value, depth-limited so adversarial nesting cannot
    /// blow up the cache key.
    pub(crate) fn of(v: &Value, depth: usize) -> VTy {
        if depth > 4 {
            return VTy::Gen;
        }
        match v {
            Value::I64(_) => VTy::I,
            Value::F64(_) => VTy::F,
            Value::Bool(_) => VTy::B,
            Value::Str(_) => VTy::Str,
            Value::Unit => VTy::Unit,
            Value::Arr(ArrayVal::I64(_)) => VTy::Arr(Box::new(VTy::I)),
            Value::Arr(ArrayVal::F64(_)) => VTy::Arr(Box::new(VTy::F)),
            Value::Arr(ArrayVal::Bool(_)) => VTy::Arr(Box::new(VTy::B)),
            Value::Arr(ArrayVal::Boxed(_)) => VTy::ArrGen,
            Value::Tuple(vs) => VTy::Tuple(Arc::new(
                vs.iter().map(|x| VTy::of(x, depth + 1)).collect(),
            )),
            Value::Struct(s) => VTy::Struct(
                s.ty.clone(),
                Arc::new(s.fields.iter().map(|x| VTy::of(x, depth + 1)).collect()),
            ),
            Value::Buckets(_) => VTy::Buckets,
        }
    }
}

// ---------------------------------------------------------------------------
// Instruction set
// ---------------------------------------------------------------------------

/// Infallible integer binary ops (wrapping, like the tree-walker).
#[derive(Clone, Copy, Debug)]
pub(crate) enum IOp {
    Add,
    Sub,
    Mul,
    Min,
    Max,
}

/// Float binary ops (all infallible in IEEE arithmetic).
#[derive(Clone, Copy, Debug)]
pub(crate) enum FOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// Comparison ops.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One bytecode instruction. Bare `u16` operands index the register file
/// implied by the variant; [`Reg`] operands are polymorphic.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    ConstI { dst: u16, v: i64 },
    ConstF { dst: u16, v: f64 },
    ConstB { dst: u16, v: bool },
    ConstV { dst: u16, v: Value },
    BinI { op: IOp, dst: u16, a: u16, b: u16 },
    DivI { dst: u16, a: u16, b: u16 },
    RemI { dst: u16, a: u16, b: u16 },
    BinF { op: FOp, dst: u16, a: u16, b: u16 },
    NegI { dst: u16, a: u16 },
    NegF { dst: u16, a: u16 },
    CmpI { op: CmpOp, dst: u16, a: u16, b: u16 },
    CmpF { op: CmpOp, dst: u16, a: u16, b: u16 },
    CmpB { op: CmpOp, dst: u16, a: u16, b: u16 },
    AndB { dst: u16, a: u16, b: u16 },
    OrB { dst: u16, a: u16, b: u16 },
    NotB { dst: u16, a: u16 },
    MuxI { dst: u16, c: u16, a: u16, b: u16 },
    MuxF { dst: u16, c: u16, a: u16, b: u16 },
    MuxB { dst: u16, c: u16, a: u16, b: u16 },
    MuxV { dst: u16, c: u16, a: u16, b: u16 },
    MathF { f: MathFn, dst: u16, a: u16 },
    /// Math on a boxed operand: `as_f64` or the tree-walker's error.
    MathV { f: MathFn, dst: u16, a: Reg },
    CastIF { dst: u16, a: u16 },
    CastFI { dst: u16, a: u16 },
    /// Cast with a boxed or ill-typed operand; replicates the tree-walker's
    /// match (including its error for non-numeric targets).
    CastDyn { to: Ty, dst: Reg, a: Reg },
    /// Array length of any operand (errors on non-arrays, like the walker).
    LenA { dst: u16, a: Reg },
    /// Coerce a nested-loop size operand to `i64` (`"loop size"` error).
    SizeI { dst: u16, a: Reg },
    /// Coerce a condition result to `bool` (`"condition"` error).
    CondB { dst: u16, a: Reg },
    /// Certified unboxed reads: the array operand was proven `Arr(I/F/B)`.
    ReadVI { dst: u16, arr: u16, idx: u16 },
    ReadVF { dst: u16, arr: u16, idx: u16 },
    ReadVB { dst: u16, arr: u16, idx: u16 },
    /// Read from a V-register array into a V register.
    ReadVV { dst: u16, arr: u16, idx: u16 },
    /// Fully dynamic read (non-V array operand or non-I index).
    ReadDyn { dst: u16, arr: Reg, idx: Reg },
    /// Fallback primitive: boxes operands and calls the tree-walker's
    /// `eval_prim` — identical results and identical errors by construction.
    PrimV { op: PrimOp, dst: Reg, args: Vec<Reg> },
    TupleNewV { dst: u16, args: Vec<Reg> },
    /// Certified tuple projections (component class known at compile time).
    TupleGetI { dst: u16, t: u16, idx: u32 },
    TupleGetF { dst: u16, t: u16, idx: u32 },
    TupleGetB { dst: u16, t: u16, idx: u32 },
    TupleGetV { dst: u16, t: u16, idx: u32 },
    TupleGetDyn { dst: u16, t: Reg, idx: u32 },
    StructNewV { dst: u16, ty: Arc<StructTy>, args: Vec<Reg> },
    /// Certified field read with a compile-time-resolved field index.
    StructGetIdx { dst: Reg, obj: u16, idx: u32 },
    StructGetDyn { dst: u16, obj: Reg, name: Arc<str> },
    FlattenV { dst: u16, a: Reg },
    BucketValuesV { dst: u16, a: Reg },
    BucketKeysV { dst: u16, a: Reg },
    BucketLenV { dst: u16, a: Reg },
    BucketGetV { dst: u16, b: Reg, k: Reg, default: Option<Reg> },
    /// Call pure extern `kernel.externs[ext]` with the argument registers.
    /// Handlers resolve by name when a state is built; the declared scalar
    /// return type is enforced at the call site, like the tree-walker.
    CallExtern { dst: Reg, ext: u16, args: Vec<Reg> },
    /// Execute nested compiled loop `kernel.loops[i]`.
    Loop(u32),
}

/// A compiled block: write `params`, run `instrs`, read `result`.
#[derive(Clone, Debug)]
pub(crate) struct CBlock {
    pub params: Vec<Reg>,
    pub instrs: Vec<Instr>,
    pub result: Reg,
}

/// Recognized single-instruction reducers, applied without block dispatch.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FastRed {
    I(IOp),
    F(FOp),
}

/// A compiled generator.
#[derive(Clone, Debug)]
pub(crate) struct CGen {
    pub kind: GenKind,
    pub cond: Option<CBlock>,
    pub key: Option<CBlock>,
    pub value: CBlock,
    pub reducer: Option<CBlock>,
    /// Register holding the (loop-invariant) explicit reduce identity.
    pub init: Option<Reg>,
    pub val_class: Class,
    /// Bucket keys are unboxed `i64` (typed hash index).
    pub key_typed: bool,
    pub fast_red: Option<FastRed>,
}

/// A nested compiled loop: size register, generators, one destination
/// register per generator.
#[derive(Clone, Debug)]
pub(crate) struct CLoop {
    pub size: u16,
    pub gens: Vec<CGen>,
    pub dsts: Vec<Reg>,
}

/// A compiled top-level multiloop.
#[derive(Debug)]
pub(crate) struct Kernel {
    pub gens: Vec<CGen>,
    pub preamble: Vec<Instr>,
    pub loops: Vec<CLoop>,
    /// Free symbols to bind from the environment, with their registers.
    pub free: Vec<(Sym, Reg)>,
    pub n_regs: [usize; 4],
    /// Whether every generator's per-element blocks certify for the batched
    /// (block-at-a-time) executor; see [`batch`].
    pub batchable: bool,
    /// When not batchable, the typed reason for the first certification
    /// failure (surfaced as a per-loop fallback reason in tier stats).
    pub batch_reject: Option<batch::BatchIneligible>,
    /// Lazily initialized native (compiled C) tier entry: `Ok` holds the
    /// loaded shared object, `Err` the typed decline. Lives on the kernel
    /// so the LRU cache owns the `dlopen` handle — eviction drops (and
    /// `dlclose`s) it with the kernel.
    pub native: std::sync::OnceLock<Result<native::NativeEntry, dmll_codegen::NativeIneligible>>,
    /// Pure extern operations the kernel calls, indexed by
    /// [`Instr::CallExtern`]'s `ext` operand. Handlers are resolved by name
    /// per state (not per kernel), so cached kernels stay registry-agnostic.
    pub externs: Vec<ExternDecl>,
    /// Segmented execution plans, parallel to `loops`: `Some` for a nested
    /// loop whose trip count varies per element and whose body certifies
    /// for CSR-style flattened execution; see [`batch::SegPlan`].
    pub seg_plans: Vec<Option<batch::SegPlan>>,
    /// AoS→SoA column-extraction plan: set when every generator is an
    /// unconditional `collect(arr(i).field)` over a boxed struct array.
    /// Such loops (the runtime SoA pass's scatter) cannot batch — the
    /// element reads are boxed — but a dedicated extraction loop avoids
    /// per-element bytecode dispatch entirely; see [`Kernel::run_scatter`].
    pub scatter: Option<Vec<ScatterField>>,
}

/// One pure extern operation a kernel calls: the handler name and the
/// declared scalar return type enforced on every call's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ExternDecl {
    pub name: String,
    pub ret: Ty,
}

/// One generator of an AoS→SoA scatter loop: which V register holds the
/// boxed struct array, and which field each element contributes.
#[derive(Debug)]
pub(crate) struct ScatterField {
    /// Index into the V register file (a free-variable binding).
    pub arr: u16,
    /// Field name, resolved per element exactly like `StructGet`.
    pub field: String,
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// Per-invocation register files. One state per worker chunk; re-used for
/// chunk re-execution so recovery runs the very same kernel.
pub(crate) struct KState {
    ri: Vec<i64>,
    rf: Vec<f64>,
    rb: Vec<bool>,
    rv: Vec<Value>,
    /// Handlers resolved per [`Kernel::externs`] entry (`None` = missing
    /// from the registry: the call site raises `UnknownExtern`, so a loop
    /// that never calls it still runs, matching the tree-walker).
    ext: Vec<Option<ExternFn>>,
}

/// An unboxed-or-boxed scalar crossing the accumulator boundary.
#[derive(Clone, Debug)]
pub(crate) enum Scalar {
    I(i64),
    F(f64),
    B(bool),
    V(Value),
}

impl KState {
    fn read_scalar(&self, r: Reg) -> Scalar {
        match r.class {
            Class::I => Scalar::I(self.ri[r.idx as usize]),
            Class::F => Scalar::F(self.rf[r.idx as usize]),
            Class::B => Scalar::B(self.rb[r.idx as usize]),
            Class::V => Scalar::V(self.rv[r.idx as usize].clone()),
        }
    }

    fn write_scalar(&mut self, r: Reg, s: Scalar) -> Result<(), EvalError> {
        match (r.class, s) {
            (Class::I, Scalar::I(x)) => self.ri[r.idx as usize] = x,
            (Class::F, Scalar::F(x)) => self.rf[r.idx as usize] = x,
            (Class::B, Scalar::B(x)) => self.rb[r.idx as usize] = x,
            (Class::V, Scalar::V(x)) => self.rv[r.idx as usize] = x,
            (Class::V, s) => self.rv[r.idx as usize] = scalar_value(s),
            _ => {
                return Err(EvalError::TypeMismatch(
                    "kernel register class mismatch".into(),
                ))
            }
        }
        Ok(())
    }

    /// Box the register's content into a [`Value`].
    fn value_of(&self, r: Reg) -> Value {
        match r.class {
            Class::I => Value::I64(self.ri[r.idx as usize]),
            Class::F => Value::F64(self.rf[r.idx as usize]),
            Class::B => Value::Bool(self.rb[r.idx as usize]),
            Class::V => self.rv[r.idx as usize].clone(),
        }
    }

    fn write_value(&mut self, r: Reg, v: Value) -> Result<(), EvalError> {
        match r.class {
            Class::I => {
                self.ri[r.idx as usize] = v
                    .as_i64()
                    .ok_or_else(|| EvalError::TypeMismatch("kernel expected i64".into()))?
            }
            Class::F => {
                self.rf[r.idx as usize] = v
                    .as_f64()
                    .ok_or_else(|| EvalError::TypeMismatch("kernel expected f64".into()))?
            }
            Class::B => {
                self.rb[r.idx as usize] = v
                    .as_bool()
                    .ok_or_else(|| EvalError::TypeMismatch("kernel expected bool".into()))?
            }
            Class::V => self.rv[r.idx as usize] = v,
        }
        Ok(())
    }
}

fn scalar_value(s: Scalar) -> Value {
    match s {
        Scalar::I(x) => Value::I64(x),
        Scalar::F(x) => Value::F64(x),
        Scalar::B(x) => Value::Bool(x),
        Scalar::V(v) => v,
    }
}

#[inline]
fn bounds(i: i64, len: usize) -> Result<usize, EvalError> {
    if i < 0 || i as usize >= len {
        Err(EvalError::IndexOutOfBounds { index: i, len })
    } else {
        Ok(i as usize)
    }
}

// ---------------------------------------------------------------------------
// Typed accumulators
// ---------------------------------------------------------------------------

/// A typed collect buffer (per generator, or per bucket).
#[derive(Debug)]
pub(crate) enum ColBuf {
    I(Vec<i64>),
    F(Vec<f64>),
    B(Vec<bool>),
    V(Vec<Value>),
}

impl ColBuf {
    fn new(class: Class, cap: usize) -> ColBuf {
        match class {
            Class::I => ColBuf::I(Vec::with_capacity(cap)),
            Class::F => ColBuf::F(Vec::with_capacity(cap)),
            Class::B => ColBuf::B(Vec::with_capacity(cap)),
            Class::V => ColBuf::V(Vec::with_capacity(cap)),
        }
    }

    fn push_result(&mut self, st: &KState, res: Reg) {
        match self {
            ColBuf::I(v) => v.push(st.ri[res.idx as usize]),
            ColBuf::F(v) => v.push(st.rf[res.idx as usize]),
            ColBuf::B(v) => v.push(st.rb[res.idx as usize]),
            ColBuf::V(v) => v.push(st.rv[res.idx as usize].clone()),
        }
    }

    fn extend(&mut self, other: ColBuf) -> Result<(), EvalError> {
        match (self, other) {
            (ColBuf::I(a), ColBuf::I(b)) => a.extend(b),
            (ColBuf::F(a), ColBuf::F(b)) => a.extend(b),
            (ColBuf::B(a), ColBuf::B(b)) => a.extend(b),
            (ColBuf::V(a), ColBuf::V(b)) => a.extend(b),
            // Scatter chunks latch their column type from their own first
            // element, so chunks of a heterogeneous array can disagree; box
            // both sides — exactly the boxed sequence the generic path
            // collects before `seal_array` decides storage.
            (slf, other) => {
                let mut vals = std::mem::replace(slf, ColBuf::V(Vec::new())).into_values();
                vals.extend(other.into_values());
                *slf = ColBuf::V(vals);
            }
        }
        Ok(())
    }

    /// Box every element (the generic collect representation).
    fn into_values(self) -> Vec<Value> {
        match self {
            ColBuf::I(v) => v.into_iter().map(Value::I64).collect(),
            ColBuf::F(v) => v.into_iter().map(Value::F64).collect(),
            ColBuf::B(v) => v.into_iter().map(Value::Bool).collect(),
            ColBuf::V(v) => v,
        }
    }

    /// Seal with the tree-walker's `seal_array` storage rules: typed
    /// buffers stay typed when non-empty; empty collects are `Boxed`.
    fn seal(self) -> ArrayVal {
        match self {
            ColBuf::I(v) if !v.is_empty() => ArrayVal::I64(Arc::new(v)),
            ColBuf::F(v) if !v.is_empty() => ArrayVal::F64(Arc::new(v)),
            ColBuf::B(v) if !v.is_empty() => ArrayVal::Bool(Arc::new(v)),
            ColBuf::V(v) => seal_array(v),
            _ => ArrayVal::Boxed(Arc::new(Vec::new())),
        }
    }
}

/// Slot-indexed per-bucket reduce states.
#[derive(Debug)]
pub(crate) enum RedBuf {
    I(Vec<i64>),
    F(Vec<f64>),
    B(Vec<bool>),
    V(Vec<Value>),
}

impl RedBuf {
    fn new(class: Class) -> RedBuf {
        match class {
            Class::I => RedBuf::I(Vec::new()),
            Class::F => RedBuf::F(Vec::new()),
            Class::B => RedBuf::B(Vec::new()),
            Class::V => RedBuf::V(Vec::new()),
        }
    }

    fn get(&self, slot: usize) -> Scalar {
        match self {
            RedBuf::I(v) => Scalar::I(v[slot]),
            RedBuf::F(v) => Scalar::F(v[slot]),
            RedBuf::B(v) => Scalar::B(v[slot]),
            RedBuf::V(v) => Scalar::V(v[slot].clone()),
        }
    }

    fn set(&mut self, slot: usize, s: Scalar) -> Result<(), EvalError> {
        match (self, s) {
            (RedBuf::I(v), Scalar::I(x)) => v[slot] = x,
            (RedBuf::F(v), Scalar::F(x)) => v[slot] = x,
            (RedBuf::B(v), Scalar::B(x)) => v[slot] = x,
            (RedBuf::V(v), Scalar::V(x)) => v[slot] = x,
            (RedBuf::V(v), x) => v[slot] = scalar_value(x),
            _ => {
                return Err(EvalError::TypeMismatch(
                    "bucket reduce class mismatch".into(),
                ))
            }
        }
        Ok(())
    }

    fn push(&mut self, s: Scalar) -> Result<(), EvalError> {
        match (self, s) {
            (RedBuf::I(v), Scalar::I(x)) => v.push(x),
            (RedBuf::F(v), Scalar::F(x)) => v.push(x),
            (RedBuf::B(v), Scalar::B(x)) => v.push(x),
            (RedBuf::V(v), Scalar::V(x)) => v.push(x),
            (RedBuf::V(v), x) => v.push(scalar_value(x)),
            _ => {
                return Err(EvalError::TypeMismatch(
                    "bucket reduce class mismatch".into(),
                ))
            }
        }
        Ok(())
    }

    fn len(&self) -> usize {
        match self {
            RedBuf::I(v) => v.len(),
            RedBuf::F(v) => v.len(),
            RedBuf::B(v) => v.len(),
            RedBuf::V(v) => v.len(),
        }
    }

    fn into_values(self) -> Vec<Value> {
        match self {
            RedBuf::I(v) => v.into_iter().map(Value::I64).collect(),
            RedBuf::F(v) => v.into_iter().map(Value::F64).collect(),
            RedBuf::B(v) => v.into_iter().map(Value::Bool).collect(),
            RedBuf::V(v) => v,
        }
    }
}

/// First-seen-order bucket key directory, with an unboxed `i64` fast path.
#[derive(Debug)]
pub(crate) enum KeyIx {
    I {
        keys: Vec<i64>,
        ix: HashMap<i64, usize>,
    },
    V {
        keys: Vec<Value>,
        ix: HashMap<Key, usize>,
    },
}

impl KeyIx {
    fn new(typed: bool) -> KeyIx {
        if typed {
            KeyIx::I {
                keys: Vec::new(),
                ix: HashMap::new(),
            }
        } else {
            KeyIx::V {
                keys: Vec::new(),
                ix: HashMap::new(),
            }
        }
    }

    /// Slot for the key currently in the key block's result register;
    /// `Err(slot)` means the key is new and `slot` is its fresh index.
    fn slot_of_result(&mut self, st: &KState, res: Reg) -> Result<usize, usize> {
        match self {
            KeyIx::I { keys, ix } => {
                let k = st.ri[res.idx as usize];
                match ix.get(&k) {
                    Some(&s) => Ok(s),
                    None => {
                        let s = keys.len();
                        ix.insert(k, s);
                        keys.push(k);
                        Err(s)
                    }
                }
            }
            KeyIx::V { keys, ix } => {
                let k = st.value_of(res);
                match ix.get(&Key(k.clone())) {
                    Some(&s) => Ok(s),
                    None => {
                        let s = keys.len();
                        ix.insert(Key(k.clone()), s);
                        keys.push(k);
                        Err(s)
                    }
                }
            }
        }
    }

    /// Slot for an already-boxed key value (used when merging chunks).
    fn slot_of_value(&mut self, k: &Value) -> Result<usize, usize> {
        match self {
            KeyIx::I { keys, ix } => {
                let ki = k.as_i64().expect("typed key index holds i64 keys");
                match ix.get(&ki) {
                    Some(&s) => Ok(s),
                    None => {
                        let s = keys.len();
                        ix.insert(ki, s);
                        keys.push(ki);
                        Err(s)
                    }
                }
            }
            KeyIx::V { keys, ix } => match ix.get(&Key(k.clone())) {
                Some(&s) => Ok(s),
                None => {
                    let s = keys.len();
                    ix.insert(Key(k.clone()), s);
                    keys.push(k.clone());
                    Err(s)
                }
            },
        }
    }

    fn into_values(self) -> Vec<Value> {
        match self {
            KeyIx::I { keys, .. } => keys.into_iter().map(Value::I64).collect(),
            KeyIx::V { keys, .. } => keys,
        }
    }

    fn key_values(&self) -> Vec<Value> {
        match self {
            KeyIx::I { keys, .. } => keys.iter().copied().map(Value::I64).collect(),
            KeyIx::V { keys, .. } => keys.clone(),
        }
    }
}

/// Per-generator accumulator (the compiled tier's counterpart of
/// [`crate::eval::Acc`]); merged across chunks in chunk order.
#[derive(Debug)]
pub(crate) enum KAcc {
    Col(ColBuf),
    RedI(Option<i64>),
    RedF(Option<f64>),
    RedB(Option<bool>),
    RedV(Option<Value>),
    BCol { keys: KeyIx, vals: Vec<ColBuf> },
    BRed { keys: KeyIx, vals: RedBuf },
}

impl KAcc {
    pub(crate) fn for_gen(gen: &CGen, range_hint: usize) -> KAcc {
        let cap = if gen.cond.is_none() {
            range_hint.min(1 << 22)
        } else {
            0
        };
        match gen.kind {
            GenKind::Collect => KAcc::Col(ColBuf::new(gen.val_class, cap)),
            GenKind::Reduce => match gen.val_class {
                Class::I => KAcc::RedI(None),
                Class::F => KAcc::RedF(None),
                Class::B => KAcc::RedB(None),
                Class::V => KAcc::RedV(None),
            },
            GenKind::BucketCollect => KAcc::BCol {
                keys: KeyIx::new(gen.key_typed),
                vals: Vec::new(),
            },
            GenKind::BucketReduce => KAcc::BRed {
                keys: KeyIx::new(gen.key_typed),
                vals: RedBuf::new(gen.val_class),
            },
        }
    }
}

/// Build a direct-indexed slot table covering every typed bucket key in
/// `accs`, when the key range is dense enough to beat per-key hashing.
/// Returns the minimum key and a table of `u32::MAX` sentinels, or `None`
/// when the accumulators are not typed-key buckets, hold no keys, or the
/// key range is too sparse for direct indexing.
fn dense_slot_table(accs: &[KAcc]) -> Option<(i64, Vec<u32>)> {
    let mut min_k = i64::MAX;
    let mut max_k = i64::MIN;
    let mut total = 0usize;
    for acc in accs {
        let keys = match acc {
            KAcc::BRed {
                keys: KeyIx::I { keys, .. },
                ..
            }
            | KAcc::BCol {
                keys: KeyIx::I { keys, .. },
                ..
            } => keys,
            _ => return None,
        };
        for &k in keys {
            min_k = min_k.min(k);
            max_k = max_k.max(k);
        }
        total += keys.len();
    }
    if total == 0 {
        return None; // nothing to stitch; the pairwise fold is free here
    }
    let span = (max_k as i128) - (min_k as i128) + 1;
    if span > (4 * total + 1024) as i128 || span >= u32::MAX as i128 {
        return None; // sparse keys: direct indexing would waste memory
    }
    Some((min_k, vec![u32::MAX; span as usize]))
}

/// Append a fresh typed key to a `KeyIx::I` directory, returning its slot.
/// The hash index is deliberately *not* maintained: the dense slot table
/// is the stitch's directory, and a stitched accumulator is sealed
/// immediately — it is never re-merged, so nothing reads the index.
fn push_typed_key(keys: &mut KeyIx, k: i64) -> usize {
    match keys {
        KeyIx::I { keys, .. } => {
            let s = keys.len();
            keys.push(k);
            s
        }
        KeyIx::V { .. } => unreachable!("dense stitch only runs on typed keys"),
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl Kernel {
    /// Bind free variables from `env`, resolve extern handlers, and run the
    /// loop-invariant preamble.
    pub(crate) fn new_state(&self, env: &Env, externs: &Externs) -> Result<KState, EvalError> {
        let mut st = KState {
            ri: vec![0; self.n_regs[0]],
            rf: vec![0.0; self.n_regs[1]],
            rb: vec![false; self.n_regs[2]],
            rv: vec![Value::Unit; self.n_regs[3]],
            ext: self
                .externs
                .iter()
                .map(|d| externs.get(&d.name).cloned())
                .collect(),
        };
        for (sym, reg) in &self.free {
            let v = env[sym.0 as usize]
                .as_ref()
                .ok_or_else(|| EvalError::TypeMismatch(format!("unset symbol {sym}")))?;
            st.write_value(*reg, v.clone())?;
        }
        for ins in &self.preamble {
            self.step(ins, &mut st)?;
        }
        Ok(st)
    }

    /// Run the top-level generators over `[start, end)`, returning raw
    /// accumulators (unsealed; the parallel executor merges them).
    pub(crate) fn run_range(
        &self,
        st: &mut KState,
        start: i64,
        end: i64,
    ) -> Result<Vec<KAcc>, EvalError> {
        let hint = (end - start).max(0) as usize;
        if hint > 0 {
            if let Some(plan) = &self.scatter {
                if let Some(accs) = self.run_scatter(plan, st, start, end) {
                    stats::record_scatter_loop();
                    return Ok(accs);
                }
            }
        }
        let mut accs: Vec<KAcc> = self.gens.iter().map(|g| KAcc::for_gen(g, hint)).collect();
        self.exec_gens(&self.gens, &mut accs, st, start, end)?;
        Ok(accs)
    }

    /// Dedicated AoS→SoA extraction: one traversal pulling every planned
    /// field straight into typed column buffers, with no per-element
    /// bytecode dispatch or `Value` boxing. Bails with `None` (caller runs
    /// the generic path, which reproduces the interpreter's exact output or
    /// error) on anything the plan did not anticipate: a short array, a
    /// non-struct element, a missing field, or a field whose scalar type
    /// varies. Uniform typed columns seal exactly like `seal_array`'s
    /// promotion of uniform boxed collects, so outputs are bit-identical.
    fn run_scatter(
        &self,
        plan: &[ScatterField],
        st: &KState,
        start: i64,
        end: i64,
    ) -> Option<Vec<KAcc>> {
        let n = (end - start) as usize;
        let mut arrs: Vec<&[Value]> = Vec::with_capacity(plan.len());
        for f in plan {
            let Value::Arr(ArrayVal::Boxed(a)) = &st.rv[f.arr as usize] else {
                return None;
            };
            if start < 0 || (end as usize) > a.len() {
                return None;
            }
            arrs.push(a);
        }
        // Per-generator column; the scalar type latches on first element.
        let mut cols: Vec<Option<ColBuf>> = plan.iter().map(|_| None).collect();
        // Cached field position: struct arrays are homogeneous in practice,
        // so one name comparison per element usually suffices.
        let mut fpos: Vec<usize> = vec![0; plan.len()];
        let push = |slot: &mut Option<ColBuf>, v: &Value| -> Option<()> {
            match (slot, v) {
                (Some(ColBuf::I(v)), Value::I64(x)) => v.push(*x),
                (Some(ColBuf::F(v)), Value::F64(x)) => v.push(*x),
                (Some(ColBuf::B(v)), Value::Bool(x)) => v.push(*x),
                (slot @ None, Value::I64(x)) => {
                    let mut v = Vec::with_capacity(n.min(1 << 22));
                    v.push(*x);
                    *slot = Some(ColBuf::I(v));
                }
                (slot @ None, Value::F64(x)) => {
                    let mut v = Vec::with_capacity(n.min(1 << 22));
                    v.push(*x);
                    *slot = Some(ColBuf::F(v));
                }
                (slot @ None, Value::Bool(x)) => {
                    let mut v = Vec::with_capacity(n.min(1 << 22));
                    v.push(*x);
                    *slot = Some(ColBuf::B(v));
                }
                _ => return None,
            }
            Some(())
        };
        if plan.iter().all(|f| f.arr == plan[0].arr) {
            // Every generator reads the same source array (the common
            // AoS-input shape): one struct deref per element serves all
            // columns, and the dependent pointer chases — element header,
            // its field vector, its type's field list — are prefetched a
            // few elements ahead so the traversal is not latency-bound.
            let a = arrs[0];
            // Pointer identity of the (shared) `Arc<StructTy>` certifies the
            // cached field positions for the whole element: producers build
            // homogeneous collections off one type allocation, so after the
            // first element this is one compare instead of per-field name
            // lookups. All the arcs in `a` outlive the loop, so a stale
            // address can never alias a new allocation mid-traversal.
            let mut last_ty: *const StructTy = std::ptr::null();
            for i in start as usize..end as usize {
                #[cfg(target_arch = "x86_64")]
                unsafe {
                    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    if let Some(Value::Struct(s2)) = a.get(i + 16) {
                        _mm_prefetch(std::sync::Arc::as_ptr(s2) as *const i8, _MM_HINT_T0);
                    }
                    if let Some(Value::Struct(s2)) = a.get(i + 6) {
                        _mm_prefetch(s2.fields.as_ptr() as *const i8, _MM_HINT_T0);
                    }
                }
                let Value::Struct(s) = &a[i] else {
                    return None;
                };
                if std::sync::Arc::as_ptr(&s.ty) != last_ty {
                    let tyf = &s.ty.fields;
                    for (j, f) in plan.iter().enumerate() {
                        let cached = fpos[j];
                        match tyf.get(cached) {
                            Some((name, _)) if *name == f.field => {}
                            _ => {
                                fpos[j] =
                                    tyf.iter().position(|(name, _)| *name == f.field)?;
                            }
                        }
                    }
                    last_ty = std::sync::Arc::as_ptr(&s.ty);
                }
                for (j, col) in cols.iter_mut().enumerate() {
                    push(col, s.fields.get(fpos[j])?)?;
                }
            }
        } else {
            for i in start..end {
                for (j, f) in plan.iter().enumerate() {
                    let Value::Struct(s) = &arrs[j][i as usize] else {
                        return None;
                    };
                    let cached = fpos[j];
                    let fi = match s.ty.fields.get(cached) {
                        Some((name, _)) if *name == f.field => cached,
                        _ => {
                            let fi =
                                s.ty.fields.iter().position(|(name, _)| *name == f.field)?;
                            fpos[j] = fi;
                            fi
                        }
                    };
                    push(&mut cols[j], s.fields.get(fi)?)?;
                }
            }
        }
        Some(
            cols.into_iter()
                .map(|c| KAcc::Col(c.expect("n > 0 fills every column")))
                .collect(),
        )
    }

    /// Seal top-level accumulators into output values, one per generator.
    pub(crate) fn seal_values(
        &self,
        accs: Vec<KAcc>,
        st: &mut KState,
    ) -> Result<Vec<Value>, EvalError> {
        self.gens
            .iter()
            .zip(accs)
            .map(|(g, acc)| self.seal_gen(g, acc, st).map(scalar_value))
            .collect()
    }

    /// Seal one generator's accumulator (at index `gi`) into a value.
    pub(crate) fn seal_gen_value(
        &self,
        gi: usize,
        acc: KAcc,
        st: &mut KState,
    ) -> Result<Value, EvalError> {
        self.seal_gen(&self.gens[gi], acc, st).map(scalar_value)
    }

    fn seal_gen(&self, gen: &CGen, acc: KAcc, st: &mut KState) -> Result<Scalar, EvalError> {
        Ok(match acc {
            KAcc::Col(buf) => Scalar::V(Value::Arr(buf.seal())),
            KAcc::RedI(s) => match (s, gen.init) {
                (Some(x), _) => Scalar::I(x),
                (None, Some(r)) => Scalar::I(st.ri[r.idx as usize]),
                (None, None) => return Err(EvalError::EmptyReduce),
            },
            KAcc::RedF(s) => match (s, gen.init) {
                (Some(x), _) => Scalar::F(x),
                (None, Some(r)) => Scalar::F(st.rf[r.idx as usize]),
                (None, None) => return Err(EvalError::EmptyReduce),
            },
            KAcc::RedB(s) => match (s, gen.init) {
                (Some(x), _) => Scalar::B(x),
                (None, Some(r)) => Scalar::B(st.rb[r.idx as usize]),
                (None, None) => return Err(EvalError::EmptyReduce),
            },
            KAcc::RedV(s) => match (s, gen.init) {
                (Some(x), _) => Scalar::V(x),
                (None, Some(r)) => Scalar::V(st.value_of(r)),
                (None, None) => return Err(EvalError::EmptyReduce),
            },
            KAcc::BCol { keys, vals } => Scalar::V(Value::Buckets(Arc::new(BucketsVal::new(
                keys.into_values(),
                vals.into_iter().map(|b| Value::Arr(b.seal())).collect(),
            )))),
            KAcc::BRed { keys, vals } => Scalar::V(Value::Buckets(Arc::new(BucketsVal::new(
                keys.into_values(),
                vals.into_values(),
            )))),
        })
    }

    /// Merge two chunk accumulators for generator `gi`, `a` from the earlier
    /// chunk — exactly the tree-walking executor's `merge_pair` semantics.
    /// True when every top-level generator's merge is *exactly*
    /// associative, so regrouping chunk boundaries cannot change the
    /// output bit pattern: collects concatenate contiguous subranges in
    /// order (any cut points yield the same sequence), and reductions are
    /// recognized single-instruction integer ops whose wrapping semantics
    /// are associative (`+`, `*`, `min`, `max` — not `-`). Float
    /// reductions reassociate rounding and never qualify. The sharded
    /// data plane uses this to run such loops on region-granular tasks.
    pub(crate) fn exact_assoc(&self) -> bool {
        self.gens.iter().all(|g| match g.kind {
            GenKind::Collect | GenKind::BucketCollect => true,
            GenKind::Reduce | GenKind::BucketReduce => matches!(
                g.fast_red,
                Some(FastRed::I(IOp::Add | IOp::Mul | IOp::Min | IOp::Max))
            ),
        })
    }

    /// The divide-and-conquer extension of [`Kernel::exact_assoc`]: also
    /// certifies *selection* reducers keyed by an integer — `mux(cmp(key(a),
    /// key(b)), a, b)` with a relational comparison. Min-by/max-by over a
    /// total order with a consistent tie-break is associative, so regrouping
    /// chunk boundaries picks the same winner bit-for-bit. Float keys never
    /// qualify: every comparison against a NaN key is false, so the winner
    /// would depend on where the split lands. Mirrors the transform layer's
    /// `dnc` certification pass at bytecode level.
    pub(crate) fn dnc_assoc(&self) -> bool {
        self.gens.iter().all(|g| match g.kind {
            GenKind::Collect | GenKind::BucketCollect => true,
            GenKind::Reduce | GenKind::BucketReduce => {
                matches!(
                    g.fast_red,
                    Some(FastRed::I(IOp::Add | IOp::Mul | IOp::Min | IOp::Max))
                ) || g.reducer.as_ref().is_some_and(selection_reducer_exact)
            }
        })
    }

    pub(crate) fn merge(
        &self,
        gi: usize,
        a: KAcc,
        b: KAcc,
        st: &mut KState,
    ) -> Result<KAcc, EvalError> {
        let gen = &self.gens[gi];
        Ok(match (a, b) {
            (KAcc::Col(mut x), KAcc::Col(y)) => {
                x.extend(y)?;
                KAcc::Col(x)
            }
            (KAcc::RedI(x), KAcc::RedI(y)) => KAcc::RedI(match (x, y) {
                (Some(x), Some(y)) => Some(self.reduce_i(gen, x, y, st)?),
                (Some(x), None) => Some(x),
                (None, y) => y,
            }),
            (KAcc::RedF(x), KAcc::RedF(y)) => KAcc::RedF(match (x, y) {
                (Some(x), Some(y)) => Some(self.reduce_f(gen, x, y, st)?),
                (Some(x), None) => Some(x),
                (None, y) => y,
            }),
            (KAcc::RedB(x), KAcc::RedB(y)) => KAcc::RedB(match (x, y) {
                (Some(x), Some(y)) => Some(self.reduce_b(gen, x, y, st)?),
                (Some(x), None) => Some(x),
                (None, y) => y,
            }),
            (KAcc::RedV(x), KAcc::RedV(y)) => KAcc::RedV(match (x, y) {
                (Some(x), Some(y)) => Some(self.reduce_v(gen, x, y, st)?),
                (Some(x), None) => Some(x),
                (None, y) => y,
            }),
            (
                KAcc::BCol {
                    mut keys,
                    mut vals,
                },
                KAcc::BCol {
                    keys: bk, vals: bv, ..
                },
            ) => {
                for (k, v) in bk.key_values().into_iter().zip(bv) {
                    match keys.slot_of_value(&k) {
                        Ok(slot) => vals[slot].extend(v)?,
                        Err(_new) => vals.push(v),
                    }
                }
                KAcc::BCol { keys, vals }
            }
            (
                KAcc::BRed {
                    mut keys,
                    mut vals,
                },
                KAcc::BRed {
                    keys: bk, vals: bv, ..
                },
            ) => {
                let n = bv.len();
                for (ki, k) in bk.key_values().into_iter().enumerate() {
                    debug_assert!(ki < n);
                    let v = bv.get(ki);
                    match keys.slot_of_value(&k) {
                        Ok(slot) => {
                            let cur = vals.get(slot);
                            let next = self.reduce_scalar(gen, cur, v, st)?;
                            vals.set(slot, next)?;
                        }
                        Err(_new) => vals.push(v)?,
                    }
                }
                KAcc::BRed { keys, vals }
            }
            _ => {
                return Err(EvalError::TypeMismatch(
                    "mismatched accumulators across chunks".into(),
                ))
            }
        })
    }

    /// Merge all task accumulators for generator `gi` in one pass, in task
    /// order — the sharded data plane's "stitch once at merge, by task id".
    ///
    /// Bit-identical to folding [`Kernel::merge`] pairwise over the same
    /// sequence: both visit tasks in task order and keys in first-seen
    /// order, and both combine values with the same `reduce_*` call on the
    /// same `(accumulated, incoming)` operands — only the slot-lookup
    /// bookkeeping differs. For bucket generators with typed `i64` keys and
    /// a dense key range, the per-task key boxing and per-key hash lookups
    /// of the pairwise fold are replaced by one direct-indexed slot table;
    /// everything else falls back to the pairwise fold.
    pub(crate) fn stitch(
        &self,
        gi: usize,
        accs: Vec<KAcc>,
        st: &mut KState,
    ) -> Result<KAcc, EvalError> {
        match accs.first() {
            Some(KAcc::BRed {
                keys: KeyIx::I { .. },
                ..
            })
            | Some(KAcc::BCol {
                keys: KeyIx::I { .. },
                ..
            }) => {}
            _ => return self.stitch_pairwise(gi, accs, st),
        }
        let Some((base, slots)) = dense_slot_table(&accs) else {
            return self.stitch_pairwise(gi, accs, st);
        };
        let mut slots = slots;
        let gen = &self.gens[gi];
        // The first task's accumulator is adopted wholesale — exactly what
        // the pairwise fold does — and only its keys are registered in the
        // slot table; later tasks stitch into it.
        let mut it = accs.into_iter();
        let mut out = it.next().unwrap_or_else(|| KAcc::for_gen(gen, 0));
        match &out {
            KAcc::BRed {
                keys: KeyIx::I { keys, .. },
                ..
            }
            | KAcc::BCol {
                keys: KeyIx::I { keys, .. },
                ..
            } => {
                for (s, &k) in keys.iter().enumerate() {
                    slots[(k - base) as usize] = s as u32;
                }
            }
            _ => unreachable!("dense stitch only runs on typed-key buckets"),
        }
        for acc in it {
            match (acc, &mut out) {
                (
                    KAcc::BRed {
                        keys: KeyIx::I { keys, .. },
                        vals: bv,
                    },
                    KAcc::BRed {
                        keys: out_keys,
                        vals: out_vals,
                    },
                ) => match (&mut *out_vals, bv, gen.fast_red) {
                    // Recognized single-instruction reducers run natively
                    // over the unboxed buffers: same arithmetic op on the
                    // same operands, so still bit-identical — only the
                    // per-key block dispatch and scalar boxing disappear.
                    (RedBuf::I(ov), RedBuf::I(bv), Some(FastRed::I(op))) => {
                        for (ki, k) in keys.into_iter().enumerate() {
                            let slot = &mut slots[(k - base) as usize];
                            if *slot == u32::MAX {
                                *slot = push_typed_key(out_keys, k) as u32;
                                ov.push(bv[ki]);
                            } else {
                                let s = *slot as usize;
                                ov[s] = apply_i(op, ov[s], bv[ki]);
                            }
                        }
                    }
                    (RedBuf::F(ov), RedBuf::F(bv), Some(FastRed::F(op))) => {
                        for (ki, k) in keys.into_iter().enumerate() {
                            let slot = &mut slots[(k - base) as usize];
                            if *slot == u32::MAX {
                                *slot = push_typed_key(out_keys, k) as u32;
                                ov.push(bv[ki]);
                            } else {
                                let s = *slot as usize;
                                ov[s] = apply_f(op, ov[s], bv[ki]);
                            }
                        }
                    }
                    (out_vals, bv, _) => {
                        for (ki, k) in keys.into_iter().enumerate() {
                            let slot = &mut slots[(k - base) as usize];
                            let v = bv.get(ki);
                            if *slot == u32::MAX {
                                *slot = push_typed_key(out_keys, k) as u32;
                                out_vals.push(v)?;
                            } else {
                                let cur = out_vals.get(*slot as usize);
                                let next = self.reduce_scalar(gen, cur, v, st)?;
                                out_vals.set(*slot as usize, next)?;
                            }
                        }
                    }
                },
                (
                    KAcc::BCol {
                        keys: KeyIx::I { keys, .. },
                        vals: bv,
                    },
                    KAcc::BCol {
                        keys: out_keys,
                        vals: out_vals,
                    },
                ) => {
                    for (k, v) in keys.into_iter().zip(bv) {
                        let slot = &mut slots[(k - base) as usize];
                        if *slot == u32::MAX {
                            *slot = push_typed_key(out_keys, k) as u32;
                            out_vals.push(v);
                        } else {
                            out_vals[*slot as usize].extend(v)?;
                        }
                    }
                }
                _ => {
                    return Err(EvalError::TypeMismatch(
                        "mismatched accumulators across chunks".into(),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Fold [`Kernel::merge`] over the task accumulators in task order (the
    /// locality-blind merge, and the stitch's fallback).
    fn stitch_pairwise(
        &self,
        gi: usize,
        accs: Vec<KAcc>,
        st: &mut KState,
    ) -> Result<KAcc, EvalError> {
        let mut it = accs.into_iter();
        let mut merged = it.next().ok_or(EvalError::EmptyReduce)?;
        for acc in it {
            merged = self.merge(gi, merged, acc, st)?;
        }
        Ok(merged)
    }

    /// The per-element loop shared by the top level and nested loops;
    /// mirrors `eval_loop_accs` stmt-for-stmt (cond, then value, then key).
    fn exec_gens(
        &self,
        gens: &[CGen],
        accs: &mut [KAcc],
        st: &mut KState,
        start: i64,
        end: i64,
    ) -> Result<(), EvalError> {
        for i in start..end {
            for (gen, acc) in gens.iter().zip(accs.iter_mut()) {
                if let Some(c) = &gen.cond {
                    st.ri[c.params[0].idx as usize] = i;
                    self.exec_block(c, st)?;
                    if !st.rb[c.result.idx as usize] {
                        continue;
                    }
                }
                let vb = &gen.value;
                st.ri[vb.params[0].idx as usize] = i;
                self.exec_block(vb, st)?;
                let res = vb.result;
                match acc {
                    KAcc::Col(buf) => buf.push_result(st, res),
                    KAcc::RedI(state) => {
                        let x = st.ri[res.idx as usize];
                        let next = match state.take() {
                            Some(cur) => self.reduce_i(gen, cur, x, st)?,
                            None => match gen.init {
                                Some(r) => {
                                    let i0 = st.ri[r.idx as usize];
                                    self.reduce_i(gen, i0, x, st)?
                                }
                                None => x,
                            },
                        };
                        *state = Some(next);
                    }
                    KAcc::RedF(state) => {
                        let x = st.rf[res.idx as usize];
                        let next = match state.take() {
                            Some(cur) => self.reduce_f(gen, cur, x, st)?,
                            None => match gen.init {
                                Some(r) => {
                                    let i0 = st.rf[r.idx as usize];
                                    self.reduce_f(gen, i0, x, st)?
                                }
                                None => x,
                            },
                        };
                        *state = Some(next);
                    }
                    KAcc::RedB(state) => {
                        let x = st.rb[res.idx as usize];
                        let next = match state.take() {
                            Some(cur) => self.reduce_b(gen, cur, x, st)?,
                            None => match gen.init {
                                Some(r) => {
                                    let i0 = st.rb[r.idx as usize];
                                    self.reduce_b(gen, i0, x, st)?
                                }
                                None => x,
                            },
                        };
                        *state = Some(next);
                    }
                    KAcc::RedV(state) => {
                        let x = st.rv[res.idx as usize].clone();
                        let next = match state.take() {
                            Some(cur) => self.reduce_v(gen, cur, x, st)?,
                            None => match gen.init {
                                Some(r) => {
                                    let i0 = st.value_of(r);
                                    self.reduce_v(gen, i0, x, st)?
                                }
                                None => x,
                            },
                        };
                        *state = Some(next);
                    }
                    KAcc::BCol { keys, vals } => {
                        let kb = gen.key.as_ref().expect("bucket gen has key");
                        st.ri[kb.params[0].idx as usize] = i;
                        self.exec_block(kb, st)?;
                        match keys.slot_of_result(st, kb.result) {
                            Ok(slot) => vals[slot].push_result(st, res),
                            Err(_new) => {
                                let mut buf = ColBuf::new(gen.val_class, 1);
                                buf.push_result(st, res);
                                vals.push(buf);
                            }
                        }
                    }
                    KAcc::BRed { keys, vals } => {
                        let kb = gen.key.as_ref().expect("bucket gen has key");
                        st.ri[kb.params[0].idx as usize] = i;
                        self.exec_block(kb, st)?;
                        match keys.slot_of_result(st, kb.result) {
                            Ok(slot) => match (&mut *vals, res.class) {
                                // Unboxed fast paths for scalar bucket sums.
                                (RedBuf::I(v), Class::I) => {
                                    let x = st.ri[res.idx as usize];
                                    v[slot] = self.reduce_i(gen, v[slot], x, st)?;
                                }
                                (RedBuf::F(v), Class::F) => {
                                    let x = st.rf[res.idx as usize];
                                    v[slot] = self.reduce_f(gen, v[slot], x, st)?;
                                }
                                _ => {
                                    let cur = vals.get(slot);
                                    let x = st.read_scalar(res);
                                    let next = self.reduce_scalar(gen, cur, x, st)?;
                                    vals.set(slot, next)?;
                                }
                            },
                            Err(_new) => vals.push(st.read_scalar(res))?,
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_block(&self, b: &CBlock, st: &mut KState) -> Result<(), EvalError> {
        for ins in &b.instrs {
            self.step(ins, st)?;
        }
        Ok(())
    }

    fn reduce_i(&self, gen: &CGen, a: i64, b: i64, st: &mut KState) -> Result<i64, EvalError> {
        if let Some(FastRed::I(op)) = gen.fast_red {
            return Ok(apply_i(op, a, b));
        }
        let rb = gen.reducer.as_ref().expect("reduce gen has reducer");
        st.ri[rb.params[0].idx as usize] = a;
        st.ri[rb.params[1].idx as usize] = b;
        self.exec_block(rb, st)?;
        Ok(st.ri[rb.result.idx as usize])
    }

    fn reduce_f(&self, gen: &CGen, a: f64, b: f64, st: &mut KState) -> Result<f64, EvalError> {
        if let Some(FastRed::F(op)) = gen.fast_red {
            return Ok(apply_f(op, a, b));
        }
        let rb = gen.reducer.as_ref().expect("reduce gen has reducer");
        st.rf[rb.params[0].idx as usize] = a;
        st.rf[rb.params[1].idx as usize] = b;
        self.exec_block(rb, st)?;
        Ok(st.rf[rb.result.idx as usize])
    }

    fn reduce_b(&self, gen: &CGen, a: bool, b: bool, st: &mut KState) -> Result<bool, EvalError> {
        let rb = gen.reducer.as_ref().expect("reduce gen has reducer");
        st.rb[rb.params[0].idx as usize] = a;
        st.rb[rb.params[1].idx as usize] = b;
        self.exec_block(rb, st)?;
        Ok(st.rb[rb.result.idx as usize])
    }

    fn reduce_v(&self, gen: &CGen, a: Value, b: Value, st: &mut KState) -> Result<Value, EvalError> {
        let rb = gen.reducer.as_ref().expect("reduce gen has reducer");
        st.rv[rb.params[0].idx as usize] = a;
        st.rv[rb.params[1].idx as usize] = b;
        self.exec_block(rb, st)?;
        Ok(st.rv[rb.result.idx as usize].clone())
    }

    fn reduce_scalar(
        &self,
        gen: &CGen,
        a: Scalar,
        b: Scalar,
        st: &mut KState,
    ) -> Result<Scalar, EvalError> {
        match (a, b) {
            (Scalar::I(a), Scalar::I(b)) => Ok(Scalar::I(self.reduce_i(gen, a, b, st)?)),
            (Scalar::F(a), Scalar::F(b)) => Ok(Scalar::F(self.reduce_f(gen, a, b, st)?)),
            (Scalar::B(a), Scalar::B(b)) => Ok(Scalar::B(self.reduce_b(gen, a, b, st)?)),
            (Scalar::V(a), Scalar::V(b)) => Ok(Scalar::V(self.reduce_v(gen, a, b, st)?)),
            _ => Err(EvalError::TypeMismatch(
                "mismatched accumulators across chunks".into(),
            )),
        }
    }

    fn run_cloop(&self, cl: &CLoop, st: &mut KState) -> Result<(), EvalError> {
        let size = st.ri[cl.size as usize];
        let hint = size.max(0) as usize;
        let mut accs: Vec<KAcc> = cl.gens.iter().map(|g| KAcc::for_gen(g, hint)).collect();
        self.exec_gens(&cl.gens, &mut accs, st, 0, size)?;
        for ((gen, dst), acc) in cl.gens.iter().zip(&cl.dsts).zip(accs) {
            let s = self.seal_gen(gen, acc, st)?;
            st.write_scalar(*dst, s)?;
        }
        Ok(())
    }

    fn step(&self, ins: &Instr, st: &mut KState) -> Result<(), EvalError> {
        match ins {
            Instr::ConstI { dst, v } => st.ri[*dst as usize] = *v,
            Instr::ConstF { dst, v } => st.rf[*dst as usize] = *v,
            Instr::ConstB { dst, v } => st.rb[*dst as usize] = *v,
            Instr::ConstV { dst, v } => st.rv[*dst as usize] = v.clone(),
            Instr::BinI { op, dst, a, b } => {
                st.ri[*dst as usize] = apply_i(*op, st.ri[*a as usize], st.ri[*b as usize])
            }
            Instr::DivI { dst, a, b } => {
                let (x, y) = (st.ri[*a as usize], st.ri[*b as usize]);
                if y == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                st.ri[*dst as usize] = x / y;
            }
            Instr::RemI { dst, a, b } => {
                let (x, y) = (st.ri[*a as usize], st.ri[*b as usize]);
                if y == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                st.ri[*dst as usize] = x % y;
            }
            Instr::BinF { op, dst, a, b } => {
                st.rf[*dst as usize] = apply_f(*op, st.rf[*a as usize], st.rf[*b as usize])
            }
            Instr::NegI { dst, a } => st.ri[*dst as usize] = -st.ri[*a as usize],
            Instr::NegF { dst, a } => st.rf[*dst as usize] = -st.rf[*a as usize],
            Instr::CmpI { op, dst, a, b } => {
                let (x, y) = (st.ri[*a as usize], st.ri[*b as usize]);
                st.rb[*dst as usize] = apply_cmp(*op, x, y);
            }
            Instr::CmpF { op, dst, a, b } => {
                let (x, y) = (st.rf[*a as usize], st.rf[*b as usize]);
                st.rb[*dst as usize] = apply_cmp(*op, x, y);
            }
            Instr::CmpB { op, dst, a, b } => {
                let (x, y) = (st.rb[*a as usize], st.rb[*b as usize]);
                st.rb[*dst as usize] = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    _ => unreachable!("only Eq/Ne compiled for bools"),
                };
            }
            Instr::AndB { dst, a, b } => {
                st.rb[*dst as usize] = st.rb[*a as usize] && st.rb[*b as usize]
            }
            Instr::OrB { dst, a, b } => {
                st.rb[*dst as usize] = st.rb[*a as usize] || st.rb[*b as usize]
            }
            Instr::NotB { dst, a } => st.rb[*dst as usize] = !st.rb[*a as usize],
            Instr::MuxI { dst, c, a, b } => {
                st.ri[*dst as usize] = if st.rb[*c as usize] {
                    st.ri[*a as usize]
                } else {
                    st.ri[*b as usize]
                }
            }
            Instr::MuxF { dst, c, a, b } => {
                st.rf[*dst as usize] = if st.rb[*c as usize] {
                    st.rf[*a as usize]
                } else {
                    st.rf[*b as usize]
                }
            }
            Instr::MuxB { dst, c, a, b } => {
                st.rb[*dst as usize] = if st.rb[*c as usize] {
                    st.rb[*a as usize]
                } else {
                    st.rb[*b as usize]
                }
            }
            Instr::MuxV { dst, c, a, b } => {
                let v = if st.rb[*c as usize] {
                    st.rv[*a as usize].clone()
                } else {
                    st.rv[*b as usize].clone()
                };
                st.rv[*dst as usize] = v;
            }
            Instr::MathF { f, dst, a } => {
                st.rf[*dst as usize] = eval_math(*f, st.rf[*a as usize])
            }
            Instr::MathV { f, dst, a } => {
                let x = st
                    .value_of(*a)
                    .as_f64()
                    .ok_or_else(|| EvalError::TypeMismatch("math on non-float".into()))?;
                st.rf[*dst as usize] = eval_math(*f, x);
            }
            Instr::CastIF { dst, a } => st.rf[*dst as usize] = st.ri[*a as usize] as f64,
            Instr::CastFI { dst, a } => st.ri[*dst as usize] = st.rf[*a as usize] as i64,
            Instr::CastDyn { to, dst, a } => {
                let v = st.value_of(*a);
                let out = match (to, v) {
                    (Ty::F64, Value::I64(i)) => Value::F64(i as f64),
                    (Ty::F64, Value::F64(f)) => Value::F64(f),
                    (Ty::I64, Value::F64(f)) => Value::I64(f as i64),
                    (Ty::I64, Value::I64(i)) => Value::I64(i),
                    (t, v) => return Err(EvalError::TypeMismatch(format!("cast {v:?} to {t}"))),
                };
                st.write_value(*dst, out)?;
            }
            Instr::LenA { dst, a } => {
                let v = st.value_of(*a);
                let arr = v
                    .as_arr()
                    .ok_or_else(|| EvalError::TypeMismatch("len of non-array".into()))?;
                st.ri[*dst as usize] = arr.len() as i64;
            }
            Instr::SizeI { dst, a } => {
                st.ri[*dst as usize] = st
                    .value_of(*a)
                    .as_i64()
                    .ok_or_else(|| EvalError::TypeMismatch("loop size".into()))?;
            }
            Instr::CondB { dst, a } => {
                st.rb[*dst as usize] = st
                    .value_of(*a)
                    .as_bool()
                    .ok_or_else(|| EvalError::TypeMismatch("condition".into()))?;
            }
            Instr::ReadVI { dst, arr, idx } => {
                let i = st.ri[*idx as usize];
                let out = match &st.rv[*arr as usize] {
                    Value::Arr(ArrayVal::I64(v)) => v[bounds(i, v.len())?],
                    other => read_array(other, &Value::I64(i))?
                        .as_i64()
                        .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))?,
                };
                st.ri[*dst as usize] = out;
            }
            Instr::ReadVF { dst, arr, idx } => {
                let i = st.ri[*idx as usize];
                let out = match &st.rv[*arr as usize] {
                    Value::Arr(ArrayVal::F64(v)) => v[bounds(i, v.len())?],
                    other => read_array(other, &Value::I64(i))?
                        .as_f64()
                        .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))?,
                };
                st.rf[*dst as usize] = out;
            }
            Instr::ReadVB { dst, arr, idx } => {
                let i = st.ri[*idx as usize];
                let out = match &st.rv[*arr as usize] {
                    Value::Arr(ArrayVal::Bool(v)) => v[bounds(i, v.len())?],
                    other => read_array(other, &Value::I64(i))?
                        .as_bool()
                        .ok_or_else(|| EvalError::TypeMismatch("typed array read".into()))?,
                };
                st.rb[*dst as usize] = out;
            }
            Instr::ReadVV { dst, arr, idx } => {
                let i = st.ri[*idx as usize];
                let out = read_array(&st.rv[*arr as usize], &Value::I64(i))?;
                st.rv[*dst as usize] = out;
            }
            Instr::ReadDyn { dst, arr, idx } => {
                let a = st.value_of(*arr);
                let i = st.value_of(*idx);
                st.rv[*dst as usize] = read_array(&a, &i)?;
            }
            Instr::PrimV { op, dst, args } => {
                let vs: Vec<Value> = args.iter().map(|r| st.value_of(*r)).collect();
                let out = eval_prim(*op, &vs)?;
                st.write_value(*dst, out)?;
            }
            Instr::TupleNewV { dst, args } => {
                let vs: Vec<Value> = args.iter().map(|r| st.value_of(*r)).collect();
                st.rv[*dst as usize] = Value::Tuple(Arc::new(vs));
            }
            Instr::TupleGetI { dst, t, idx } => {
                st.ri[*dst as usize] = tuple_component(&st.rv[*t as usize], *idx)?
                    .as_i64()
                    .ok_or_else(|| EvalError::TypeMismatch("typed tuple read".into()))?;
            }
            Instr::TupleGetF { dst, t, idx } => {
                st.rf[*dst as usize] = tuple_component(&st.rv[*t as usize], *idx)?
                    .as_f64()
                    .ok_or_else(|| EvalError::TypeMismatch("typed tuple read".into()))?;
            }
            Instr::TupleGetB { dst, t, idx } => {
                st.rb[*dst as usize] = tuple_component(&st.rv[*t as usize], *idx)?
                    .as_bool()
                    .ok_or_else(|| EvalError::TypeMismatch("typed tuple read".into()))?;
            }
            Instr::TupleGetV { dst, t, idx } => {
                let v = tuple_component(&st.rv[*t as usize], *idx)?.clone();
                st.rv[*dst as usize] = v;
            }
            Instr::TupleGetDyn { dst, t, idx } => {
                let v = st.value_of(*t);
                let out = tuple_component(&v, *idx)?.clone();
                st.rv[*dst as usize] = out;
            }
            Instr::StructNewV { dst, ty, args } => {
                let vs: Vec<Value> = args.iter().map(|r| st.value_of(*r)).collect();
                st.rv[*dst as usize] = Value::Struct(Arc::new(StructVal {
                    ty: ty.clone(),
                    fields: vs,
                }));
            }
            Instr::StructGetIdx { dst, obj, idx } => {
                let out = match &st.rv[*obj as usize] {
                    Value::Struct(s) => s
                        .fields
                        .get(*idx as usize)
                        .cloned()
                        .ok_or_else(|| EvalError::TypeMismatch("typed field read".into()))?,
                    other => {
                        return Err(EvalError::TypeMismatch(format!(
                            "field read from {other:?}"
                        )))
                    }
                };
                st.write_value(*dst, out)?;
            }
            Instr::StructGetDyn { dst, obj, name } => {
                let v = st.value_of(*obj);
                let out = match v {
                    Value::Struct(s) => s
                        .field(name)
                        .cloned()
                        .ok_or_else(|| EvalError::TypeMismatch(format!("no field {name}")))?,
                    other => {
                        return Err(EvalError::TypeMismatch(format!(
                            "field read from {other:?}"
                        )))
                    }
                };
                st.rv[*dst as usize] = out;
            }
            Instr::FlattenV { dst, a } => {
                let v = st.value_of(*a);
                let outer = v
                    .as_arr()
                    .ok_or_else(|| EvalError::TypeMismatch("flatten of non-array".into()))?;
                let mut out = Vec::new();
                for i in 0..outer.len() {
                    let inner = outer.get(i).expect("in range");
                    let inner = inner
                        .as_arr()
                        .ok_or_else(|| EvalError::TypeMismatch("flatten of non-nested".into()))?;
                    for j in 0..inner.len() {
                        out.push(inner.get(j).expect("in range"));
                    }
                }
                st.rv[*dst as usize] = Value::Arr(seal_array(out));
            }
            Instr::BucketValuesV { dst, a } => {
                let out = match st.value_of(*a) {
                    Value::Buckets(b) => Value::Arr(seal_array(b.vals.clone())),
                    other => {
                        return Err(EvalError::TypeMismatch(format!(
                            "bucketValues of {other:?}"
                        )))
                    }
                };
                st.rv[*dst as usize] = out;
            }
            Instr::BucketKeysV { dst, a } => {
                let out = match st.value_of(*a) {
                    Value::Buckets(b) => Value::Arr(seal_array(b.keys.clone())),
                    other => {
                        return Err(EvalError::TypeMismatch(format!("bucketKeys of {other:?}")))
                    }
                };
                st.rv[*dst as usize] = out;
            }
            Instr::BucketLenV { dst, a } => {
                let out = match st.value_of(*a) {
                    Value::Buckets(b) => b.len() as i64,
                    other => {
                        return Err(EvalError::TypeMismatch(format!("bucketLen of {other:?}")))
                    }
                };
                st.ri[*dst as usize] = out;
            }
            Instr::BucketGetV { dst, b, k, default } => {
                let bv = st.value_of(*b);
                let kv = st.value_of(*k);
                let out = match bv {
                    Value::Buckets(bk) => match bk.get(&kv) {
                        Some(v) => v.clone(),
                        None => match default {
                            Some(d) => st.value_of(*d),
                            None => return Err(EvalError::MissingBucket(kv.to_string())),
                        },
                    },
                    other => {
                        return Err(EvalError::TypeMismatch(format!("bucketGet of {other:?}")))
                    }
                };
                st.rv[*dst as usize] = out;
            }
            Instr::CallExtern { dst, ext, args } => {
                let decl = &self.externs[*ext as usize];
                let f = st.ext[*ext as usize]
                    .clone()
                    .ok_or_else(|| EvalError::UnknownExtern(decl.name.clone()))?;
                let vs: Vec<Value> = args.iter().map(|r| st.value_of(*r)).collect();
                let out = f(&vs)?;
                check_extern_ret(&decl.name, &decl.ret, &out)?;
                st.write_value(*dst, out)?;
            }
            Instr::Loop(li) => self.run_cloop(&self.loops[*li as usize], st)?,
        }
        Ok(())
    }
}

fn tuple_component(v: &Value, idx: u32) -> Result<&Value, EvalError> {
    match v {
        Value::Tuple(vs) => vs
            .get(idx as usize)
            .ok_or_else(|| EvalError::TypeMismatch("tuple index".into())),
        other => Err(EvalError::TypeMismatch(format!(
            "tuple projection from {other:?}"
        ))),
    }
}

/// True when `rb` is a selection reducer over an integer key: either
/// `mux(a <rel> b, a, b)` picking one of two `i64` accumulands, or
/// argmin/argmax over virtual tuples comparing the same `i64` component
/// of each accumuland. Both shapes return one param unmodified, so the
/// merge is a pure choice and associativity follows from the total order
/// on `i64` plus the consistent tie-break the comparison direction fixes.
fn selection_reducer_exact(rb: &CBlock) -> bool {
    let [p0, p1] = rb.params[..] else { return false };
    if p0.idx == p1.idx || p0.class != p1.class || rb.result.class != p0.class {
        return false;
    }
    let pair = |x: u16, y: u16| (x == p0.idx && y == p1.idx) || (x == p1.idx && y == p0.idx);
    let rel = |op: &CmpOp| matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
    match (p0.class, rb.instrs.as_slice()) {
        (
            Class::I,
            [Instr::CmpI { op, dst: c, a, b }, Instr::MuxI { dst, c: mc, a: ma, b: mb }],
        ) => rel(op) && pair(*a, *b) && mc == c && pair(*ma, *mb) && *dst == rb.result.idx,
        (
            Class::V,
            [Instr::TupleGetI { dst: k0, t: t0, idx: i0 }, Instr::TupleGetI { dst: k1, t: t1, idx: i1 }, Instr::CmpI { op, dst: c, a, b }, Instr::MuxV { dst, c: mc, a: ma, b: mb }],
        ) => {
            // Map each comparison operand back to the accumuland whose key
            // it extracts; the pair check then demands one key per param.
            let key_param = |k: u16| {
                if k == *k0 {
                    Some(*t0)
                } else if k == *k1 {
                    Some(*t1)
                } else {
                    None
                }
            };
            rel(op)
                && i0 == i1
                && k0 != k1
                && pair(*t0, *t1)
                && matches!((key_param(*a), key_param(*b)), (Some(x), Some(y)) if pair(x, y))
                && mc == c
                && pair(*ma, *mb)
                && *dst == rb.result.idx
        }
        _ => false,
    }
}

#[inline]
fn apply_i(op: IOp, a: i64, b: i64) -> i64 {
    match op {
        IOp::Add => a.wrapping_add(b),
        IOp::Sub => a.wrapping_sub(b),
        IOp::Mul => a.wrapping_mul(b),
        IOp::Min => a.min(b),
        IOp::Max => a.max(b),
    }
}

#[inline]
fn apply_f(op: FOp, a: f64, b: f64) -> f64 {
    match op {
        FOp::Add => a + b,
        FOp::Sub => a - b,
        FOp::Mul => a * b,
        FOp::Div => a / b,
        FOp::Min => a.min(b),
        FOp::Max => a.max(b),
    }
}

#[inline]
fn apply_cmp<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Why a multiloop could not be compiled; the loop falls back to the
/// tree-walker, which is always semantically safe.
#[derive(Debug)]
pub(crate) struct Reject(pub &'static str);

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not compilable: {}", self.0)
    }
}

#[derive(Clone)]
struct SymInfo {
    reg: Reg,
    vty: VTy,
    /// True when the symbol's value is the same for every loop element
    /// (free variable, constant, or computed only from invariants).
    inv: bool,
}

struct Compiler<'e> {
    env: &'e Env,
    n: [usize; 4],
    syms: HashMap<Sym, SymInfo>,
    consts: HashMap<Const, (Reg, VTy)>,
    preamble: Vec<Instr>,
    loops: Vec<CLoop>,
    free: Vec<(Sym, Reg)>,
    externs: Vec<ExternDecl>,
}

/// Free variables a multiloop's generators reference, in `Sym` order —
/// the binding order is part of the kernel ABI and must match the cache
/// key's `VTy` order.
pub(crate) fn loop_free_syms(ml: &Multiloop) -> BTreeSet<Sym> {
    let mut out = BTreeSet::new();
    for g in &ml.gens {
        for b in g.blocks() {
            out.extend(free_syms(b));
        }
        if let Gen::Reduce { init: Some(e), .. } | Gen::BucketReduce { init: Some(e), .. } = g {
            if let Exp::Sym(s) = e {
                out.insert(*s);
            }
        }
    }
    out
}

/// Compile a multiloop against the refined types of the current
/// environment. The top-level `size` is *not* compiled — callers evaluate
/// it and drive [`Kernel::run_range`] with explicit bounds (that is how the
/// parallel executor feeds chunk subranges to the same kernel).
pub(crate) fn compile_multiloop(ml: &Multiloop, env: &Env) -> Result<Kernel, Reject> {
    let mut c = Compiler {
        env,
        n: [0; 4],
        syms: HashMap::new(),
        consts: HashMap::new(),
        preamble: Vec::new(),
        loops: Vec::new(),
        free: Vec::new(),
        externs: Vec::new(),
    };
    for sym in loop_free_syms(ml) {
        c.bind_free(sym)?;
    }
    let mut gens = Vec::with_capacity(ml.gens.len());
    for g in &ml.gens {
        gens.push(c.compile_gen(g)?.0);
    }
    let scatter = scatter_plan(ml, &c);
    let mut kernel = Kernel {
        gens,
        preamble: c.preamble,
        loops: c.loops,
        free: c.free,
        externs: c.externs,
        n_regs: c.n,
        batchable: false,
        batch_reject: None,
        native: std::sync::OnceLock::new(),
        seg_plans: Vec::new(),
        scatter,
    };
    let (reject, seg_plans) = batch::batch_certify(&kernel);
    kernel.batch_reject = reject;
    kernel.seg_plans = seg_plans;
    kernel.batchable = kernel.batch_reject.is_none();
    Ok(kernel)
}

/// Recognize the runtime SoA pass's scatter shape: every generator is an
/// unconditional `Collect` whose value block is exactly
/// `e = arr(i); f = e.field; => f` with `arr` a free variable refined to a
/// boxed array. Anything else (conditions, extra statements, typed
/// arrays) keeps the generic path.
fn scatter_plan(ml: &Multiloop, c: &Compiler) -> Option<Vec<ScatterField>> {
    let mut plan = Vec::with_capacity(ml.gens.len());
    for g in &ml.gens {
        let Gen::Collect { cond: None, value } = g else {
            return None;
        };
        if value.params.len() != 1 || value.stmts.len() != 2 {
            return None;
        }
        let p = value.params[0];
        let (read, get) = (&value.stmts[0], &value.stmts[1]);
        let Def::ArrayRead {
            arr: Exp::Sym(arr),
            index: Exp::Sym(ix),
        } = &read.def
        else {
            return None;
        };
        let Def::StructGet {
            obj: Exp::Sym(obj),
            field,
        } = &get.def
        else {
            return None;
        };
        if *ix != p || *obj != read.lhs[0] || value.result != Exp::Sym(get.lhs[0]) {
            return None;
        }
        let info = c.syms.get(arr)?;
        if info.reg.class != Class::V || !matches!(info.vty, VTy::ArrGen) {
            return None;
        }
        plan.push(ScatterField {
            arr: info.reg.idx,
            field: field.clone(),
        });
    }
    (!plan.is_empty()).then_some(plan)
}

impl<'e> Compiler<'e> {
    fn alloc(&mut self, class: Class) -> Result<Reg, Reject> {
        let slot = match class {
            Class::I => &mut self.n[0],
            Class::F => &mut self.n[1],
            Class::B => &mut self.n[2],
            Class::V => &mut self.n[3],
        };
        if *slot > u16::MAX as usize {
            return Err(Reject("register file overflow"));
        }
        let idx = *slot as u16;
        *slot += 1;
        Ok(Reg { class, idx })
    }

    fn define(&mut self, sym: Sym, reg: Reg, vty: VTy, inv: bool) -> Result<(), Reject> {
        if self.syms.insert(sym, SymInfo { reg, vty, inv }).is_some() {
            return Err(Reject("symbol bound twice"));
        }
        Ok(())
    }

    fn bind_free(&mut self, sym: Sym) -> Result<(), Reject> {
        let v = self
            .env
            .get(sym.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(Reject("free variable not bound in environment"))?;
        let vty = VTy::of(v, 0);
        let reg = self.alloc(vty.class())?;
        self.define(sym, reg, vty, true)?;
        self.free.push((sym, reg));
        Ok(())
    }

    /// Resolve an operand expression to a register. Constants are
    /// deduplicated and materialized once in the preamble.
    fn operand(&mut self, e: &Exp) -> Result<(Reg, VTy, bool), Reject> {
        match e {
            Exp::Sym(s) => {
                let info = self
                    .syms
                    .get(s)
                    .ok_or(Reject("reference to undefined symbol"))?;
                Ok((info.reg, info.vty.clone(), info.inv))
            }
            Exp::Const(c) => {
                if let Some((reg, vty)) = self.consts.get(c) {
                    return Ok((*reg, vty.clone(), true));
                }
                let (instr, reg, vty) = match c {
                    Const::I64(v) => {
                        let r = self.alloc(Class::I)?;
                        (Instr::ConstI { dst: r.idx, v: *v }, r, VTy::I)
                    }
                    Const::F64(v) => {
                        let r = self.alloc(Class::F)?;
                        (Instr::ConstF { dst: r.idx, v: *v }, r, VTy::F)
                    }
                    Const::Bool(v) => {
                        let r = self.alloc(Class::B)?;
                        (Instr::ConstB { dst: r.idx, v: *v }, r, VTy::B)
                    }
                    Const::Str(s) => {
                        let r = self.alloc(Class::V)?;
                        (
                            Instr::ConstV {
                                dst: r.idx,
                                v: Value::Str(s.clone()),
                            },
                            r,
                            VTy::Str,
                        )
                    }
                    Const::Unit => {
                        let r = self.alloc(Class::V)?;
                        (
                            Instr::ConstV {
                                dst: r.idx,
                                v: Value::Unit,
                            },
                            r,
                            VTy::Unit,
                        )
                    }
                };
                self.preamble.push(instr);
                self.consts.insert(c.clone(), (reg, vty.clone()));
                Ok((reg, vty, true))
            }
        }
    }

    fn compile_gen(&mut self, g: &Gen) -> Result<(CGen, VTy), Reject> {
        let cond = match g.cond() {
            Some(cb) => {
                let (mut blk, _vty) = self.compile_block(cb, &[VTy::I])?;
                if blk.result.class != Class::B {
                    // The tree-walker coerces with `as_bool` and errors with
                    // "condition"; CondB replicates that at runtime.
                    let dst = self.alloc(Class::B)?;
                    blk.instrs.push(Instr::CondB {
                        dst: dst.idx,
                        a: blk.result,
                    });
                    blk.result = dst;
                }
                Some(blk)
            }
            None => None,
        };
        let (value, val_vty) = self.compile_block(g.value(), &[VTy::I])?;
        let val_class = value.result.class;
        let key = match g.key() {
            Some(kb) => Some(self.compile_block(kb, &[VTy::I])?.0),
            None => None,
        };
        let key_typed = key.as_ref().is_some_and(|k| k.result.class == Class::I);
        let (reducer, fast_red) = match g.reducer() {
            Some(rb) => {
                let (blk, _rty) = self.compile_block(rb, &[val_vty.clone(), val_vty.clone()])?;
                if blk.result.class != val_class {
                    return Err(Reject("reducer result class differs from value class"));
                }
                let fr = recognize_fast_red(&blk);
                (Some(blk), fr)
            }
            None => (None, None),
        };
        // Only `Reduce` consults its explicit identity at runtime (empty
        // reductions and chunk seeding); the tree-walker never reads a
        // `BucketReduce` init, so compiling one would change semantics.
        let init = match g {
            Gen::Reduce { init: Some(e), .. } => {
                let (reg, _vty, _inv) = self.operand(e)?;
                if reg.class != val_class {
                    return Err(Reject("reduce identity class differs from value class"));
                }
                Some(reg)
            }
            _ => None,
        };
        Ok((
            CGen {
                kind: g.kind(),
                cond,
                key,
                value,
                reducer,
                init,
                val_class,
                key_typed,
                fast_red,
            },
            val_vty,
        ))
    }

    fn compile_block(&mut self, b: &Block, param_vtys: &[VTy]) -> Result<(CBlock, VTy), Reject> {
        if b.params.len() != param_vtys.len() {
            return Err(Reject("block parameter arity mismatch"));
        }
        let mut params = Vec::with_capacity(b.params.len());
        for (p, vty) in b.params.iter().zip(param_vtys) {
            let reg = self.alloc(vty.class())?;
            self.define(*p, reg, vty.clone(), false)?;
            params.push(reg);
        }
        let mut instrs = Vec::new();
        for stmt in &b.stmts {
            self.compile_stmt(stmt, &mut instrs)?;
        }
        let (result, vty, _inv) = self.operand(&b.result)?;
        Ok((
            CBlock {
                params,
                instrs,
                result,
            },
            vty,
        ))
    }

    /// Emit one instruction: into the preamble when it is infallible and all
    /// its operands are loop-invariant, into the block body otherwise.
    /// Returns whether it was hoisted (= the result is invariant).
    fn emit(&mut self, out: &mut Vec<Instr>, hoistable: bool, inv: bool, instr: Instr) -> bool {
        if hoistable && inv {
            self.preamble.push(instr);
            true
        } else {
            out.push(instr);
            false
        }
    }

    fn compile_stmt(&mut self, stmt: &dmll_core::Stmt, out: &mut Vec<Instr>) -> Result<(), Reject> {
        if let Def::Loop(ml) = &stmt.def {
            return self.compile_nested_loop(stmt, ml, out);
        }
        if stmt.lhs.len() != 1 {
            return Err(Reject("non-loop statement with multiple bindings"));
        }
        let lhs = stmt.lhs[0];
        let (reg, vty, inv) = self.compile_def(&stmt.def, out)?;
        self.define(lhs, reg, vty, inv)
    }

    fn compile_def(
        &mut self,
        def: &Def,
        out: &mut Vec<Instr>,
    ) -> Result<(Reg, VTy, bool), Reject> {
        match def {
            Def::Prim { op, args } => {
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(self.operand(a)?);
                }
                self.compile_prim(*op, &ops, out)
            }
            Def::Math { f, arg } => {
                let (a, _vty, inv) = self.operand(arg)?;
                if a.class == Class::F {
                    let dst = self.alloc(Class::F)?;
                    let hoisted = self.emit(
                        out,
                        true,
                        inv,
                        Instr::MathF {
                            f: *f,
                            dst: dst.idx,
                            a: a.idx,
                        },
                    );
                    Ok((dst, VTy::F, hoisted))
                } else {
                    let dst = self.alloc(Class::F)?;
                    out.push(Instr::MathV {
                        f: *f,
                        dst: dst.idx,
                        a,
                    });
                    Ok((dst, VTy::F, false))
                }
            }
            Def::Cast { to, value } => {
                let (a, vty, inv) = self.operand(value)?;
                match (to, a.class) {
                    // Identity casts are register aliases: zero instructions.
                    (Ty::I64, Class::I) => Ok((a, VTy::I, inv)),
                    (Ty::F64, Class::F) => Ok((a, VTy::F, inv)),
                    (Ty::F64, Class::I) => {
                        let dst = self.alloc(Class::F)?;
                        let h = self.emit(
                            out,
                            true,
                            inv,
                            Instr::CastIF {
                                dst: dst.idx,
                                a: a.idx,
                            },
                        );
                        Ok((dst, VTy::F, h))
                    }
                    (Ty::I64, Class::F) => {
                        let dst = self.alloc(Class::I)?;
                        let h = self.emit(
                            out,
                            true,
                            inv,
                            Instr::CastFI {
                                dst: dst.idx,
                                a: a.idx,
                            },
                        );
                        Ok((dst, VTy::I, h))
                    }
                    _ => {
                        let _ = vty;
                        let class = match to {
                            Ty::I64 => Class::I,
                            Ty::F64 => Class::F,
                            _ => Class::V,
                        };
                        let dst = self.alloc(class)?;
                        out.push(Instr::CastDyn {
                            to: to.clone(),
                            dst,
                            a,
                        });
                        let vty = match class {
                            Class::I => VTy::I,
                            Class::F => VTy::F,
                            _ => VTy::Gen,
                        };
                        Ok((dst, vty, false))
                    }
                }
            }
            Def::ArrayLen(e) => {
                let (a, vty, inv) = self.operand(e)?;
                let dst = self.alloc(Class::I)?;
                // Infallible (thus hoistable) only when the operand is
                // certainly an array.
                let certain = matches!(vty, VTy::Arr(_) | VTy::ArrGen);
                let h = self.emit(out, certain, inv, Instr::LenA { dst: dst.idx, a });
                Ok((dst, VTy::I, h))
            }
            Def::ArrayRead { arr, index } => {
                let (a, avty, _ai) = self.operand(arr)?;
                let (i, _ivty, _ii) = self.operand(index)?;
                if a.class == Class::V && i.class == Class::I {
                    if let VTy::Arr(elem) = &avty {
                        let (class, vty) = match **elem {
                            VTy::I => (Class::I, VTy::I),
                            VTy::F => (Class::F, VTy::F),
                            _ => (Class::B, VTy::B),
                        };
                        let dst = self.alloc(class)?;
                        let instr = match class {
                            Class::I => Instr::ReadVI {
                                dst: dst.idx,
                                arr: a.idx,
                                idx: i.idx,
                            },
                            Class::F => Instr::ReadVF {
                                dst: dst.idx,
                                arr: a.idx,
                                idx: i.idx,
                            },
                            _ => Instr::ReadVB {
                                dst: dst.idx,
                                arr: a.idx,
                                idx: i.idx,
                            },
                        };
                        out.push(instr);
                        return Ok((dst, vty, false));
                    }
                    let dst = self.alloc(Class::V)?;
                    out.push(Instr::ReadVV {
                        dst: dst.idx,
                        arr: a.idx,
                        idx: i.idx,
                    });
                    return Ok((dst, VTy::Gen, false));
                }
                let dst = self.alloc(Class::V)?;
                out.push(Instr::ReadDyn {
                    dst: dst.idx,
                    arr: a,
                    idx: i,
                });
                Ok((dst, VTy::Gen, false))
            }
            Def::TupleNew(es) => {
                let mut regs = Vec::with_capacity(es.len());
                let mut vtys = Vec::with_capacity(es.len());
                let mut inv = true;
                for e in es {
                    let (r, vty, i) = self.operand(e)?;
                    regs.push(r);
                    vtys.push(vty);
                    inv &= i;
                }
                let dst = self.alloc(Class::V)?;
                let h = self.emit(
                    out,
                    true,
                    inv,
                    Instr::TupleNewV {
                        dst: dst.idx,
                        args: regs,
                    },
                );
                Ok((dst, VTy::Tuple(Arc::new(vtys)), h))
            }
            Def::TupleGet { tuple, index } => {
                let (t, tvty, inv) = self.operand(tuple)?;
                if t.class == Class::V {
                    if let VTy::Tuple(comps) = &tvty {
                        if let Some(cvty) = comps.get(*index) {
                            let cvty = cvty.clone();
                            let dst = self.alloc(cvty.class())?;
                            let idx = *index as u32;
                            let instr = match dst.class {
                                Class::I => Instr::TupleGetI {
                                    dst: dst.idx,
                                    t: t.idx,
                                    idx,
                                },
                                Class::F => Instr::TupleGetF {
                                    dst: dst.idx,
                                    t: t.idx,
                                    idx,
                                },
                                Class::B => Instr::TupleGetB {
                                    dst: dst.idx,
                                    t: t.idx,
                                    idx,
                                },
                                Class::V => Instr::TupleGetV {
                                    dst: dst.idx,
                                    t: t.idx,
                                    idx,
                                },
                            };
                            let h = self.emit(out, true, inv, instr);
                            return Ok((dst, cvty, h));
                        }
                    }
                }
                let dst = self.alloc(Class::V)?;
                out.push(Instr::TupleGetDyn {
                    dst: dst.idx,
                    t,
                    idx: *index as u32,
                });
                Ok((dst, VTy::Gen, false))
            }
            Def::StructNew { ty, fields } => {
                let mut regs = Vec::with_capacity(fields.len());
                let mut vtys = Vec::with_capacity(fields.len());
                let mut inv = true;
                for e in fields {
                    let (r, vty, i) = self.operand(e)?;
                    regs.push(r);
                    vtys.push(vty);
                    inv &= i;
                }
                let ty = Arc::new(ty.clone());
                let dst = self.alloc(Class::V)?;
                let h = self.emit(
                    out,
                    true,
                    inv,
                    Instr::StructNewV {
                        dst: dst.idx,
                        ty: ty.clone(),
                        args: regs,
                    },
                );
                Ok((dst, VTy::Struct(ty, Arc::new(vtys)), h))
            }
            Def::StructGet { obj, field } => {
                let (o, ovty, inv) = self.operand(obj)?;
                if o.class == Class::V {
                    if let VTy::Struct(sty, ftys) = &ovty {
                        if let Some(fi) = sty.field_index(field) {
                            if let Some(fvty) = ftys.get(fi) {
                                let fvty = fvty.clone();
                                let dst = self.alloc(fvty.class())?;
                                // Certified by the refined struct type, so
                                // infallible — this is what hoists matrix
                                // fields (data / rows / cols) out of loops.
                                let h = self.emit(
                                    out,
                                    true,
                                    inv,
                                    Instr::StructGetIdx {
                                        dst,
                                        obj: o.idx,
                                        idx: fi as u32,
                                    },
                                );
                                return Ok((dst, fvty, h));
                            }
                        }
                    }
                }
                let dst = self.alloc(Class::V)?;
                out.push(Instr::StructGetDyn {
                    dst: dst.idx,
                    obj: o,
                    name: Arc::from(field.as_str()),
                });
                Ok((dst, VTy::Gen, false))
            }
            Def::Flatten(e) => {
                let (a, _vty, _inv) = self.operand(e)?;
                let dst = self.alloc(Class::V)?;
                out.push(Instr::FlattenV { dst: dst.idx, a });
                Ok((dst, VTy::ArrGen, false))
            }
            Def::BucketValues(e) => {
                let (a, _vty, _inv) = self.operand(e)?;
                let dst = self.alloc(Class::V)?;
                out.push(Instr::BucketValuesV { dst: dst.idx, a });
                Ok((dst, VTy::ArrGen, false))
            }
            Def::BucketKeys(e) => {
                let (a, _vty, _inv) = self.operand(e)?;
                let dst = self.alloc(Class::V)?;
                out.push(Instr::BucketKeysV { dst: dst.idx, a });
                Ok((dst, VTy::ArrGen, false))
            }
            Def::BucketLen(e) => {
                let (a, _vty, _inv) = self.operand(e)?;
                let dst = self.alloc(Class::I)?;
                out.push(Instr::BucketLenV { dst: dst.idx, a });
                Ok((dst, VTy::I, false))
            }
            Def::BucketGet {
                buckets,
                key,
                default,
            } => {
                let (b, _bvty, _bi) = self.operand(buckets)?;
                let (k, _kvty, _ki) = self.operand(key)?;
                let d = match default {
                    Some(e) => Some(self.operand(e)?.0),
                    None => None,
                };
                let dst = self.alloc(Class::V)?;
                out.push(Instr::BucketGetV {
                    dst: dst.idx,
                    b,
                    k,
                    default: d,
                });
                Ok((dst, VTy::Gen, false))
            }
            Def::Loop(_) => unreachable!("handled by compile_stmt"),
            Def::Extern {
                name,
                args,
                ret,
                effectful,
                ..
            } => {
                if *effectful {
                    // Effectful calls must not be reordered, re-executed on
                    // chunk retry, or skipped — the compiled tiers give no
                    // such guarantees.
                    return Err(Reject("effectful extern"));
                }
                let (class, vty) = match ret {
                    Ty::I64 => (Class::I, VTy::I),
                    Ty::F64 => (Class::F, VTy::F),
                    Ty::Bool => (Class::B, VTy::B),
                    _ => return Err(Reject("extern with non-scalar return type")),
                };
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.operand(a)?.0);
                }
                let ext = self.extern_slot(name, ret)?;
                let dst = self.alloc(class)?;
                // Never hoisted: handlers are fallible and externally
                // observable, so each element performs exactly one call,
                // like the tree-walker.
                out.push(Instr::CallExtern {
                    dst,
                    ext,
                    args: regs,
                });
                Ok((dst, vty, false))
            }
        }
    }

    /// Intern one (name, return type) extern declaration, reusing the slot
    /// when the same operation is called more than once.
    fn extern_slot(&mut self, name: &str, ret: &Ty) -> Result<u16, Reject> {
        if let Some(i) = self
            .externs
            .iter()
            .position(|d| d.name == name && d.ret == *ret)
        {
            return Ok(i as u16);
        }
        if self.externs.len() > u16::MAX as usize {
            return Err(Reject("extern table overflow"));
        }
        self.externs.push(ExternDecl {
            name: name.to_string(),
            ret: ret.clone(),
        });
        Ok((self.externs.len() - 1) as u16)
    }

    fn compile_prim(
        &mut self,
        op: PrimOp,
        ops: &[(Reg, VTy, bool)],
        out: &mut Vec<Instr>,
    ) -> Result<(Reg, VTy, bool), Reject> {
        use Class as C;
        let inv_all = ops.iter().all(|(_, _, i)| *i);
        let classes: Vec<Class> = ops.iter().map(|(r, _, _)| r.class).collect();
        // Typed two-operand emission.
        if let ([a, b], [ca, cb]) = (
            &ops.iter().map(|(r, _, _)| *r).collect::<Vec<_>>()[..],
            &classes[..],
        ) {
            let (a, b) = (*a, *b);
            match (op, ca, cb) {
                (PrimOp::Add, C::I, C::I)
                | (PrimOp::Sub, C::I, C::I)
                | (PrimOp::Mul, C::I, C::I)
                | (PrimOp::Min, C::I, C::I)
                | (PrimOp::Max, C::I, C::I) => {
                    let iop = match op {
                        PrimOp::Add => IOp::Add,
                        PrimOp::Sub => IOp::Sub,
                        PrimOp::Mul => IOp::Mul,
                        PrimOp::Min => IOp::Min,
                        _ => IOp::Max,
                    };
                    let dst = self.alloc(C::I)?;
                    let h = self.emit(
                        out,
                        true,
                        inv_all,
                        Instr::BinI {
                            op: iop,
                            dst: dst.idx,
                            a: a.idx,
                            b: b.idx,
                        },
                    );
                    return Ok((dst, VTy::I, h));
                }
                (PrimOp::Div, C::I, C::I) => {
                    let dst = self.alloc(C::I)?;
                    out.push(Instr::DivI {
                        dst: dst.idx,
                        a: a.idx,
                        b: b.idx,
                    });
                    return Ok((dst, VTy::I, false));
                }
                (PrimOp::Rem, C::I, C::I) => {
                    let dst = self.alloc(C::I)?;
                    out.push(Instr::RemI {
                        dst: dst.idx,
                        a: a.idx,
                        b: b.idx,
                    });
                    return Ok((dst, VTy::I, false));
                }
                (PrimOp::Add, C::F, C::F)
                | (PrimOp::Sub, C::F, C::F)
                | (PrimOp::Mul, C::F, C::F)
                | (PrimOp::Div, C::F, C::F)
                | (PrimOp::Min, C::F, C::F)
                | (PrimOp::Max, C::F, C::F) => {
                    let fop = match op {
                        PrimOp::Add => FOp::Add,
                        PrimOp::Sub => FOp::Sub,
                        PrimOp::Mul => FOp::Mul,
                        PrimOp::Div => FOp::Div,
                        PrimOp::Min => FOp::Min,
                        _ => FOp::Max,
                    };
                    let dst = self.alloc(C::F)?;
                    let h = self.emit(
                        out,
                        true,
                        inv_all,
                        Instr::BinF {
                            op: fop,
                            dst: dst.idx,
                            a: a.idx,
                            b: b.idx,
                        },
                    );
                    return Ok((dst, VTy::F, h));
                }
                _ if op.is_comparison() && ca == cb && *ca != C::V => {
                    let cop = match op {
                        PrimOp::Eq => CmpOp::Eq,
                        PrimOp::Ne => CmpOp::Ne,
                        PrimOp::Lt => CmpOp::Lt,
                        PrimOp::Le => CmpOp::Le,
                        PrimOp::Gt => CmpOp::Gt,
                        _ => CmpOp::Ge,
                    };
                    // Bool operands only support Eq/Ne in typed form; the
                    // ordered comparisons on bools are walker type errors.
                    let typed_ok = match ca {
                        C::B => matches!(cop, CmpOp::Eq | CmpOp::Ne),
                        _ => true,
                    };
                    if typed_ok {
                        let dst = self.alloc(C::B)?;
                        let instr = match ca {
                            C::I => Instr::CmpI {
                                op: cop,
                                dst: dst.idx,
                                a: a.idx,
                                b: b.idx,
                            },
                            C::F => Instr::CmpF {
                                op: cop,
                                dst: dst.idx,
                                a: a.idx,
                                b: b.idx,
                            },
                            _ => Instr::CmpB {
                                op: cop,
                                dst: dst.idx,
                                a: a.idx,
                                b: b.idx,
                            },
                        };
                        let h = self.emit(out, true, inv_all, instr);
                        return Ok((dst, VTy::B, h));
                    }
                }
                (PrimOp::And, C::B, C::B) | (PrimOp::Or, C::B, C::B) => {
                    let dst = self.alloc(C::B)?;
                    let instr = if op == PrimOp::And {
                        Instr::AndB {
                            dst: dst.idx,
                            a: a.idx,
                            b: b.idx,
                        }
                    } else {
                        Instr::OrB {
                            dst: dst.idx,
                            a: a.idx,
                            b: b.idx,
                        }
                    };
                    let h = self.emit(out, true, inv_all, instr);
                    return Ok((dst, VTy::B, h));
                }
                _ => {}
            }
        }
        // Typed unary / ternary emission.
        match (op, &classes[..]) {
            (PrimOp::Neg, [C::I]) => {
                // Not hoisted: `-i64::MIN` overflows (a debug panic the
                // tree-walker only hits when it actually evaluates it).
                let dst = self.alloc(C::I)?;
                out.push(Instr::NegI {
                    dst: dst.idx,
                    a: ops[0].0.idx,
                });
                return Ok((dst, VTy::I, false));
            }
            (PrimOp::Neg, [C::F]) => {
                let dst = self.alloc(C::F)?;
                let h = self.emit(
                    out,
                    true,
                    inv_all,
                    Instr::NegF {
                        dst: dst.idx,
                        a: ops[0].0.idx,
                    },
                );
                return Ok((dst, VTy::F, h));
            }
            (PrimOp::Not, [C::B]) => {
                let dst = self.alloc(C::B)?;
                let h = self.emit(
                    out,
                    true,
                    inv_all,
                    Instr::NotB {
                        dst: dst.idx,
                        a: ops[0].0.idx,
                    },
                );
                return Ok((dst, VTy::B, h));
            }
            (PrimOp::Mux, [C::B, ca, cb]) if ca == cb => {
                let (c, a, b) = (ops[0].0, ops[1].0, ops[2].0);
                let dst = self.alloc(*ca)?;
                let instr = match ca {
                    C::I => Instr::MuxI {
                        dst: dst.idx,
                        c: c.idx,
                        a: a.idx,
                        b: b.idx,
                    },
                    C::F => Instr::MuxF {
                        dst: dst.idx,
                        c: c.idx,
                        a: a.idx,
                        b: b.idx,
                    },
                    C::B => Instr::MuxB {
                        dst: dst.idx,
                        c: c.idx,
                        a: a.idx,
                        b: b.idx,
                    },
                    C::V => Instr::MuxV {
                        dst: dst.idx,
                        c: c.idx,
                        a: a.idx,
                        b: b.idx,
                    },
                };
                let h = self.emit(out, true, inv_all, instr);
                let vty = if ops[1].1 == ops[2].1 {
                    ops[1].1.clone()
                } else {
                    match ca {
                        C::I => VTy::I,
                        C::F => VTy::F,
                        C::B => VTy::B,
                        C::V => VTy::Gen,
                    }
                };
                return Ok((dst, vty, h));
            }
            _ => {}
        }
        // Fallback: box the operands and run the tree-walker's eval_prim —
        // identical results and identical errors by construction.
        let class = if op.is_comparison() || matches!(op, PrimOp::And | PrimOp::Or | PrimOp::Not) {
            Class::B
        } else {
            Class::V
        };
        let dst = self.alloc(class)?;
        out.push(Instr::PrimV {
            op,
            dst,
            args: ops.iter().map(|(r, _, _)| *r).collect(),
        });
        let vty = if class == Class::B { VTy::B } else { VTy::Gen };
        Ok((dst, vty, false))
    }

    fn compile_nested_loop(
        &mut self,
        stmt: &dmll_core::Stmt,
        ml: &Multiloop,
        out: &mut Vec<Instr>,
    ) -> Result<(), Reject> {
        if stmt.lhs.len() != ml.gens.len() {
            return Err(Reject("loop binding arity mismatch"));
        }
        let (sreg, _svty, _sinv) = self.operand(&ml.size)?;
        let size = if sreg.class == Class::I {
            sreg.idx
        } else {
            let d = self.alloc(Class::I)?;
            out.push(Instr::SizeI { dst: d.idx, a: sreg });
            d.idx
        };
        let mut cgens = Vec::with_capacity(ml.gens.len());
        let mut val_vtys = Vec::with_capacity(ml.gens.len());
        for g in &ml.gens {
            let (cg, vty) = self.compile_gen(g)?;
            cgens.push(cg);
            val_vtys.push(vty);
        }
        let mut dsts = Vec::with_capacity(cgens.len());
        for ((lhs, cg), val_vty) in stmt.lhs.iter().zip(&cgens).zip(val_vtys) {
            let (class, vty) = match cg.kind {
                GenKind::Collect => match cg.val_class {
                    Class::I => (Class::V, VTy::Arr(Box::new(VTy::I))),
                    Class::F => (Class::V, VTy::Arr(Box::new(VTy::F))),
                    Class::B => (Class::V, VTy::Arr(Box::new(VTy::B))),
                    Class::V => (Class::V, VTy::ArrGen),
                },
                GenKind::Reduce => (cg.val_class, val_vty),
                GenKind::BucketCollect | GenKind::BucketReduce => (Class::V, VTy::Buckets),
            };
            let dst = self.alloc(class)?;
            self.define(*lhs, dst, vty, false)?;
            dsts.push(dst);
        }
        let li = self.loops.len();
        if li > u32::MAX as usize {
            return Err(Reject("too many nested loops"));
        }
        self.loops.push(CLoop {
            size,
            gens: cgens,
            dsts,
        });
        out.push(Instr::Loop(li as u32));
        Ok(())
    }
}

/// Recognize a reducer that is a single typed binary instruction over its
/// two parameters (`a + b`, `a.min(b)`, …) so reduction steps skip block
/// dispatch entirely.
fn recognize_fast_red(blk: &CBlock) -> Option<FastRed> {
    if blk.params.len() != 2 || blk.instrs.len() != 1 {
        return None;
    }
    let (p0, p1) = (blk.params[0], blk.params[1]);
    match &blk.instrs[0] {
        Instr::BinI { op, dst, a, b }
            if p0.class == Class::I
                && *a == p0.idx
                && *b == p1.idx
                && *dst == blk.result.idx
                && blk.result.class == Class::I =>
        {
            Some(FastRed::I(*op))
        }
        Instr::BinF { op, dst, a, b }
            if p0.class == Class::F
                && *a == p0.idx
                && *b == p1.idx
                && *dst == blk.result.idx
                && blk.result.class == Class::F =>
        {
            Some(FastRed::F(*op))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Kernel cache
// ---------------------------------------------------------------------------

/// Fast multiply-xor structural hasher (the FxHash recipe). These hashes
/// sit on per-run hot paths — the kernel-cache lookup hashes every executed
/// loop and the fusion hook hashes the whole program per run — and SipHash's
/// per-write overhead measurably taxes small programs. Collisions are
/// tolerated everywhere the hashes are used: the kernel cache verifies full
/// structural equality on hit, and the fusion identity memo treats a
/// collision as a missed optimization, never changed semantics.
struct FxHasher(u64);

impl FxHasher {
    fn new() -> FxHasher {
        FxHasher(0)
    }

    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.add(tail ^ (bytes.len() as u64) << 56);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Structural hash of a multiloop: discriminants, symbols, operators and
/// constants, deep through nested blocks. Collisions are tolerated — cache
/// entries store the loop itself and verify with full structural equality.
fn structural_hash(ml: &Multiloop) -> u64 {
    let mut h = FxHasher::new();
    hash_multiloop(ml, &mut h);
    h.finish()
}

/// Structural hash of a whole program: inputs (symbol, name, layout) plus
/// the body, deep. The fuse-then-compile hook uses this both to key its
/// rewrite cache and as the rewrite fingerprint mixed into kernel cache
/// keys, so fused and unfused variants of one source loop never collide.
pub(crate) fn hash_program(p: &Program) -> u64 {
    let mut h = FxHasher::new();
    p.inputs.len().hash(&mut h);
    for i in &p.inputs {
        i.sym.0.hash(&mut h);
        i.name.hash(&mut h);
        i.layout.hash(&mut h);
    }
    hash_block(&p.body, &mut h);
    h.finish()
}

fn hash_multiloop(ml: &Multiloop, h: &mut impl Hasher) {
    hash_exp(&ml.size, h);
    ml.gens.len().hash(h);
    for g in &ml.gens {
        g.kind().hash(h);
        for b in g.blocks() {
            hash_block(b, h);
        }
        match g {
            Gen::Reduce { init, .. } | Gen::BucketReduce { init, .. } => {
                if let Some(e) = init {
                    1u8.hash(h);
                    hash_exp(e, h);
                } else {
                    0u8.hash(h);
                }
            }
            _ => 2u8.hash(h),
        }
    }
}

fn hash_block(b: &Block, h: &mut impl Hasher) {
    b.params.len().hash(h);
    for p in &b.params {
        p.0.hash(h);
    }
    b.stmts.len().hash(h);
    for stmt in &b.stmts {
        for s in &stmt.lhs {
            s.0.hash(h);
        }
        hash_def(&stmt.def, h);
    }
    hash_exp(&b.result, h);
}

fn hash_exp(e: &Exp, h: &mut impl Hasher) {
    match e {
        Exp::Sym(s) => {
            0u8.hash(h);
            s.0.hash(h);
        }
        Exp::Const(c) => {
            1u8.hash(h);
            c.hash(h);
        }
    }
}

fn hash_def(d: &Def, h: &mut impl Hasher) {
    match d {
        Def::Prim { op, args } => {
            0u8.hash(h);
            op.hash(h);
            for a in args {
                hash_exp(a, h);
            }
        }
        Def::Math { f, arg } => {
            1u8.hash(h);
            f.hash(h);
            hash_exp(arg, h);
        }
        Def::Cast { to, value } => {
            2u8.hash(h);
            to.hash(h);
            hash_exp(value, h);
        }
        Def::ArrayLen(e) => {
            3u8.hash(h);
            hash_exp(e, h);
        }
        Def::ArrayRead { arr, index } => {
            4u8.hash(h);
            hash_exp(arr, h);
            hash_exp(index, h);
        }
        Def::TupleNew(es) => {
            5u8.hash(h);
            es.len().hash(h);
            for e in es {
                hash_exp(e, h);
            }
        }
        Def::TupleGet { tuple, index } => {
            6u8.hash(h);
            hash_exp(tuple, h);
            index.hash(h);
        }
        Def::StructNew { ty, fields } => {
            7u8.hash(h);
            ty.hash(h);
            for e in fields {
                hash_exp(e, h);
            }
        }
        Def::StructGet { obj, field } => {
            8u8.hash(h);
            hash_exp(obj, h);
            field.hash(h);
        }
        Def::Flatten(e) => {
            9u8.hash(h);
            hash_exp(e, h);
        }
        Def::BucketValues(e) => {
            10u8.hash(h);
            hash_exp(e, h);
        }
        Def::BucketKeys(e) => {
            11u8.hash(h);
            hash_exp(e, h);
        }
        Def::BucketLen(e) => {
            12u8.hash(h);
            hash_exp(e, h);
        }
        Def::BucketGet {
            buckets,
            key,
            default,
        } => {
            13u8.hash(h);
            hash_exp(buckets, h);
            hash_exp(key, h);
            if let Some(d) = default {
                1u8.hash(h);
                hash_exp(d, h);
            } else {
                0u8.hash(h);
            }
        }
        Def::Loop(ml) => {
            14u8.hash(h);
            hash_multiloop(ml, h);
        }
        Def::Extern {
            name,
            args,
            ret,
            effectful,
            whitelisted,
        } => {
            15u8.hash(h);
            name.hash(h);
            for a in args {
                hash_exp(a, h);
            }
            ret.hash(h);
            effectful.hash(h);
            whitelisted.hash(h);
        }
    }
}

#[derive(PartialEq, Eq, Hash)]
struct CacheKey {
    hash: u64,
    /// Refined types of the loop's free variables, in `Sym` order. A kernel
    /// certified against `ArrayVal::F64` storage must not run against a
    /// `Boxed` array, so the refinement is part of the key.
    kinds: Vec<VTy>,
    /// Rewrite fingerprint of the program the loop came from: `0` for
    /// source programs the fuse hook left untouched, otherwise the fused
    /// program's structural hash. Two structurally-identical loops reached
    /// through different rewrites are different cache citizens — without
    /// this, a fused and an unfused variant that happen to hash and compare
    /// equal (same syms reused across `Program::clone`) could collide.
    fuse: u64,
}

enum Cached {
    Kernel(Arc<Kernel>),
    /// Negative entry: compilation was rejected; don't retry every call.
    Fallback,
}

struct CacheEntry {
    ml: Multiloop,
    cached: Cached,
    /// Logical timestamp of the entry's last hit (or its insertion); the
    /// entry with the smallest stamp is the LRU eviction victim.
    last_used: u64,
}

/// The kernel cache: hash-bucketed entries plus an LRU clock. `len` tracks
/// the total entry count across buckets so capacity checks are O(1).
#[derive(Default)]
struct KernelCache {
    map: HashMap<CacheKey, Vec<CacheEntry>>,
    tick: u64,
    len: usize,
}

impl KernelCache {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evict the least-recently-used entry (O(n) scan; eviction is rare and
    /// the cap is small, so a heap would cost more than it saves). Returns
    /// whether an entry was actually removed.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .map
            .iter()
            .flat_map(|(k, es)| es.iter().map(move |e| (e.last_used, k.hash)))
            .min();
        let Some((stamp, key_hash)) = victim else {
            return false;
        };
        let mut emptied = None;
        let mut evicted = false;
        for (k, es) in self.map.iter_mut() {
            if k.hash != key_hash {
                continue;
            }
            if let Some(pos) = es.iter().position(|e| e.last_used == stamp) {
                es.remove(pos);
                self.len -= 1;
                evicted = true;
                if es.is_empty() {
                    emptied = Some(k.hash);
                }
                break;
            }
        }
        if emptied.is_some() {
            self.map.retain(|_, es| !es.is_empty());
        }
        evicted
    }
}

/// Counter snapshot of one [`KernelCacheHandle`] view.
///
/// Counters belong to the *view*, not the store: two views sharing a store
/// (see [`KernelCacheHandle::view`]) account their own lookups separately,
/// which is how the service layer surfaces per-tenant hit rates over one
/// shared cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached kernel.
    pub hits: u64,
    /// Lookups that missed and compiled a new kernel.
    pub misses: u64,
    /// Lookups that hit a negative (rejected-compilation) entry.
    pub negative_hits: u64,
    /// Lookups that missed and were rejected by the compiler.
    pub rejections: u64,
    /// Entries this view evicted while inserting (LRU victims may have
    /// been inserted by any view of the store).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate over positive lookups (hits + misses), if any happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    negative_hits: AtomicU64,
    rejections: AtomicU64,
    evictions: AtomicU64,
}

/// An injectable handle to a kernel cache: a shared LRU store plus
/// view-local counters.
///
/// Historically the kernel cache was one process-global `static`, which
/// meant cross-test counter interference and no way for a long-lived
/// service to observe per-tenant hit rates. The handle decouples the two
/// concerns:
///
/// * [`KernelCacheHandle::global`] is the process-wide default every
///   un-configured run uses (so one-shot callers keep sharing compiles);
/// * [`KernelCacheHandle::with_capacity`] makes an isolated store (tests,
///   or a service that wants cache lifetime tied to its own);
/// * [`KernelCacheHandle::view`] makes a second handle onto the *same*
///   store with fresh counters — lookups through either handle hit the
///   shared entries, but each view's [`CacheStats`] count only its own
///   traffic.
///
/// `Clone` shares both the store and the counters (same view).
#[derive(Clone)]
pub struct KernelCacheHandle {
    store: Arc<Mutex<KernelCache>>,
    counters: Arc<CacheCounters>,
    cap: usize,
}

impl fmt::Debug for KernelCacheHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelCacheHandle")
            .field("cap", &self.cap)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for KernelCacheHandle {
    fn default() -> KernelCacheHandle {
        KernelCacheHandle::new()
    }
}

static GLOBAL_CACHE: OnceLock<KernelCacheHandle> = OnceLock::new();

/// Largest number of distinct (loop, refinement) entries kept; beyond this
/// the least-recently-used entry is evicted.
const CACHE_CAP: usize = 512;

impl KernelCacheHandle {
    /// A fresh, isolated cache with the default capacity.
    pub fn new() -> KernelCacheHandle {
        KernelCacheHandle::with_capacity(CACHE_CAP)
    }

    /// A fresh, isolated cache holding at most `cap` entries.
    pub fn with_capacity(cap: usize) -> KernelCacheHandle {
        KernelCacheHandle {
            store: Arc::new(Mutex::new(KernelCache::default())),
            counters: Arc::new(CacheCounters::default()),
            cap: cap.max(1),
        }
    }

    /// The process-global default cache (what un-injected runs use).
    pub fn global() -> KernelCacheHandle {
        GLOBAL_CACHE.get_or_init(KernelCacheHandle::new).clone()
    }

    /// A new view onto the same store with zeroed counters. Entries
    /// (including negative ones) are shared; statistics are not.
    pub fn view(&self) -> KernelCacheHandle {
        KernelCacheHandle {
            store: self.store.clone(),
            counters: Arc::new(CacheCounters::default()),
            cap: self.cap,
        }
    }

    /// Do two handles share one underlying store?
    pub fn shares_store_with(&self, other: &KernelCacheHandle) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    /// Entries currently cached (positive and negative).
    pub fn len(&self) -> usize {
        self.store.lock().expect("kernel cache poisoned").len
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot this view's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(AtomicOrdering::Relaxed),
            misses: self.counters.misses.load(AtomicOrdering::Relaxed),
            negative_hits: self.counters.negative_hits.load(AtomicOrdering::Relaxed),
            rejections: self.counters.rejections.load(AtomicOrdering::Relaxed),
            evictions: self.counters.evictions.load(AtomicOrdering::Relaxed),
        }
    }

    /// Look up or compile the kernel for `ml` under the refined types of
    /// `env`. Returns `None` when the loop must run on the tree-walker
    /// (free variable missing from the environment, or the compiler
    /// rejected the loop). Process-wide tier counters are mirrored for
    /// every handle so [`crate::tier_totals`] stays meaningful; the
    /// view-local counters additionally attribute the lookup to this
    /// handle.
    pub(crate) fn kernel_for(&self, ml: &Multiloop, env: &Env, fuse: u64) -> Option<Arc<Kernel>> {
        let mut kinds = Vec::new();
        for s in loop_free_syms(ml) {
            let v = env.get(s.0 as usize)?.as_ref()?;
            kinds.push(VTy::of(v, 0));
        }
        let key = CacheKey {
            hash: structural_hash(ml),
            kinds,
            fuse,
        };
        {
            let mut guard = self.store.lock().expect("kernel cache poisoned");
            let stamp = guard.touch();
            if let Some(entries) = guard.map.get_mut(&key) {
                for e in entries {
                    if e.ml == *ml {
                        e.last_used = stamp;
                        return match &e.cached {
                            Cached::Kernel(k) => {
                                stats::record_cache_hit();
                                self.counters.hits.fetch_add(1, AtomicOrdering::Relaxed);
                                Some(k.clone())
                            }
                            Cached::Fallback => {
                                stats::record_negative_hit();
                                self.counters
                                    .negative_hits
                                    .fetch_add(1, AtomicOrdering::Relaxed);
                                None
                            }
                        };
                    }
                }
            }
        }
        let t0 = Instant::now();
        let compiled = compile_multiloop(ml, env);
        let dt = t0.elapsed();
        let mut guard = self.store.lock().expect("kernel cache poisoned");
        while guard.len >= self.cap {
            if !guard.evict_lru() {
                break;
            }
            stats::record_eviction();
            self.counters.evictions.fetch_add(1, AtomicOrdering::Relaxed);
        }
        let stamp = guard.touch();
        let entries = guard.map.entry(key).or_default();
        let out = match compiled {
            Ok(k) => {
                let k = Arc::new(k);
                stats::record_compile(dt);
                self.counters.misses.fetch_add(1, AtomicOrdering::Relaxed);
                entries.push(CacheEntry {
                    ml: ml.clone(),
                    cached: Cached::Kernel(k.clone()),
                    last_used: stamp,
                });
                Some(k)
            }
            Err(_reject) => {
                stats::record_fallback();
                self.counters.rejections.fetch_add(1, AtomicOrdering::Relaxed);
                entries.push(CacheEntry {
                    ml: ml.clone(),
                    cached: Cached::Fallback,
                    last_used: stamp,
                });
                None
            }
        };
        guard.len += 1;
        out
    }
}

/// Look up or compile via the process-global cache (the un-injected
/// default). See [`KernelCacheHandle::kernel_for`].
pub(crate) fn kernel_for(ml: &Multiloop, env: &Env, fuse: u64) -> Option<Arc<Kernel>> {
    KernelCacheHandle::global().kernel_for(ml, env, fuse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::Stmt;

    fn env_with(bindings: Vec<(u32, Value)>) -> Env {
        let max = bindings.iter().map(|(s, _)| *s).max().unwrap_or(0) as usize;
        let mut env: Env = vec![None; max + 1];
        for (s, v) in bindings {
            env[s as usize] = Some(v);
        }
        env
    }

    /// sum of squares over a typed f64 array: free x10=arr.
    fn square_sum_loop() -> Multiloop {
        let value = Block {
            params: vec![Sym(0)],
            stmts: vec![
                Stmt::one(
                    Sym(1),
                    Def::ArrayRead {
                        arr: Exp::Sym(Sym(10)),
                        index: Exp::Sym(Sym(0)),
                    },
                ),
                Stmt::one(Sym(2), Def::prim2(PrimOp::Mul, Sym(1), Sym(1))),
            ],
            result: Exp::Sym(Sym(2)),
        };
        let reducer = Block {
            params: vec![Sym(3), Sym(4)],
            stmts: vec![Stmt::one(Sym(5), Def::prim2(PrimOp::Add, Sym(3), Sym(4)))],
            result: Exp::Sym(Sym(5)),
        };
        Multiloop::single(
            Exp::Sym(Sym(11)),
            Gen::Reduce {
                cond: None,
                value,
                reducer,
                init: None,
            },
        )
    }

    #[test]
    fn compiles_typed_reduce_with_fast_reducer() {
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0, 2.0, 3.0]))]);
        let k = compile_multiloop(&square_sum_loop(), &env).expect("compiles");
        assert!(matches!(k.gens[0].fast_red, Some(FastRed::F(FOp::Add))));
        assert_eq!(k.gens[0].val_class as u8, Class::F as u8);
        let mut st = k.new_state(&env, &Externs::default()).unwrap();
        let accs = k.run_range(&mut st, 0, 3).unwrap();
        let vals = k.seal_values(accs, &mut st).unwrap();
        assert_eq!(vals, vec![Value::F64(14.0)]);
    }

    #[test]
    fn chunked_runs_merge_like_one_run() {
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0, 2.0, 3.0, 4.0]))]);
        let k = compile_multiloop(&square_sum_loop(), &env).expect("compiles");
        let mut st = k.new_state(&env, &Externs::default()).unwrap();
        let a = k.run_range(&mut st, 0, 2).unwrap();
        let b = k.run_range(&mut st, 2, 4).unwrap();
        let merged: Vec<KAcc> = a
            .into_iter()
            .zip(b)
            .enumerate()
            .map(|(i, (x, y))| k.merge(i, x, y, &mut st).unwrap())
            .collect();
        let vals = k.seal_values(merged, &mut st).unwrap();
        assert_eq!(vals, vec![Value::F64(30.0)]);
    }

    #[test]
    fn empty_reduce_errors_without_init() {
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0]))]);
        let k = compile_multiloop(&square_sum_loop(), &env).expect("compiles");
        let mut st = k.new_state(&env, &Externs::default()).unwrap();
        let accs = k.run_range(&mut st, 0, 0).unwrap();
        assert_eq!(
            k.seal_values(accs, &mut st).unwrap_err(),
            EvalError::EmptyReduce
        );
    }

    #[test]
    fn read_out_of_bounds_matches_walker_error() {
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0, 2.0]))]);
        let k = compile_multiloop(&square_sum_loop(), &env).expect("compiles");
        let mut st = k.new_state(&env, &Externs::default()).unwrap();
        let err = k.run_range(&mut st, 0, 5).unwrap_err();
        assert_eq!(err, EvalError::IndexOutOfBounds { index: 2, len: 2 });
    }

    #[test]
    fn externs_are_rejected() {
        let value = Block {
            params: vec![Sym(0)],
            stmts: vec![Stmt::one(
                Sym(1),
                Def::Extern {
                    name: "rng".into(),
                    args: vec![],
                    ret: Ty::I64,
                    effectful: true,
                    whitelisted: false,
                },
            )],
            result: Exp::Sym(Sym(1)),
        };
        let ml = Multiloop::single(Exp::i64(3), Gen::Collect { cond: None, value });
        assert!(compile_multiloop(&ml, &Vec::new()).is_err());
    }

    #[test]
    fn cache_reuses_kernel_for_same_types() {
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0]))]);
        let ml = square_sum_loop();
        let k1 = kernel_for(&ml, &env, 0).expect("compiled");
        let k2 = kernel_for(&ml, &env, 0).expect("cached");
        assert!(Arc::ptr_eq(&k1, &k2));
        // Different storage refinement → distinct kernel (not reused).
        let env2 = env_with(vec![(10, Value::i64_arr(vec![1, 2]))]);
        let k3 = kernel_for(&ml, &env2, 0).expect("recompiled");
        assert!(!Arc::ptr_eq(&k1, &k3));
    }

    /// argmin over `(key, index)` tuples: the key is element 0 of `x`, so
    /// the key's class follows `x`'s storage refinement — an `i64` array
    /// gives an integer-keyed selection, an `f64` array a float-keyed one.
    fn argmin_loop() -> Multiloop {
        let value = Block {
            params: vec![Sym(0)],
            stmts: vec![
                Stmt::one(
                    Sym(1),
                    Def::ArrayRead {
                        arr: Exp::Sym(Sym(10)),
                        index: Exp::Sym(Sym(0)),
                    },
                ),
                Stmt::one(Sym(2), Def::TupleNew(vec![Exp::Sym(Sym(1)), Exp::Sym(Sym(0))])),
            ],
            result: Exp::Sym(Sym(2)),
        };
        let reducer = Block {
            params: vec![Sym(3), Sym(4)],
            stmts: vec![
                Stmt::one(
                    Sym(5),
                    Def::TupleGet {
                        tuple: Exp::Sym(Sym(3)),
                        index: 0,
                    },
                ),
                Stmt::one(
                    Sym(6),
                    Def::TupleGet {
                        tuple: Exp::Sym(Sym(4)),
                        index: 0,
                    },
                ),
                Stmt::one(Sym(7), Def::prim2(PrimOp::Lt, Sym(5), Sym(6))),
                Stmt::one(
                    Sym(8),
                    Def::Prim {
                        op: PrimOp::Mux,
                        args: vec![Exp::Sym(Sym(7)), Exp::Sym(Sym(3)), Exp::Sym(Sym(4))],
                    },
                ),
            ],
            result: Exp::Sym(Sym(8)),
        };
        Multiloop::single(
            Exp::Sym(Sym(11)),
            Gen::Reduce {
                cond: None,
                value,
                reducer,
                init: None,
            },
        )
    }

    #[test]
    fn dnc_assoc_certifies_int_keyed_selection_only() {
        let env = env_with(vec![(10, Value::i64_arr(vec![5, 2, 9]))]);
        let k = compile_multiloop(&argmin_loop(), &env).expect("compiles");
        assert!(k.gens[0].fast_red.is_none(), "selection is not a fast-red");
        assert!(!k.exact_assoc(), "fast-red gate alone must not certify");
        assert!(k.dnc_assoc(), "i64-keyed argmin is D&C-associative");

        // Same IR, f64 keys: NaN breaks the total order, never certified.
        let envf = env_with(vec![(10, Value::f64_arr(vec![5.0, 2.0, 9.0]))]);
        let kf = compile_multiloop(&argmin_loop(), &envf).expect("compiles");
        assert!(!kf.dnc_assoc(), "float-keyed selection must decline");
    }

    #[test]
    fn dnc_assoc_certifies_direct_int_selection() {
        // r(a, b) = mux(a < b, a, b): min of the value itself via selection.
        let value = Block {
            params: vec![Sym(0)],
            stmts: vec![Stmt::one(
                Sym(1),
                Def::ArrayRead {
                    arr: Exp::Sym(Sym(10)),
                    index: Exp::Sym(Sym(0)),
                },
            )],
            result: Exp::Sym(Sym(1)),
        };
        let reducer = Block {
            params: vec![Sym(3), Sym(4)],
            stmts: vec![
                Stmt::one(Sym(5), Def::prim2(PrimOp::Lt, Sym(3), Sym(4))),
                Stmt::one(
                    Sym(6),
                    Def::Prim {
                        op: PrimOp::Mux,
                        args: vec![Exp::Sym(Sym(5)), Exp::Sym(Sym(3)), Exp::Sym(Sym(4))],
                    },
                ),
            ],
            result: Exp::Sym(Sym(6)),
        };
        let ml = Multiloop::single(
            Exp::Sym(Sym(11)),
            Gen::Reduce {
                cond: None,
                value,
                reducer,
                init: None,
            },
        );
        let env = env_with(vec![(10, Value::i64_arr(vec![5, 2, 9]))]);
        let k = compile_multiloop(&ml, &env).expect("compiles");
        assert!(k.dnc_assoc());

        // Subtraction in the same slot stays uncertified.
        let mut bad = ml.clone();
        if let Gen::Reduce { reducer, .. } = &mut bad.gens[0] {
            reducer.stmts = vec![Stmt::one(Sym(6), Def::prim2(PrimOp::Sub, Sym(3), Sym(4)))];
        }
        let kb = compile_multiloop(&bad, &env).expect("compiles");
        assert!(!kb.dnc_assoc());
    }

    #[test]
    fn cache_views_share_store_but_not_counters() {
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0]))]);
        let ml = square_sum_loop();
        let cache = KernelCacheHandle::with_capacity(8);
        let tenant_a = cache.view();
        let tenant_b = cache.view();
        assert!(tenant_a.shares_store_with(&tenant_b));

        let k1 = tenant_a.kernel_for(&ml, &env, 0).expect("compiled");
        let k2 = tenant_b.kernel_for(&ml, &env, 0).expect("cached via shared store");
        assert!(Arc::ptr_eq(&k1, &k2), "views share compiled kernels");
        assert_eq!(tenant_a.stats().misses, 1, "A compiled");
        assert_eq!(tenant_a.stats().hits, 0);
        assert_eq!(tenant_b.stats().hits, 1, "B hit A's compile");
        assert_eq!(tenant_b.stats().misses, 0);
        assert_eq!(cache.stats(), CacheStats::default(), "root view untouched");
        assert_eq!(cache.len(), 1);

        // An isolated cache neither shares entries nor counters.
        let isolated = KernelCacheHandle::with_capacity(8);
        assert!(!isolated.shares_store_with(&cache));
        let k3 = isolated.kernel_for(&ml, &env, 0).expect("recompiled");
        assert!(!Arc::ptr_eq(&k1, &k3));
        assert_eq!(isolated.stats().misses, 1);
    }

    #[test]
    fn cache_handle_evictions_are_attributed_to_the_inserting_view() {
        // Capacity 1: every second distinct refinement evicts.
        let cache = KernelCacheHandle::with_capacity(1);
        let ml = square_sum_loop();
        let env_f = env_with(vec![(10, Value::f64_arr(vec![1.0]))]);
        let env_i = env_with(vec![(10, Value::i64_arr(vec![1]))]);
        cache.kernel_for(&ml, &env_f, 0).expect("compiles f64");
        let view = cache.view();
        view.kernel_for(&ml, &env_i, 0).expect("compiles i64, evicting");
        assert_eq!(view.stats().evictions, 1, "evicting view pays");
        assert_eq!(cache.stats().evictions, 0, "other view does not");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_keys_fused_and_unfused_variants_separately() {
        // Regression: before the rewrite fingerprint joined the cache key,
        // a loop appearing both in a fused program and an as-written one
        // (structurally identical, same refinements) would share one LRU
        // entry — so any variant-specific compilation would be silently
        // reused across variants. Distinct fingerprints must miss and
        // store separately; each variant then hits only its own entry.
        let cache = KernelCacheHandle::with_capacity(8);
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0]))]);
        let ml = square_sum_loop();
        let unfused = cache.kernel_for(&ml, &env, 0).expect("compiled");
        let fused = cache.kernel_for(&ml, &env, 0xF00D).expect("compiled separately");
        assert!(!Arc::ptr_eq(&unfused, &fused), "fingerprints key distinct entries");
        assert_eq!(cache.stats().misses, 2, "no cross-fingerprint hit");
        assert_eq!(cache.len(), 2);
        let again = cache.kernel_for(&ml, &env, 0xF00D).expect("cached");
        assert!(Arc::ptr_eq(&fused, &again));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invariants_hoist_to_preamble() {
        // value = arr[i] * c where c = 2.0 const and arr free: the constant
        // load sits in the preamble; the read and multiply stay in the body.
        let value = Block {
            params: vec![Sym(0)],
            stmts: vec![
                Stmt::one(
                    Sym(1),
                    Def::ArrayRead {
                        arr: Exp::Sym(Sym(10)),
                        index: Exp::Sym(Sym(0)),
                    },
                ),
                Stmt::one(
                    Sym(2),
                    Def::Prim {
                        op: PrimOp::Mul,
                        args: vec![Exp::Sym(Sym(1)), Exp::Const(Const::F64(2.0))],
                    },
                ),
            ],
            result: Exp::Sym(Sym(2)),
        };
        let ml = Multiloop::single(Exp::Sym(Sym(11)), Gen::Collect { cond: None, value });
        let env = env_with(vec![(10, Value::f64_arr(vec![1.0, 2.5]))]);
        let k = compile_multiloop(&ml, &env).expect("compiles");
        assert_eq!(k.preamble.len(), 1, "const load hoisted");
        assert_eq!(k.gens[0].value.instrs.len(), 2, "read + mul in body");
        let mut st = k.new_state(&env, &Externs::default()).unwrap();
        let accs = k.run_range(&mut st, 0, 2).unwrap();
        let vals = k.seal_values(accs, &mut st).unwrap();
        assert_eq!(vals[0], Value::f64_arr(vec![2.0, 5.0]));
    }
}




