//! Evaluation errors.

use std::fmt;

/// An error raised while interpreting a DMLL program.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A named input was not supplied.
    MissingInput(String),
    /// A collection read was out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Collection length.
        len: usize,
    },
    /// A `Reduce` over an empty range with no explicit identity.
    EmptyReduce,
    /// A `bucketGet` missed and no default was provided.
    MissingBucket(String),
    /// An extern was called with no registered handler.
    UnknownExtern(String),
    /// A value had an unexpected shape (interpreter-side type error; should
    /// be prevented by `dmll_core::typecheck`).
    TypeMismatch(String),
    /// Division or remainder by integer zero.
    DivisionByZero,
    /// A worker chunk kept failing after exhausting its re-executions
    /// (injected faults or repeated worker panics).
    ChunkRetriesExhausted {
        /// Index of the failing chunk.
        chunk: usize,
        /// Executions attempted (first run + re-executions).
        attempts: u32,
        /// Message of the last failure.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput(name) => write!(f, "missing input {name:?}"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for collection of length {len}"
                )
            }
            EvalError::EmptyReduce => {
                write!(f, "reduce over an empty range with no identity element")
            }
            EvalError::MissingBucket(k) => write!(f, "no bucket for key {k} and no default"),
            EvalError::UnknownExtern(name) => write!(f, "no handler for extern {name:?}"),
            EvalError::TypeMismatch(msg) => write!(f, "value shape mismatch: {msg}"),
            EvalError::DivisionByZero => write!(f, "integer division by zero"),
            EvalError::ChunkRetriesExhausted {
                chunk,
                attempts,
                message,
            } => write!(
                f,
                "chunk {chunk} failed after {attempts} executions: {message}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = EvalError::IndexOutOfBounds { index: 5, len: 3 };
        assert_eq!(
            e.to_string(),
            "index 5 out of bounds for collection of length 3"
        );
    }

    #[test]
    fn error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        assert_err(EvalError::EmptyReduce);
    }
}
