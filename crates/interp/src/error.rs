//! Evaluation errors, plus the unified [`ExecError`] surface shared with
//! the distributed runtime.
//!
//! [`EvalError`] is the interpreter-local error (pure evaluation failures
//! plus chunk-retry exhaustion). [`ExecError`] is the one enum supervised
//! callers match on: it source-chains [`EvalError`] and
//! [`dmll_runtime::RuntimeError`] and adds the supervision outcomes —
//! deadline, cancellation, retry-budget exhaustion — each carrying the
//! partial [`crate::ExecReport`] of the aborted run, so no failure mode is
//! a stringly panic.

use crate::parallel::ExecReport;
use dmll_runtime::RuntimeError;
use std::fmt;
use std::time::Duration;

/// An error raised while interpreting a DMLL program.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A named input was not supplied.
    MissingInput(String),
    /// A collection read was out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Collection length.
        len: usize,
    },
    /// A `Reduce` over an empty range with no explicit identity.
    EmptyReduce,
    /// A `bucketGet` missed and no default was provided.
    MissingBucket(String),
    /// An extern was called with no registered handler.
    UnknownExtern(String),
    /// A value had an unexpected shape (interpreter-side type error; should
    /// be prevented by `dmll_core::typecheck`).
    TypeMismatch(String),
    /// Division or remainder by integer zero.
    DivisionByZero,
    /// A worker chunk kept failing after exhausting its re-executions
    /// (injected faults or repeated worker panics).
    ChunkRetriesExhausted {
        /// Index of the failing chunk.
        chunk: usize,
        /// Executions attempted (first run + re-executions).
        attempts: u32,
        /// Message of the last failure.
        message: String,
    },
    /// The run was aborted by its supervisor (deadline, cancellation, or
    /// retry budget). This is the *legacy* stringly form surfaced by
    /// [`crate::eval_parallel_report`]; supervised callers should use
    /// [`crate::eval_parallel_supervised`], whose [`ExecError`] keeps the
    /// typed reason and partial report.
    Aborted(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput(name) => write!(f, "missing input {name:?}"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for collection of length {len}"
                )
            }
            EvalError::EmptyReduce => {
                write!(f, "reduce over an empty range with no identity element")
            }
            EvalError::MissingBucket(k) => write!(f, "no bucket for key {k} and no default"),
            EvalError::UnknownExtern(name) => write!(f, "no handler for extern {name:?}"),
            EvalError::TypeMismatch(msg) => write!(f, "value shape mismatch: {msg}"),
            EvalError::DivisionByZero => write!(f, "integer division by zero"),
            EvalError::ChunkRetriesExhausted {
                chunk,
                attempts,
                message,
            } => write!(
                f,
                "chunk {chunk} failed after {attempts} executions: {message}"
            ),
            EvalError::Aborted(why) => write!(f, "run aborted by supervisor: {why}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The unified execution-error surface: everything a supervised parallel
/// run can fail with, as one matchable enum. Interpreter errors and runtime
/// errors are wrapped (and exposed through [`std::error::Error::source`]);
/// supervision aborts carry the partial [`ExecReport`] accumulated up to
/// the abort, so callers can see how far the run got.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A deterministic interpreter error (retrying cannot help).
    Eval(EvalError),
    /// A distributed-runtime error (dead node, exhausted remote reads, …).
    Runtime(RuntimeError),
    /// The wall-clock deadline expired: in-flight tasks drained, queued
    /// tasks were abandoned.
    Deadline {
        /// The configured budget.
        deadline: Duration,
        /// Wall time actually elapsed when the abort committed.
        elapsed: Duration,
        /// What completed before the abort.
        partial: ExecReport,
    },
    /// The run's [`dmll_runtime::CancelToken`] was cancelled.
    Cancelled {
        /// What completed before the abort.
        partial: ExecReport,
    },
    /// The run-wide retry budget was spent mid-recovery: some chunk still
    /// needed a re-execution and none were left.
    RetryBudgetExhausted {
        /// The chunk whose retry was denied.
        chunk: usize,
        /// The budget that was configured.
        budget: u32,
        /// Message of the failure that wanted the retry.
        message: String,
        /// What completed before giving up.
        partial: ExecReport,
    },
}

impl ExecError {
    /// Collapse into the legacy [`EvalError`] surface: wrapped evaluation
    /// errors pass through; supervision aborts become
    /// [`EvalError::Aborted`] (stringly — callers that care about the
    /// typed reason should match [`ExecError`] instead).
    pub fn into_eval(self) -> EvalError {
        match self {
            ExecError::Eval(e) => e,
            other => EvalError::Aborted(other.to_string()),
        }
    }

    /// The partial report of an aborted run, if this error carries one.
    pub fn partial_report(&self) -> Option<&ExecReport> {
        match self {
            ExecError::Deadline { partial, .. }
            | ExecError::Cancelled { partial }
            | ExecError::RetryBudgetExhausted { partial, .. } => Some(partial),
            ExecError::Eval(_) | ExecError::Runtime(_) => None,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ExecError::Runtime(e) => write!(f, "runtime failed: {e}"),
            ExecError::Deadline {
                deadline,
                elapsed,
                partial,
            } => write!(
                f,
                "deadline of {:.3}s exceeded after {:.3}s ({} chunk executions completed)",
                deadline.as_secs_f64(),
                elapsed.as_secs_f64(),
                partial.chunk_executions
            ),
            ExecError::Cancelled { partial } => write!(
                f,
                "run cancelled ({} chunk executions completed)",
                partial.chunk_executions
            ),
            ExecError::RetryBudgetExhausted {
                chunk,
                budget,
                message,
                ..
            } => write!(
                f,
                "retry budget of {budget} spent; chunk {chunk} still failing: {message}"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Eval(e) => Some(e),
            ExecError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> ExecError {
        ExecError::Eval(e)
    }
}

impl From<RuntimeError> for ExecError {
    fn from(e: RuntimeError) -> ExecError {
        ExecError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display() {
        let e = EvalError::IndexOutOfBounds { index: 5, len: 3 };
        assert_eq!(
            e.to_string(),
            "index 5 out of bounds for collection of length 3"
        );
    }

    #[test]
    fn error_trait() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        assert_err(EvalError::EmptyReduce);
        assert_err(ExecError::Cancelled {
            partial: ExecReport::default(),
        });
    }

    #[test]
    fn exec_error_chains_sources() {
        let e = ExecError::from(EvalError::DivisionByZero);
        assert!(e.source().unwrap().to_string().contains("division"));
        let r = ExecError::from(RuntimeError::NoSurvivors);
        assert!(r.source().unwrap().to_string().contains("replan"));
        let d = ExecError::Deadline {
            deadline: Duration::from_millis(10),
            elapsed: Duration::from_millis(11),
            partial: ExecReport::default(),
        };
        assert!(d.source().is_none());
        assert!(d.partial_report().is_some());
    }

    #[test]
    fn into_eval_keeps_eval_and_stringifies_aborts() {
        assert_eq!(
            ExecError::from(EvalError::EmptyReduce).into_eval(),
            EvalError::EmptyReduce
        );
        match (ExecError::Cancelled {
            partial: ExecReport::default(),
        })
        .into_eval()
        {
            EvalError::Aborted(msg) => assert!(msg.contains("cancelled"), "{msg}"),
            other => panic!("expected Aborted, got {other:?}"),
        }
    }
}
