//! Process-wide execution-tier counters.
//!
//! The interpreter is invoked from many call sites (direct `run`, parallel
//! chunks, benches), so tier accounting lives in atomics rather than being
//! threaded through every call. `dmll-runtime` mirrors these numbers into
//! its profiling report via [`TierTotals`]; see
//! `crates/runtime/src/profile.rs`.

use crate::compile::BatchIneligible;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

static KERNELS_COMPILED: AtomicU64 = AtomicU64::new(0);
static KERNEL_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static FALLBACK_LOOPS: AtomicU64 = AtomicU64::new(0);
static COMPILE_NANOS: AtomicU64 = AtomicU64::new(0);

static COMPILED_LOOPS: AtomicU64 = AtomicU64::new(0);
static COMPILED_ELEMENTS: AtomicU64 = AtomicU64::new(0);
static COMPILED_NANOS: AtomicU64 = AtomicU64::new(0);

static TREEWALK_LOOPS: AtomicU64 = AtomicU64::new(0);
static TREEWALK_ELEMENTS: AtomicU64 = AtomicU64::new(0);
static TREEWALK_NANOS: AtomicU64 = AtomicU64::new(0);

static BATCHED_LOOPS: AtomicU64 = AtomicU64::new(0);
static BATCHED_ELEMENTS: AtomicU64 = AtomicU64::new(0);
static BATCHED_NANOS: AtomicU64 = AtomicU64::new(0);
static BATCHED_BLOCKS: AtomicU64 = AtomicU64::new(0);
static TAIL_ELEMENTS: AtomicU64 = AtomicU64::new(0);
static SIMD_BLOCKS: AtomicU64 = AtomicU64::new(0);
static SEGMENTED_BLOCKS: AtomicU64 = AtomicU64::new(0);
static SCATTER_LOOPS: AtomicU64 = AtomicU64::new(0);

static NATIVE_LOOPS: AtomicU64 = AtomicU64::new(0);
static NATIVE_ELEMENTS: AtomicU64 = AtomicU64::new(0);
static NATIVE_NANOS: AtomicU64 = AtomicU64::new(0);
static NATIVE_COMPILES: AtomicU64 = AtomicU64::new(0);
static NATIVE_COMPILE_NANOS: AtomicU64 = AtomicU64::new(0);
static NATIVE_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static NATIVE_FALLBACK_REASONS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

static TASKS_STOLEN: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static NEGATIVE_HITS: AtomicU64 = AtomicU64::new(0);

static SPECULATIVE_LAUNCHES: AtomicU64 = AtomicU64::new(0);
static SPECULATION_WINS: AtomicU64 = AtomicU64::new(0);
static QUARANTINE_TRIPS: AtomicU64 = AtomicU64::new(0);
static DEADLINE_ABORTS: AtomicU64 = AtomicU64::new(0);
static CANCELLED_ABORTS: AtomicU64 = AtomicU64::new(0);

static FUSION_APPLIED: AtomicU64 = AtomicU64::new(0);
static FUSION_REJECTED: AtomicU64 = AtomicU64::new(0);
static BATCH_INELIGIBLE: AtomicU64 = AtomicU64::new(0);
static BATCH_REJECT_REASONS: Mutex<BTreeMap<BatchIneligible, u64>> = Mutex::new(BTreeMap::new());

static CLUSTER_LOOPS: AtomicU64 = AtomicU64::new(0);
static CLUSTER_SHUFFLES: AtomicU64 = AtomicU64::new(0);
static SHUFFLE_SENDS: AtomicU64 = AtomicU64::new(0);
static SHUFFLE_BYTES: AtomicU64 = AtomicU64::new(0);
static LINK_RETRIES: AtomicU64 = AtomicU64::new(0);
static LINEAGE_RECOVERIES: AtomicU64 = AtomicU64::new(0);
static HALO_EXCHANGES: AtomicU64 = AtomicU64::new(0);
static CLUSTER_NETWORK_NANOS: AtomicU64 = AtomicU64::new(0);

static SHARDED_LOOPS: AtomicU64 = AtomicU64::new(0);
static STENCIL_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static PARTITION_WARNINGS: AtomicU64 = AtomicU64::new(0);
static REGION_LOCAL_TASKS: AtomicU64 = AtomicU64::new(0);
static CROSS_REGION_STEALS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_compile(d: Duration) {
    KERNELS_COMPILED.fetch_add(1, Ordering::Relaxed);
    COMPILE_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_cache_hit() {
    KERNEL_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_fallback() {
    FALLBACK_LOOPS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_compiled(elements: u64, d: Duration) {
    COMPILED_LOOPS.fetch_add(1, Ordering::Relaxed);
    COMPILED_ELEMENTS.fetch_add(elements, Ordering::Relaxed);
    COMPILED_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

pub(crate) fn record_treewalk(elements: u64, d: Duration) {
    TREEWALK_LOOPS.fetch_add(1, Ordering::Relaxed);
    TREEWALK_ELEMENTS.fetch_add(elements, Ordering::Relaxed);
    TREEWALK_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

/// A top-level loop executed block-at-a-time. Batched loops are a subset of
/// compiled loops: callers record both, so `batched_* <= compiled_*`.
pub(crate) fn record_batched(elements: u64, d: Duration) {
    BATCHED_LOOPS.fetch_add(1, Ordering::Relaxed);
    BATCHED_ELEMENTS.fetch_add(elements, Ordering::Relaxed);
    BATCHED_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

/// Full blocks and scalar-tail elements from one `run_range_batched` call.
pub(crate) fn record_batched_range(blocks: u64, tail_elements: u64) {
    BATCHED_BLOCKS.fetch_add(blocks, Ordering::Relaxed);
    TAIL_ELEMENTS.fetch_add(tail_elements, Ordering::Relaxed);
}

/// Per-element block executions that took the full-width lane-chunked
/// (SIMD-lowered) path — no selection vector, all [`BLOCK`] lanes live.
///
/// [`BLOCK`]: crate::compile::batch::BLOCK
pub(crate) fn record_simd_blocks(n: u64) {
    SIMD_BLOCKS.fetch_add(n, Ordering::Relaxed);
}

/// Flattened-chunk executions of segmented nested loops (variable per-lane
/// trip counts, CSR-style flattening; see `crate::compile::batch`).
pub(crate) fn record_segmented_blocks(n: u64) {
    SEGMENTED_BLOCKS.fetch_add(n, Ordering::Relaxed);
}

/// A loop range served by the dedicated AoS→SoA scatter path: typed
/// column extraction with no per-element bytecode dispatch.
pub(crate) fn record_scatter_loop() {
    SCATTER_LOOPS.fetch_add(1, Ordering::Relaxed);
}

/// A top-level loop that ran through a compiled-and-`dlopen`ed native
/// kernel. Native loops are a subset of compiled loops, disjoint from
/// batched loops (a loop runs one or the other).
pub(crate) fn record_native(elements: u64, d: Duration) {
    NATIVE_LOOPS.fetch_add(1, Ordering::Relaxed);
    NATIVE_ELEMENTS.fetch_add(elements, Ordering::Relaxed);
    NATIVE_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

/// One kernel emitted, compiled by the system C compiler, and loaded.
pub(crate) fn record_native_compile(d: Duration) {
    NATIVE_COMPILES.fetch_add(1, Ordering::Relaxed);
    NATIVE_COMPILE_NANOS.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

/// A native-tier request that fell back to the batched tier, with the
/// typed decline's stable key (see `dmll_codegen::NativeIneligible`).
pub(crate) fn record_native_fallback(reason: &'static str) {
    NATIVE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    *NATIVE_FALLBACK_REASONS.lock().unwrap().entry(reason).or_insert(0) += 1;
}

/// Snapshot of native-tier decline reasons seen so far, keyed by the
/// typed `NativeIneligible` taxonomy's stable identifiers.
pub fn native_fallback_reasons() -> BTreeMap<&'static str, u64> {
    NATIVE_FALLBACK_REASONS.lock().unwrap().clone()
}

pub(crate) fn record_steals(n: u64) {
    TASKS_STOLEN.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_eviction() {
    CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_negative_hit() {
    NEGATIVE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_speculation_launch() {
    SPECULATIVE_LAUNCHES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_speculation_win() {
    SPECULATION_WINS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_quarantine_trips(n: u64) {
    QUARANTINE_TRIPS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_deadline_abort() {
    DEADLINE_ABORTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cancelled_abort() {
    CANCELLED_ABORTS.fetch_add(1, Ordering::Relaxed);
}

/// Fusion rewrites the pre-compile hook applied / declined to this run's
/// program (taken from the cached rewrite report, once per execution).
pub(crate) fn record_fusion(applied: u64, rejected: u64) {
    FUSION_APPLIED.fetch_add(applied, Ordering::Relaxed);
    FUSION_REJECTED.fetch_add(rejected, Ordering::Relaxed);
}

/// A compiled loop that ran scalar because its kernel failed batch
/// certification, with the typed reason from the certifier.
pub(crate) fn record_batch_ineligible(reason: BatchIneligible) {
    BATCH_INELIGIBLE.fetch_add(1, Ordering::Relaxed);
    *BATCH_REJECT_REASONS.lock().unwrap().entry(reason).or_insert(0) += 1;
}

/// Snapshot of batch-certification rejection reasons seen so far, with
/// per-reason loop-execution counts, keyed by the typed
/// [`BatchIneligible`] taxonomy (use [`BatchIneligible::key`] for a
/// stable JSON identifier).
pub fn batch_reject_reasons() -> BTreeMap<BatchIneligible, u64> {
    BATCH_REJECT_REASONS.lock().unwrap().clone()
}

/// One top-level loop executed on the measured cluster data plane.
pub(crate) fn record_cluster_loop() {
    CLUSTER_LOOPS.fetch_add(1, Ordering::Relaxed);
}

/// One cluster epoch that ran a real shuffle phase.
pub(crate) fn record_cluster_shuffle() {
    CLUSTER_SHUFFLES.fetch_add(1, Ordering::Relaxed);
}

/// Inter-node traffic from one cluster epoch: messages and payload bytes.
pub(crate) fn record_cluster_traffic(sends: u64, bytes: u64) {
    SHUFFLE_SENDS.fetch_add(sends, Ordering::Relaxed);
    SHUFFLE_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Cluster sends retried after an injected link flake.
pub(crate) fn record_link_retries(n: u64) {
    LINK_RETRIES.fetch_add(n, Ordering::Relaxed);
}

/// Tasks re-executed on survivors after a node died holding their results.
pub(crate) fn record_lineage_recoveries(n: u64) {
    LINEAGE_RECOVERIES.fetch_add(n, Ordering::Relaxed);
}

/// Halo margins exchanged for stencil reads during partitioned staging.
pub(crate) fn record_halo_exchanges(n: u64) {
    HALO_EXCHANGES.fetch_add(n, Ordering::Relaxed);
}

/// Simulated nanoseconds charged through the cluster network model.
pub(crate) fn record_cluster_network_nanos(n: u64) {
    CLUSTER_NETWORK_NANOS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_sharded_loop() {
    SHARDED_LOOPS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_stencil_fallbacks(n: u64) {
    STENCIL_FALLBACKS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_partition_warnings(n: u64) {
    PARTITION_WARNINGS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_region_local_tasks(n: u64) {
    REGION_LOCAL_TASKS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn record_cross_region_steals(n: u64) {
    CROSS_REGION_STEALS.fetch_add(n, Ordering::Relaxed);
}

/// A snapshot of the tier counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierTotals {
    /// Multiloops lowered to bytecode (cache misses that compiled).
    pub kernels_compiled: u64,
    /// Kernel-cache hits.
    pub kernel_cache_hits: u64,
    /// Multiloops the compiler rejected (ran on the tree-walker).
    pub fallback_loops: u64,
    /// Total time spent compiling, in nanoseconds.
    pub compile_nanos: u64,
    /// Top-level loop executions on the compiled tier.
    pub compiled_loops: u64,
    /// Elements traversed by the compiled tier.
    pub compiled_elements: u64,
    /// Wall time of compiled-tier loop execution, in nanoseconds.
    pub compiled_nanos: u64,
    /// Top-level loop executions on the tree-walking tier.
    pub treewalk_loops: u64,
    /// Elements traversed by the tree-walking tier.
    pub treewalk_elements: u64,
    /// Wall time of tree-walking loop execution, in nanoseconds.
    pub treewalk_nanos: u64,
    /// Compiled loops that executed block-at-a-time (subset of
    /// `compiled_loops`).
    pub batched_loops: u64,
    /// Elements traversed by batched loop executions.
    pub batched_elements: u64,
    /// Wall time of batched loop execution, in nanoseconds (also counted
    /// in `compiled_nanos`).
    pub batched_nanos: u64,
    /// Full-width blocks executed by the batched tier.
    pub batched_blocks: u64,
    /// Elements handled by the scalar-tail path of batched executions.
    pub tail_elements: u64,
    /// Per-element block executions that ran the full-width lane-chunked
    /// (SIMD-lowered) path — all lanes live, no selection vector.
    pub simd_blocks: u64,
    /// Flattened iteration-space chunks executed by segmented nested loops
    /// (variable per-lane trip counts batched via CSR-style flattening).
    pub segmented_blocks: u64,
    /// Loop ranges served by the dedicated AoS→SoA scatter fast path
    /// (typed field extraction from a boxed struct array).
    pub scatter_loops: u64,
    /// Top-level loop executions on the native (compiled C) tier.
    pub native_loops: u64,
    /// Elements traversed by the native tier.
    pub native_elements: u64,
    /// Wall time of native-tier loop execution, in nanoseconds (also
    /// counted in `compiled_nanos`).
    pub native_nanos: u64,
    /// Kernels emitted as C, compiled, and `dlopen`ed.
    pub native_compiles: u64,
    /// Total time spent invoking the system C compiler, in nanoseconds.
    pub native_compile_nanos: u64,
    /// Native-tier requests that fell back to the batched tier (see
    /// [`native_fallback_reasons`] for the why).
    pub native_fallbacks: u64,
    /// Block-granular tasks executed by a worker other than their owner.
    pub tasks_stolen: u64,
    /// Kernel-cache entries evicted (LRU).
    pub cache_evictions: u64,
    /// Cache hits on negative (rejected-compilation) entries.
    pub negative_hits: u64,
    /// Speculative task clones launched against stragglers.
    pub speculative_launches: u64,
    /// Speculative clones whose result was recorded first.
    pub speculation_wins: u64,
    /// Worker circuit-breaker trips (quarantine entries).
    pub quarantine_trips: u64,
    /// Supervised runs aborted by their wall-clock deadline.
    pub deadline_aborts: u64,
    /// Supervised runs aborted by cancellation.
    pub cancelled_aborts: u64,
    /// Loop executions scheduled by the partitioned data plane (tasks had
    /// home regions; bucket merges used the region stitch).
    pub sharded_loops: u64,
    /// Per-loop collection reads served from the shared path because their
    /// stencil was `Unknown` (§4.2's "fall back to runtime data movement").
    pub stencil_fallbacks: u64,
    /// Partition-analysis warnings attached to executed access plans.
    pub partition_warnings: u64,
    /// Sharded tasks executed inside their home region.
    pub region_local_tasks: u64,
    /// Sharded tasks stolen across a region boundary (only after the
    /// thief's own region ran dry).
    pub cross_region_steals: u64,
    /// Fusion rewrites applied by the pre-compile hook (per executed run).
    pub fusion_applied: u64,
    /// Fusion candidates the cost model declined (per executed run).
    pub fusion_rejected: u64,
    /// Compiled-loop executions that ran scalar because batch certification
    /// rejected the kernel (see [`batch_reject_reasons`] for the why).
    pub batch_ineligible: u64,
    /// Top-level loops executed on the measured cluster data plane
    /// (directory-partitioned tasks over N simulated nodes).
    pub cluster_loops: u64,
    /// Cluster epochs that ran a real shuffle phase (bucket outputs
    /// hash-partitioned to owner nodes).
    pub cluster_shuffles: u64,
    /// Inter-node messages sent by cluster epochs (staging, acks,
    /// shuffle, recovery).
    pub shuffle_sends: u64,
    /// Payload bytes moved by those messages.
    pub shuffle_bytes: u64,
    /// Cluster sends retried after an injected link flake.
    pub link_retries: u64,
    /// Tasks re-executed on survivors after losing a node's held results
    /// (lineage recovery).
    pub lineage_recoveries: u64,
    /// Halo margins exchanged between neighbouring nodes for stencil
    /// reads during partitioned staging.
    pub halo_exchanges: u64,
    /// Simulated nanoseconds charged through the cluster network model.
    pub cluster_network_nanos: u64,
}

impl TierTotals {
    /// Elements per second on the compiled tier, if it ran at all.
    pub fn compiled_elements_per_sec(&self) -> Option<f64> {
        rate(self.compiled_elements, self.compiled_nanos)
    }

    /// Elements per second on the tree-walking tier, if it ran at all.
    pub fn treewalk_elements_per_sec(&self) -> Option<f64> {
        rate(self.treewalk_elements, self.treewalk_nanos)
    }

    /// Elements per second on the batched sub-tier, if it ran at all.
    pub fn batched_elements_per_sec(&self) -> Option<f64> {
        rate(self.batched_elements, self.batched_nanos)
    }

    /// Elements per second on the native tier, if it ran at all.
    pub fn native_elements_per_sec(&self) -> Option<f64> {
        rate(self.native_elements, self.native_nanos)
    }
}

fn rate(elements: u64, nanos: u64) -> Option<f64> {
    if nanos == 0 {
        None
    } else {
        Some(elements as f64 * 1e9 / nanos as f64)
    }
}

/// Read the current counter values.
pub fn tier_totals() -> TierTotals {
    TierTotals {
        kernels_compiled: KERNELS_COMPILED.load(Ordering::Relaxed),
        kernel_cache_hits: KERNEL_CACHE_HITS.load(Ordering::Relaxed),
        fallback_loops: FALLBACK_LOOPS.load(Ordering::Relaxed),
        compile_nanos: COMPILE_NANOS.load(Ordering::Relaxed),
        compiled_loops: COMPILED_LOOPS.load(Ordering::Relaxed),
        compiled_elements: COMPILED_ELEMENTS.load(Ordering::Relaxed),
        compiled_nanos: COMPILED_NANOS.load(Ordering::Relaxed),
        treewalk_loops: TREEWALK_LOOPS.load(Ordering::Relaxed),
        treewalk_elements: TREEWALK_ELEMENTS.load(Ordering::Relaxed),
        treewalk_nanos: TREEWALK_NANOS.load(Ordering::Relaxed),
        batched_loops: BATCHED_LOOPS.load(Ordering::Relaxed),
        batched_elements: BATCHED_ELEMENTS.load(Ordering::Relaxed),
        batched_nanos: BATCHED_NANOS.load(Ordering::Relaxed),
        batched_blocks: BATCHED_BLOCKS.load(Ordering::Relaxed),
        tail_elements: TAIL_ELEMENTS.load(Ordering::Relaxed),
        simd_blocks: SIMD_BLOCKS.load(Ordering::Relaxed),
        segmented_blocks: SEGMENTED_BLOCKS.load(Ordering::Relaxed),
        scatter_loops: SCATTER_LOOPS.load(Ordering::Relaxed),
        native_loops: NATIVE_LOOPS.load(Ordering::Relaxed),
        native_elements: NATIVE_ELEMENTS.load(Ordering::Relaxed),
        native_nanos: NATIVE_NANOS.load(Ordering::Relaxed),
        native_compiles: NATIVE_COMPILES.load(Ordering::Relaxed),
        native_compile_nanos: NATIVE_COMPILE_NANOS.load(Ordering::Relaxed),
        native_fallbacks: NATIVE_FALLBACKS.load(Ordering::Relaxed),
        tasks_stolen: TASKS_STOLEN.load(Ordering::Relaxed),
        cache_evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
        negative_hits: NEGATIVE_HITS.load(Ordering::Relaxed),
        speculative_launches: SPECULATIVE_LAUNCHES.load(Ordering::Relaxed),
        speculation_wins: SPECULATION_WINS.load(Ordering::Relaxed),
        quarantine_trips: QUARANTINE_TRIPS.load(Ordering::Relaxed),
        deadline_aborts: DEADLINE_ABORTS.load(Ordering::Relaxed),
        cancelled_aborts: CANCELLED_ABORTS.load(Ordering::Relaxed),
        sharded_loops: SHARDED_LOOPS.load(Ordering::Relaxed),
        stencil_fallbacks: STENCIL_FALLBACKS.load(Ordering::Relaxed),
        partition_warnings: PARTITION_WARNINGS.load(Ordering::Relaxed),
        region_local_tasks: REGION_LOCAL_TASKS.load(Ordering::Relaxed),
        cross_region_steals: CROSS_REGION_STEALS.load(Ordering::Relaxed),
        fusion_applied: FUSION_APPLIED.load(Ordering::Relaxed),
        fusion_rejected: FUSION_REJECTED.load(Ordering::Relaxed),
        batch_ineligible: BATCH_INELIGIBLE.load(Ordering::Relaxed),
        cluster_loops: CLUSTER_LOOPS.load(Ordering::Relaxed),
        cluster_shuffles: CLUSTER_SHUFFLES.load(Ordering::Relaxed),
        shuffle_sends: SHUFFLE_SENDS.load(Ordering::Relaxed),
        shuffle_bytes: SHUFFLE_BYTES.load(Ordering::Relaxed),
        link_retries: LINK_RETRIES.load(Ordering::Relaxed),
        lineage_recoveries: LINEAGE_RECOVERIES.load(Ordering::Relaxed),
        halo_exchanges: HALO_EXCHANGES.load(Ordering::Relaxed),
        cluster_network_nanos: CLUSTER_NETWORK_NANOS.load(Ordering::Relaxed),
    }
}

/// Zero all counters (benches isolate per-tier measurements with this).
pub fn reset_tier_totals() {
    for c in [
        &KERNELS_COMPILED,
        &KERNEL_CACHE_HITS,
        &FALLBACK_LOOPS,
        &COMPILE_NANOS,
        &COMPILED_LOOPS,
        &COMPILED_ELEMENTS,
        &COMPILED_NANOS,
        &TREEWALK_LOOPS,
        &TREEWALK_ELEMENTS,
        &TREEWALK_NANOS,
        &BATCHED_LOOPS,
        &BATCHED_ELEMENTS,
        &BATCHED_NANOS,
        &BATCHED_BLOCKS,
        &TAIL_ELEMENTS,
        &SIMD_BLOCKS,
        &SEGMENTED_BLOCKS,
        &SCATTER_LOOPS,
        &NATIVE_LOOPS,
        &NATIVE_ELEMENTS,
        &NATIVE_NANOS,
        &NATIVE_COMPILES,
        &NATIVE_COMPILE_NANOS,
        &NATIVE_FALLBACKS,
        &TASKS_STOLEN,
        &CACHE_EVICTIONS,
        &NEGATIVE_HITS,
        &SPECULATIVE_LAUNCHES,
        &SPECULATION_WINS,
        &QUARANTINE_TRIPS,
        &DEADLINE_ABORTS,
        &CANCELLED_ABORTS,
        &SHARDED_LOOPS,
        &STENCIL_FALLBACKS,
        &PARTITION_WARNINGS,
        &REGION_LOCAL_TASKS,
        &CROSS_REGION_STEALS,
        &FUSION_APPLIED,
        &FUSION_REJECTED,
        &BATCH_INELIGIBLE,
        &CLUSTER_LOOPS,
        &CLUSTER_SHUFFLES,
        &SHUFFLE_SENDS,
        &SHUFFLE_BYTES,
        &LINK_RETRIES,
        &LINEAGE_RECOVERIES,
        &HALO_EXCHANGES,
        &CLUSTER_NETWORK_NANOS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
    BATCH_REJECT_REASONS.lock().unwrap().clear();
    NATIVE_FALLBACK_REASONS.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let t = TierTotals {
            compiled_elements: 2_000,
            compiled_nanos: 1_000_000_000,
            ..TierTotals::default()
        };
        assert_eq!(t.compiled_elements_per_sec(), Some(2_000.0));
        assert_eq!(t.treewalk_elements_per_sec(), None);
    }
}
