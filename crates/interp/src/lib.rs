#![warn(missing_docs)]

//! # DMLL reference interpreter
//!
//! Executes DMLL programs directly, implementing the sequential semantics of
//! Figure 2 exactly ([`eval`]) plus a chunked multithreaded executor for
//! top-level multiloops ([`eval_parallel`]) that mirrors how the runtime
//! splits a multiloop into index sub-ranges ("a multiloop is agnostic to
//! whether it runs over the entire loop bounds or a subset", §5).
//!
//! The interpreter is the project's semantic ground truth: transformation
//! tests run programs before and after a rewrite on random inputs and demand
//! identical results.
//!
//! ```
//! use dmll_frontend::Stage;
//! use dmll_core::{LayoutHint, Ty};
//! use dmll_interp::{eval, Value};
//!
//! let mut st = Stage::new();
//! let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Local);
//! let total = st.sum(&x);
//! let p = st.finish(&total);
//!
//! let out = eval(&p, &[("x", Value::f64_arr(vec![1.0, 2.0, 3.5]))])?;
//! assert_eq!(out, Value::F64(6.5));
//! # Ok::<(), dmll_interp::EvalError>(())
//! ```

pub mod cluster;
mod compile;
pub mod error;
pub mod eval;
mod fuse;
pub mod parallel;
pub mod stats;
pub mod value;

pub use cluster::{eval_cluster_measured, ClusterOptions, ClusterReport};
pub use compile::{BatchIneligible, CacheStats, KernelCacheHandle};
pub use error::{EvalError, ExecError};
pub use eval::{eval, eval_tree_walk, eval_with_externs, ExternFn, Externs, Interp, RunReport};
pub use parallel::{
    eval_parallel, eval_parallel_report, eval_parallel_supervised, ChunkFaults, ExecReport,
    ParallelOptions,
};
pub use stats::{
    batch_reject_reasons, native_fallback_reasons, reset_tier_totals, tier_totals, TierTotals,
};
pub use value::{ArrayVal, BucketsVal, Key, StructVal, Value};
