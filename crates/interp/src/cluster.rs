//! Measured cluster execution: sharded multiloops over N simulated nodes.
//!
//! Each node is a thread with its own interpreter and persistent
//! environment; nodes exchange state by message passing only, and every
//! inter-node message is charged through the [`ClusterPlane`] network
//! model (latency + bandwidth, seeded link flakes, capped-backoff
//! retries). The coordinator stages inputs according to the analysis
//! [`Placement`] plan (partitioned windows with halo exchange, or
//! broadcast), dispatches directory-homed tasks, recovers shards lost to
//! node deaths by lineage re-execution on survivors, speculates against
//! stragglers, and drains a real shuffle phase for bucket generators.
//!
//! Bit-identity with the single-node tiers is structural, not accidental:
//! nodes execute tasks with the tree-walking interpreter over the *same*
//! blind task plan as the single-node chunked executor, per-task
//! accumulators fold in ascending task order through the same
//! [`merge_pair`] merge, and shuffled buckets reassemble in global
//! first-seen key order. The differential tests and the cluster chaos
//! gate in `bench` pin this equality under injected node deaths, link
//! flakes, and speculation.

// Same contract as `parallel.rs`: `ExecError` embeds the partial
// `ExecReport` inline in its abort variants, and the Err path only fires
// on watchdog/fault aborts — boxing it would trade a cold-path copy for
// an allocation and break the by-value contract.
#![allow(clippy::result_large_err)]

use crate::error::{EvalError, ExecError};
use crate::eval::{Acc, Env, Interp};
use crate::parallel::{interp_eval_size, loop_touched_slots, merge_pair, plan_tasks, ExecReport};
use crate::stats;
use crate::value::{ArrayVal, Key, Value};
use dmll_core::{Def, Gen, Multiloop, Program, Sym};
use dmll_runtime::{
    Chunk, ClusterPlane, ClusterSpec, FaultInjector, FaultPlan, LoopPlan, Placement, ProgramPlan,
    RetryPolicy, RuntimeError, SchedulePlan, SpeculationPolicy,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the coordinator wakes to check the watchdog and speculation
/// cutoffs while waiting on node acks.
const POLL: Duration = Duration::from_millis(2);

/// Cap on the *real* sleep a straggler-injected node adds on top of its
/// reported (simulated) slowdown, so tests stay fast.
const STRAGGLER_SLEEP_CAP_NANOS: u64 = 20_000_000;

/// Configuration for one measured cluster evaluation.
#[derive(Clone)]
pub struct ClusterOptions {
    /// Simulated nodes (threads with isolated state).
    pub nodes: usize,
    /// Task-plan width; must match the single-node baseline for
    /// bit-identity (the task plan, not the node count, fixes fold order).
    pub threads: usize,
    /// Network model the data plane charges transfers through. The
    /// `nodes` field of the spec is overridden by [`ClusterOptions::nodes`].
    pub spec: ClusterSpec,
    /// Seeded fault plan: node deaths fire at epoch/shuffle step
    /// boundaries, link flakes on any inter-node send.
    pub faults: FaultPlan,
    /// Backoff schedule for flaked sends.
    pub retry: RetryPolicy,
    /// Placement plan from the analysis pipeline; reads without a
    /// `Partitioned` placement are broadcast.
    pub plan: Option<Arc<ProgramPlan>>,
    /// Straggler speculation policy (coordinator-side, wall clock).
    pub speculation: SpeculationPolicy,
    /// Nodes that must never be scheduled or used as recovery targets.
    pub quarantined: Vec<usize>,
    /// Per-epoch wall-clock bound; exceeded waits surface as
    /// [`ExecError::Deadline`].
    pub watchdog: Duration,
    /// Run the fusion rewrite before executing (matches the single-node
    /// entry points).
    pub fuse: bool,
}

impl ClusterOptions {
    /// Options for `nodes` nodes and a `threads`-wide task plan, with the
    /// stock network model, no faults, and speculation disabled.
    pub fn new(nodes: usize, threads: usize) -> ClusterOptions {
        ClusterOptions {
            nodes,
            threads,
            spec: ClusterSpec {
                nodes,
                ..ClusterSpec::amazon_20()
            },
            faults: FaultPlan::new(0),
            retry: RetryPolicy::default(),
            plan: None,
            speculation: SpeculationPolicy::disabled(),
            quarantined: Vec::new(),
            watchdog: Duration::from_secs(60),
            fuse: true,
        }
    }

    /// Replace the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> ClusterOptions {
        self.faults = faults;
        self
    }

    /// Attach an analysis placement plan.
    pub fn with_plan(mut self, plan: Arc<ProgramPlan>) -> ClusterOptions {
        self.plan = Some(plan);
        self
    }

    /// Replace the speculation policy.
    pub fn with_speculation(mut self, policy: SpeculationPolicy) -> ClusterOptions {
        self.speculation = policy;
        self
    }

    /// Replace the send retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ClusterOptions {
        self.retry = retry;
        self
    }

    /// Replace the network model (its `nodes` field is still overridden).
    pub fn with_spec(mut self, spec: ClusterSpec) -> ClusterOptions {
        self.spec = spec;
        self
    }

    /// Quarantine `nodes` out of scheduling and recovery.
    pub fn with_quarantined(mut self, nodes: Vec<usize>) -> ClusterOptions {
        self.quarantined = nodes;
        self
    }

    /// Disable the fusion rewrite.
    pub fn without_fusion(mut self) -> ClusterOptions {
        self.fuse = false;
        self
    }
}

/// What one measured cluster evaluation did, for gates and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterReport {
    /// Nodes the plane was built with.
    pub nodes: usize,
    /// Top-level loops executed across the cluster.
    pub cluster_loops: u64,
    /// Small loops run in place on the coordinator.
    pub coordinator_loops: u64,
    /// Cluster loops that drained a shuffle phase (bucket generators).
    pub shuffles: u64,
    /// Tasks dispatched to nodes (primaries only; speculative clones and
    /// recovery re-executions are counted separately).
    pub tasks: u64,
    /// Values staged into node environments (windows plus broadcasts).
    pub staged_values: u64,
    /// Halo margins charged as neighbor-to-node exchanges.
    pub halo_exchanges: u64,
    /// Speculative task clones launched against stragglers.
    pub speculative_tasks: u64,
    /// Speculative clones acked first.
    pub speculation_wins: u64,
    /// Tasks re-executed on survivors after their holders died.
    pub lineage_recoveries: u64,
    /// Nodes the fault plan killed during the run.
    pub node_deaths: u64,
    /// Inter-node messages charged through the network model.
    pub sends: u64,
    /// Payload bytes those messages moved.
    pub send_bytes: u64,
    /// Sends retried after a transient link flake.
    pub link_retries: u64,
    /// Sends that exhausted their retry budget.
    pub failed_sends: u64,
    /// Simulated nanoseconds charged for network transfers.
    pub network_nanos: u64,
}

/// The injector step at which epoch `e` (the `e`-th cluster-executed
/// loop) begins; node deaths scheduled here are visible to placement.
pub fn epoch_start_step(epoch: u64) -> u64 {
    2 * epoch + 1
}

/// The injector step at epoch `e`'s pre-shuffle boundary; nodes killed
/// here lose their held task results and force lineage recovery.
pub fn shuffle_step(epoch: u64) -> u64 {
    2 * epoch + 2
}

/// Evaluate `program` over a measured simulated cluster.
///
/// Returns the program result (bit-identical to [`crate::eval`] and the
/// single-node parallel tiers) and a [`ClusterReport`] of what the data
/// plane did.
///
/// # Errors
///
/// Evaluation errors surface as [`ExecError::Eval`]; cluster faults that
/// exhaust recovery (no survivors, send retry budgets) as
/// [`ExecError::Runtime`]; watchdog expiry as [`ExecError::Deadline`].
pub fn eval_cluster_measured(
    program: &Program,
    inputs: &[(&str, Value)],
    options: &ClusterOptions,
) -> Result<(Value, ClusterReport), ExecError> {
    if options.fuse {
        let fused = crate::fuse::fused_program(program);
        stats::record_fusion(fused.applied, fused.rejected);
        if let Some(fp) = &fused.program {
            return cluster_on(fp, inputs, options, fused.fingerprint);
        }
    }
    cluster_on(program, inputs, options, 0)
}

/// A coordinator- or peer-originated message into a node's single inbox.
enum NodeMsg {
    /// Bind `value` into the node's persistent environment at `slot`.
    Stage { slot: usize, value: Value },
    /// Run `tasks` of loop `loop_idx`; `patches` overlay staged slots for
    /// speculative clones and lineage re-execution without clobbering the
    /// node's own windows.
    Execute {
        loop_idx: usize,
        tasks: Vec<(usize, (i64, i64))>,
        patches: Vec<(usize, Value)>,
    },
    /// Drain the shuffle for loop `loop_idx`: emit held accs for `emit`
    /// tasks, exchange bucket items with `participants`, owner-merge, and
    /// report to the coordinator.
    Shuffle {
        loop_idx: usize,
        participants: Vec<usize>,
        emit: Vec<usize>,
    },
    /// Bucket items hash-routed here by a shuffle peer. Tagged with the
    /// loop so a fast peer's items, arriving before this node has even
    /// processed its own `Shuffle` message, are buffered — not dropped —
    /// and items from an aborted earlier epoch are discarded.
    Peer {
        loop_idx: usize,
        items: Vec<PeerItem>,
    },
    /// Tear down the node thread.
    Shutdown,
}

/// One keyed bucket entry in flight between shuffle peers.
struct PeerItem {
    gen: usize,
    task: usize,
    pos: usize,
    key: Value,
    val: PeerVal,
}

/// Bucket payload: a reduced value or a collected run.
#[derive(Clone)]
enum PeerVal {
    Reduced(Value),
    Collected(Vec<Value>),
}

/// A key's merged state on its shuffle owner, tagged with the globally
/// first task/position that emitted it so the coordinator can rebuild
/// first-seen key order.
struct MergedBucket {
    key: Value,
    val: PeerVal,
    first_task: usize,
    first_pos: usize,
}

/// A node-to-coordinator report. Every variant that can race across
/// epoch boundaries carries its loop index: a speculative clone or a
/// recovery re-execution from epoch `e` may ack while the coordinator is
/// already collecting epoch `e+1`, and an untagged ack would corrupt the
/// later epoch's task accounting.
enum FromNode {
    /// Task `task` of loop `loop_idx` finished on `node` in `nanos`
    /// simulated time.
    MapDone {
        node: usize,
        loop_idx: usize,
        task: usize,
        nanos: u64,
    },
    /// Shuffle for loop `loop_idx` drained on `node`: plain per-task accs
    /// it held, and merged buckets it owns, both keyed by generator index.
    ShuffleDone {
        node: usize,
        loop_idx: usize,
        plain: Vec<(usize, Vec<(usize, Acc)>)>,
        merged: Vec<(usize, Vec<MergedBucket>)>,
    },
    /// `node` hit an unrecoverable error.
    Failed {
        /// Reporting node; carried for protocol completeness (the typed
        /// error itself already names the failing link or node).
        #[allow(dead_code)]
        node: usize,
        error: NodeError,
    },
}

/// Why a node failed.
enum NodeError {
    Eval(EvalError),
    Runtime(RuntimeError),
    /// A peer exchange stalled past the watchdog; surfaced as a deadline
    /// abort (the reason string documents the stalled phase at the site).
    Stalled(#[allow(dead_code)] &'static str),
}

fn cluster_on(
    program: &Program,
    inputs: &[(&str, Value)],
    options: &ClusterOptions,
    fingerprint: u64,
) -> Result<(Value, ClusterReport), ExecError> {
    let nodes = options.nodes.max(1);
    let spec = ClusterSpec {
        nodes,
        ..options.spec
    };
    let injector = Arc::new(FaultInjector::new(options.faults.clone()));
    let plane = ClusterPlane::new(spec, injector.clone(), options.retry);

    let interp = Interp::new(program).with_fuse_fingerprint(fingerprint);
    let mut env: Env = vec![None; program.next_sym_id() as usize];
    for input in &program.inputs {
        let v = inputs
            .iter()
            .find(|(n, _)| *n == input.name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| EvalError::MissingInput(input.name.clone()))?;
        env[input.sym.0 as usize] = Some(v);
    }
    if let Some(plan) = &options.plan {
        stats::record_partition_warnings(plan.warnings.len() as u64);
    }

    let mut report = ClusterReport {
        nodes,
        ..ClusterReport::default()
    };

    let result = std::thread::scope(|scope| {
        let mut to_nodes: Vec<Sender<NodeMsg>> = Vec::with_capacity(nodes);
        let mut inboxes: Vec<Receiver<NodeMsg>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = channel::<NodeMsg>();
            to_nodes.push(tx);
            inboxes.push(rx);
        }
        let (from_tx, from_rx) = channel::<FromNode>();
        for (k, rx) in inboxes.into_iter().enumerate() {
            let peers = to_nodes.clone();
            let coord = from_tx.clone();
            let node_plane = plane.clone();
            let watchdog = options.watchdog;
            scope.spawn(move || {
                node_main(k, program, fingerprint, rx, peers, coord, node_plane, watchdog);
            });
        }
        drop(from_tx);
        let out = drive(
            &interp, program, &mut env, options, &plane, &injector, &to_nodes, &from_rx,
            &mut report,
        );
        // Always tear the nodes down, on success and on error, so the
        // scope join never hangs on a node blocked in its inbox.
        for tx in &to_nodes {
            let _ = tx.send(NodeMsg::Shutdown);
        }
        out
    });

    let net = plane.stats().net_snapshot();
    report.sends = net.sends;
    report.send_bytes = net.send_bytes;
    report.link_retries = net.send_retries;
    report.failed_sends = net.failed_sends;
    report.network_nanos = net.network_nanos;
    report.node_deaths = injector
        .failed_nodes()
        .iter()
        .filter(|&&n| n < nodes)
        .count() as u64;
    stats::record_cluster_traffic(net.sends, net.send_bytes);
    stats::record_link_retries(net.send_retries);
    stats::record_cluster_network_nanos(net.network_nanos);
    stats::record_halo_exchanges(report.halo_exchanges);

    let value = result?;
    Ok((value, report))
}

/// The coordinator's statement loop: small loops run in place, everything
/// else becomes a cluster epoch.
#[allow(clippy::too_many_arguments)]
fn drive(
    interp: &Interp<'_>,
    program: &Program,
    env: &mut Env,
    options: &ClusterOptions,
    plane: &ClusterPlane,
    injector: &Arc<FaultInjector>,
    to_nodes: &[Sender<NodeMsg>],
    from_rx: &Receiver<FromNode>,
    report: &mut ClusterReport,
) -> Result<Value, ExecError> {
    let threads = options.threads.max(1);
    let mut loop_idx = 0usize;
    for stmt in &program.body.stmts {
        match &stmt.def {
            Def::Loop(ml) => {
                let size = match interp_eval_size(interp, &ml.size, env)? {
                    n if n <= 0 => 0,
                    n => n,
                };
                let vals = if size < threads as i64 * 4 {
                    // Same threshold as the single-node supervised path:
                    // not worth sharding, run on the coordinator's tiers.
                    report.coordinator_loops += 1;
                    let (out, _compiled) = interp.eval_loop_tiered(ml, env, true, true, false)?;
                    out
                } else {
                    run_epoch(
                        interp,
                        ml,
                        env,
                        loop_idx,
                        stmt.lhs.first().copied(),
                        size,
                        options,
                        plane,
                        injector,
                        to_nodes,
                        from_rx,
                        report,
                    )?
                };
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
                loop_idx += 1;
            }
            other => {
                let vals = interp.eval_def_owned(other, env)?;
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
        }
    }
    Ok(interp.eval_exp(&program.body.result, env)?)
}

/// Execute one multiloop as a cluster epoch: place, stage, dispatch,
/// speculate, recover, shuffle, assemble.
#[allow(clippy::too_many_arguments)]
fn run_epoch(
    interp: &Interp<'_>,
    ml: &Multiloop,
    env: &mut Env,
    loop_idx: usize,
    loop_sym: Option<Sym>,
    size: i64,
    options: &ClusterOptions,
    plane: &ClusterPlane,
    injector: &Arc<FaultInjector>,
    to_nodes: &[Sender<NodeMsg>],
    from_rx: &Receiver<FromNode>,
    report: &mut ClusterReport,
) -> Result<Vec<Value>, ExecError> {
    let nodes = to_nodes.len();
    // Epoch boundary: deaths scheduled for this step fire before placement
    // sees the cluster, so dead nodes are never primaries.
    injector.advance_step();
    let dead: Vec<usize> = injector
        .failed_nodes()
        .into_iter()
        .filter(|&n| n < nodes)
        .collect();

    let directory = plane.directory(size);
    let node_map = plane.node_map(size);
    let tasks = plan_tasks(size, options.threads);

    // Home every task on the node owning its range start, then route the
    // homes through the shared replanner so dead and quarantined nodes
    // are avoided with the same policy recovery uses.
    let homes = SchedulePlan {
        chunks: tasks
            .iter()
            .map(|&(s, _e)| Chunk {
                node: node_map.region_of(s),
                socket: 0,
                core: 0,
                range: (s, _e),
            })
            .collect(),
        aligned_to_data: true,
        reassigned_chunks: 0,
    };
    let mut avoid: Vec<usize> = dead.clone();
    for &q in &options.quarantined {
        if q < nodes && !avoid.contains(&q) {
            avoid.push(q);
        }
    }
    let planned = homes
        .replan_avoiding(&avoid, &options.quarantined, plane.spec(), Some(&directory))
        .map_err(ExecError::from)?;
    let primary: Vec<usize> = planned.chunks.iter().map(|c| c.node).collect();
    let participants: Vec<usize> = (0..nodes)
        .filter(|n| !dead.contains(n) && !options.quarantined.contains(n))
        .collect();

    let lplan: Option<&LoopPlan> = options
        .plan
        .as_deref()
        .zip(loop_sym)
        .and_then(|(p, s)| p.loop_plan(s));
    if let Some(lp) = lplan {
        if lp.fallbacks > 0 {
            stats::record_stencil_fallbacks(lp.fallbacks as u64);
        }
    }
    let (reads, _writes) = loop_touched_slots(ml);

    let mut node_tasks: Vec<Vec<(usize, (i64, i64))>> = vec![Vec::new(); nodes];
    for (t, chunk) in planned.chunks.iter().enumerate() {
        node_tasks[chunk.node].push((t, chunk.range));
    }

    // Message ids namespace the loop's traffic for the injector's
    // per-attempt flake hashing.
    let mut seq: u64 = (loop_idx as u64) << 32;

    // --- Stage ---------------------------------------------------------
    // Broadcast slots go to every participant (reducer captures are read
    // by shuffle owners that may hold no tasks); partitioned windows only
    // to nodes with tasks, margins charged as neighbor sends.
    for &n in &participants {
        let hull = node_tasks[n]
            .iter()
            .fold(None, |h: Option<(i64, i64)>, &(_, (s, e))| match h {
                None => Some((s, e)),
                Some((hs, he)) => Some((hs.min(s), he.max(e))),
            });
        for &slot in &reads {
            let Some(v) = env.get(slot).and_then(|v| v.as_ref()) else {
                continue;
            };
            let placement = lplan.and_then(|lp| lp.placements.get(&Sym(slot as u32)).copied());
            let (staged, bytes) = match (placement, v, hull) {
                (
                    Some(Placement::Partitioned { halo_lo, halo_hi }),
                    Value::Arr(arr),
                    Some((hs, he)),
                ) if arr.len() as i64 == size => {
                    let ws = (hs - halo_lo as i64).max(0);
                    let we = (he + halo_hi as i64).min(size);
                    // Halo margins live on neighboring nodes; charge their
                    // transfer as a node-to-node exchange, not a
                    // coordinator broadcast.
                    if ws < hs {
                        let ln = node_map.region_of(ws);
                        if ln != n {
                            seq += 1;
                            plane
                                .send(ln, n, seq, (hs - ws) as u64 * elem_width(arr))
                                .map_err(ExecError::from)?;
                            report.halo_exchanges += 1;
                        }
                    }
                    if we > he {
                        let rn = node_map.region_of(we - 1);
                        if rn != n {
                            seq += 1;
                            plane
                                .send(rn, n, seq, (we - he) as u64 * elem_width(arr))
                                .map_err(ExecError::from)?;
                            report.halo_exchanges += 1;
                        }
                    }
                    window_array(arr, ws, we)
                }
                _ => (v.clone(), value_bytes(v)),
            };
            seq += 1;
            plane.send(0, n, seq, bytes).map_err(ExecError::from)?;
            let _ = to_nodes[n].send(NodeMsg::Stage {
                slot,
                value: staged,
            });
            report.staged_values += 1;
        }
    }

    // --- Dispatch ------------------------------------------------------
    for &n in &participants {
        if node_tasks[n].is_empty() {
            continue;
        }
        seq += 1;
        plane
            .send(0, n, seq, 16 + 24 * node_tasks[n].len() as u64)
            .map_err(ExecError::from)?;
        let _ = to_nodes[n].send(NodeMsg::Execute {
            loop_idx,
            tasks: node_tasks[n].clone(),
            patches: Vec::new(),
        });
    }
    report.tasks += tasks.len() as u64;

    // --- Ack loop with straggler speculation ---------------------------
    let started_at = Instant::now();
    let deadline = started_at + options.watchdog;
    let mut acked: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    let mut done = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    let mut spec_target: Vec<Option<usize>> = vec![None; tasks.len()];
    let started: Vec<Instant> = vec![started_at; tasks.len()];
    let mut spec_cursor = 0usize;
    while done < tasks.len() {
        match from_rx.recv_timeout(POLL) {
            Ok(FromNode::MapDone {
                node,
                loop_idx: li,
                task,
                nanos,
            }) => {
                // A straggling clone from a previous epoch may ack here;
                // counting it would let this epoch finish with a task that
                // never actually ran.
                if li == loop_idx && task < tasks.len() {
                    if acked[task].is_empty() {
                        done += 1;
                        latencies.push(nanos);
                        if spec_target[task] == Some(node) {
                            report.speculation_wins += 1;
                            stats::record_speculation_win();
                        }
                    }
                    acked[task].push(node);
                }
            }
            Ok(FromNode::Failed { error, .. }) => {
                return Err(node_error(error, started_at.elapsed(), options));
            }
            Ok(FromNode::ShuffleDone { .. }) => {}
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err(deadline_error(started_at.elapsed(), options));
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(deadline_error(started_at.elapsed(), options));
            }
        }
        if options.speculation.enabled && participants.len() > 1 {
            if let Some(cutoff) = options.speculation.cutoff_nanos(&latencies) {
                let cutoff = Duration::from_nanos(cutoff);
                for t in 0..tasks.len() {
                    if !acked[t].is_empty()
                        || spec_target[t].is_some()
                        || started[t].elapsed() <= cutoff
                    {
                        continue;
                    }
                    let candidates: Vec<usize> = participants
                        .iter()
                        .copied()
                        .filter(|&n| n != primary[t])
                        .collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    let target = candidates[spec_cursor % candidates.len()];
                    spec_cursor += 1;
                    let (patches, patch_bytes) =
                        partition_patches(env, &reads, lplan, size, tasks[t]);
                    seq += 1;
                    plane
                        .send(0, target, seq, 40 + patch_bytes)
                        .map_err(ExecError::from)?;
                    let _ = to_nodes[target].send(NodeMsg::Execute {
                        loop_idx,
                        tasks: vec![(t, tasks[t])],
                        patches,
                    });
                    spec_target[t] = Some(target);
                    report.speculative_tasks += 1;
                    stats::record_speculation_launch();
                }
            }
        }
    }

    // --- Pre-shuffle boundary: deaths fire, lost shards recover --------
    injector.advance_step();
    let dead2: Vec<usize> = injector
        .failed_nodes()
        .into_iter()
        .filter(|&n| n < nodes)
        .collect();
    let survivors: Vec<usize> = participants
        .iter()
        .copied()
        .filter(|n| !dead2.contains(n))
        .collect();
    let mut holder: Vec<Option<usize>> = acked
        .iter()
        .map(|execs| execs.iter().copied().find(|n| !dead2.contains(n)))
        .collect();
    let lost: Vec<usize> = (0..tasks.len()).filter(|&t| holder[t].is_none()).collect();
    if !lost.is_empty() {
        if survivors.is_empty() {
            return Err(ExecError::Runtime(RuntimeError::NoSurvivors));
        }
        // Lineage recovery: the lost tasks' inputs are pure functions of
        // the staged environment, so re-running them on survivors (with
        // partition patches standing in for the dead nodes' windows)
        // reproduces the shards bit-identically.
        let lost_plan = SchedulePlan {
            chunks: lost
                .iter()
                .map(|&t| Chunk {
                    node: acked[t].first().copied().unwrap_or(primary[t]),
                    socket: 0,
                    core: 0,
                    range: tasks[t],
                })
                .collect(),
            aligned_to_data: false,
            reassigned_chunks: 0,
        };
        let mut avoid2: Vec<usize> = dead2.clone();
        for &q in &options.quarantined {
            if q < nodes && !avoid2.contains(&q) {
                avoid2.push(q);
            }
        }
        let recovery = lost_plan
            .replan_avoiding(&avoid2, &options.quarantined, plane.spec(), Some(&directory))
            .map_err(ExecError::from)?;
        for (i, chunk) in recovery.chunks.iter().enumerate() {
            let t = lost[i];
            let (patches, patch_bytes) = partition_patches(env, &reads, lplan, size, tasks[t]);
            seq += 1;
            plane
                .send(0, chunk.node, seq, 40 + patch_bytes)
                .map_err(ExecError::from)?;
            let _ = to_nodes[chunk.node].send(NodeMsg::Execute {
                loop_idx,
                tasks: vec![(t, tasks[t])],
                patches,
            });
        }
        report.lineage_recoveries += lost.len() as u64;
        stats::record_lineage_recoveries(lost.len() as u64);
        let mut pending: BTreeSet<usize> = lost.iter().copied().collect();
        while !pending.is_empty() {
            match from_rx.recv_timeout(POLL) {
                Ok(FromNode::MapDone {
                    node,
                    loop_idx: li,
                    task,
                    ..
                }) => {
                    if li != loop_idx {
                        continue;
                    }
                    if pending.remove(&task) {
                        holder[task] = Some(node);
                    }
                    if task < acked.len() {
                        acked[task].push(node);
                    }
                }
                Ok(FromNode::Failed { error, .. }) => {
                    return Err(node_error(error, started_at.elapsed(), options));
                }
                Ok(FromNode::ShuffleDone { .. }) => {}
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        return Err(deadline_error(started_at.elapsed(), options));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(deadline_error(started_at.elapsed(), options));
                }
            }
        }
    }

    // --- Shuffle -------------------------------------------------------
    report.cluster_loops += 1;
    stats::record_cluster_loop();
    let bucketed = ml
        .gens
        .iter()
        .any(|g| matches!(g, Gen::BucketCollect { .. } | Gen::BucketReduce { .. }));
    if bucketed {
        report.shuffles += 1;
        stats::record_cluster_shuffle();
    }
    // Every task has exactly one live holder; speculation duplicates are
    // never emitted twice because only the designated holder's copy is in
    // an emit list.
    let mut emit: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    for (t, h) in holder.iter().enumerate().take(tasks.len()) {
        let h = h.expect("every task has a live holder after recovery");
        emit[h].push(t);
    }
    for &n in &survivors {
        seq += 1;
        plane
            .send(0, n, seq, 16 + 8 * emit[n].len() as u64)
            .map_err(ExecError::from)?;
        let _ = to_nodes[n].send(NodeMsg::Shuffle {
            loop_idx,
            participants: survivors.clone(),
            emit: emit[n].clone(),
        });
    }

    let mut per_gen_plain: Vec<BTreeMap<usize, Acc>> =
        (0..ml.gens.len()).map(|_| BTreeMap::new()).collect();
    let mut merged_all: Vec<Vec<MergedBucket>> = (0..ml.gens.len()).map(|_| Vec::new()).collect();
    let mut waiting: BTreeSet<usize> = survivors.iter().copied().collect();
    while !waiting.is_empty() {
        match from_rx.recv_timeout(POLL) {
            Ok(FromNode::ShuffleDone {
                node,
                loop_idx: li,
                plain,
                merged,
            }) => {
                if li == loop_idx && waiting.remove(&node) {
                    for (gi, accs) in plain {
                        for (t, acc) in accs {
                            per_gen_plain[gi].insert(t, acc);
                        }
                    }
                    for (gi, mks) in merged {
                        merged_all[gi].extend(mks);
                    }
                }
            }
            Ok(FromNode::MapDone { .. }) => {}
            Ok(FromNode::Failed { error, .. }) => {
                return Err(node_error(error, started_at.elapsed(), options));
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err(deadline_error(started_at.elapsed(), options));
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(deadline_error(started_at.elapsed(), options));
            }
        }
    }

    // --- Assemble ------------------------------------------------------
    let mut outs = Vec::with_capacity(ml.gens.len());
    for (gi, gen) in ml.gens.iter().enumerate() {
        let acc = if matches!(gen, Gen::BucketCollect { .. } | Gen::BucketReduce { .. }) {
            let mut mks = std::mem::take(&mut merged_all[gi]);
            // (first_task, first_pos) is the order a sequential walk first
            // sees each key, so the rebuilt bucket order is bit-identical
            // to the single-node tiers.
            mks.sort_by_key(|m| (m.first_task, m.first_pos));
            rebuild_acc(gen, mks)?
        } else {
            let mut folded: Option<Acc> = None;
            for (_t, acc) in std::mem::take(&mut per_gen_plain[gi]) {
                folded = Some(match folded {
                    None => acc,
                    Some(f) => merge_pair(interp, gen, f, acc, env)?,
                });
            }
            folded.unwrap_or_else(|| Acc::for_gen(gen))
        };
        outs.push(interp.seal_acc_owned(gen, acc, env)?);
    }
    Ok(outs)
}

/// The node thread: stage, execute, shuffle against its own interpreter
/// and persistent environment. All cross-node data arrives by message;
/// there is no shared mutable state between nodes.
#[allow(clippy::too_many_arguments)]
fn node_main(
    k: usize,
    program: &Program,
    fingerprint: u64,
    rx: Receiver<NodeMsg>,
    peers: Vec<Sender<NodeMsg>>,
    coord: Sender<FromNode>,
    plane: ClusterPlane,
    watchdog: Duration,
) {
    let interp = Interp::new(program).with_fuse_fingerprint(fingerprint);
    let mut env: Env = vec![None; program.next_sym_id() as usize];
    let loops: Vec<&Multiloop> = program
        .body
        .stmts
        .iter()
        .filter_map(|s| match &s.def {
            Def::Loop(ml) => Some(ml),
            _ => None,
        })
        .collect();
    // Task accumulators are keyed by (loop, task): a stale entry from a
    // superseded speculative run in one epoch must never be emitted as a
    // later epoch's result for the same task index.
    let mut held: BTreeMap<(usize, usize), Vec<Acc>> = BTreeMap::new();
    // Peer items that raced ahead of our own Shuffle message; consumed
    // (and stale ones discarded) when the shuffle for their loop starts.
    let mut early_peers: Vec<(usize, Vec<PeerItem>)> = Vec::new();
    let mut seq: u64 = (k as u64) << 48;

    while let Ok(msg) = rx.recv() {
        match msg {
            NodeMsg::Stage { slot, value } => {
                if slot < env.len() {
                    env[slot] = Some(value);
                }
            }
            NodeMsg::Execute {
                loop_idx,
                tasks,
                patches,
            } => {
                let Some(ml) = loops.get(loop_idx).copied() else {
                    let _ = coord.send(FromNode::Failed {
                        node: k,
                        error: NodeError::Eval(EvalError::TypeMismatch(
                            "cluster execute references unknown loop".into(),
                        )),
                    });
                    continue;
                };
                // Patched runs (speculation, recovery) overlay a clone so
                // the node's own staged windows stay intact for its
                // primary tasks.
                let mut overlay;
                let env_ref: &mut Env = if patches.is_empty() {
                    &mut env
                } else {
                    overlay = env.clone();
                    for (slot, v) in patches {
                        if slot < overlay.len() {
                            overlay[slot] = Some(v);
                        }
                    }
                    &mut overlay
                };
                let mut failed = false;
                for (t, (s, e)) in tasks {
                    let t0 = Instant::now();
                    match interp.eval_loop_accs_owned(ml, env_ref, s, Some(e)) {
                        Ok(accs) => {
                            held.insert((loop_idx, t), accs);
                            let mut nanos = t0.elapsed().as_nanos() as u64;
                            let slow = plane.injector().straggler_slowdown(k, 0, 0);
                            if slow > 1.0 {
                                let extra = (nanos as f64 * (slow - 1.0)) as u64;
                                std::thread::sleep(Duration::from_nanos(
                                    extra.min(STRAGGLER_SLEEP_CAP_NANOS),
                                ));
                                nanos = nanos.saturating_add(extra);
                            }
                            seq += 1;
                            match plane.send(k, 0, seq, 32) {
                                Ok(_) => {
                                    let _ = coord.send(FromNode::MapDone {
                                        node: k,
                                        loop_idx,
                                        task: t,
                                        nanos,
                                    });
                                }
                                Err(e) => {
                                    let _ = coord.send(FromNode::Failed {
                                        node: k,
                                        error: NodeError::Runtime(e),
                                    });
                                    failed = true;
                                }
                            }
                        }
                        Err(e) => {
                            let _ = coord.send(FromNode::Failed {
                                node: k,
                                error: NodeError::Eval(e),
                            });
                            failed = true;
                        }
                    }
                    if failed {
                        break;
                    }
                }
            }
            NodeMsg::Shuffle {
                loop_idx,
                participants,
                emit,
            } => {
                let Some(ml) = loops.get(loop_idx).copied() else {
                    let _ = coord.send(FromNode::Failed {
                        node: k,
                        error: NodeError::Eval(EvalError::TypeMismatch(
                            "cluster shuffle references unknown loop".into(),
                        )),
                    });
                    continue;
                };
                if !node_shuffle(
                    k,
                    &interp,
                    ml,
                    loop_idx,
                    &mut env,
                    &mut held,
                    &mut early_peers,
                    &participants,
                    &emit,
                    &peers,
                    &coord,
                    &plane,
                    &rx,
                    watchdog,
                    &mut seq,
                ) {
                    // The failure was already reported; drain back to the
                    // inbox loop and wait for Shutdown.
                }
                // Everything this loop held (including superseded
                // speculative copies never emitted) is dead after its
                // shuffle; epochs are serialized, so `<=` is safe.
                held.retain(|&(li, _), _| li > loop_idx);
                early_peers.retain(|&(li, _)| li > loop_idx);
            }
            NodeMsg::Peer { loop_idx, items } => {
                // A peer got its Shuffle message first and raced its items
                // here before ours arrived; hold them for that shuffle.
                early_peers.push((loop_idx, items));
            }
            NodeMsg::Shutdown => return,
        }
    }
}

/// Drain one shuffle on node `k`. Returns `false` after reporting a
/// failure to the coordinator.
#[allow(clippy::too_many_arguments)]
fn node_shuffle(
    k: usize,
    interp: &Interp<'_>,
    ml: &Multiloop,
    loop_idx: usize,
    env: &mut Env,
    held: &mut BTreeMap<(usize, usize), Vec<Acc>>,
    early_peers: &mut Vec<(usize, Vec<PeerItem>)>,
    participants: &[usize],
    emit: &[usize],
    peers: &[Sender<NodeMsg>],
    coord: &Sender<FromNode>,
    plane: &ClusterPlane,
    rx: &Receiver<NodeMsg>,
    watchdog: Duration,
    seq: &mut u64,
) -> bool {
    let n_parts = participants.len();
    let fail = |error: NodeError| {
        let _ = coord.send(FromNode::Failed { node: k, error });
        false
    };

    // Partition held bucket entries by key owner; plain accs go straight
    // to the coordinator.
    let mut per_owner: Vec<Vec<PeerItem>> = (0..n_parts).map(|_| Vec::new()).collect();
    let mut plain: Vec<(usize, Vec<(usize, Acc)>)> = (0..ml.gens.len())
        .filter(|gi| {
            !matches!(
                ml.gens[*gi],
                Gen::BucketCollect { .. } | Gen::BucketReduce { .. }
            )
        })
        .map(|gi| (gi, Vec::new()))
        .collect();
    for &t in emit {
        let Some(accs) = held.remove(&(loop_idx, t)) else {
            return fail(NodeError::Eval(EvalError::TypeMismatch(
                "cluster shuffle holder missing task accumulators".into(),
            )));
        };
        for (gi, acc) in accs.into_iter().enumerate() {
            match acc {
                Acc::BucketReduce { keys, vals, .. } => {
                    for (pos, (key, val)) in keys.into_iter().zip(vals).enumerate() {
                        let oi = key_owner(&Key(key.clone()), n_parts);
                        per_owner[oi].push(PeerItem {
                            gen: gi,
                            task: t,
                            pos,
                            key,
                            val: PeerVal::Reduced(val),
                        });
                    }
                }
                Acc::BucketCollect { keys, vals, .. } => {
                    for (pos, (key, val)) in keys.into_iter().zip(vals).enumerate() {
                        let oi = key_owner(&Key(key.clone()), n_parts);
                        per_owner[oi].push(PeerItem {
                            gen: gi,
                            task: t,
                            pos,
                            key,
                            val: PeerVal::Collected(val),
                        });
                    }
                }
                other => {
                    if let Some(slot) = plain.iter_mut().find(|(g, _)| *g == gi) {
                        slot.1.push((t, other));
                    }
                }
            }
        }
    }

    // Exchange: one Peer message to every participant (including
    // ourselves, through the same charged path minus the network hop),
    // then gather exactly one from each.
    for (oi, items) in per_owner.into_iter().enumerate() {
        let target = participants[oi];
        let bytes: u64 = items
            .iter()
            .map(|it| 24 + value_bytes(&it.key) + peer_val_bytes(&it.val))
            .sum();
        *seq += 1;
        match plane.send(k, target, *seq, bytes) {
            Ok(_) => {
                let _ = peers[target].send(NodeMsg::Peer { loop_idx, items });
            }
            Err(e) => return fail(NodeError::Runtime(e)),
        }
    }
    let mut gathered: Vec<PeerItem> = Vec::new();
    let mut received = 0usize;
    // Items that beat our Shuffle message were buffered by the inbox
    // loop; count the ones for this loop, discard older epochs'.
    early_peers.retain_mut(|(li, items)| {
        if *li == loop_idx {
            gathered.append(items);
            received += 1;
            false
        } else {
            *li > loop_idx
        }
    });
    let deadline = Instant::now() + watchdog;
    while received < n_parts {
        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(NodeMsg::Peer { loop_idx: li, items }) => {
                if li == loop_idx {
                    gathered.extend(items);
                    received += 1;
                }
                // An older epoch's stragglers are dead data; drop them.
            }
            Ok(NodeMsg::Shutdown) => return false,
            Ok(_) => {
                // The coordinator sends nothing else until the shuffle
                // completes; tolerate and drop strays.
            }
            Err(_) => return fail(NodeError::Stalled("shuffle peer exchange timed out")),
        }
    }

    // Owner-merge in deterministic (gen, task, pos) order, neutralizing
    // mpsc arrival nondeterminism; per-key folds therefore happen in task
    // order, matching the single-node pairwise chunk-order fold.
    gathered.sort_by_key(|it| (it.gen, it.task, it.pos));
    let mut merged: Vec<(usize, Vec<MergedBucket>)> = Vec::new();
    let mut gi_start = 0usize;
    while gi_start < gathered.len() {
        let gi = gathered[gi_start].gen;
        let mut end = gi_start;
        while end < gathered.len() && gathered[end].gen == gi {
            end += 1;
        }
        let mut index: HashMap<Key, usize> = HashMap::new();
        let mut out: Vec<MergedBucket> = Vec::new();
        for it in &gathered[gi_start..end] {
            match index.get(&Key(it.key.clone())) {
                Some(&slot) => {
                    let cur = &mut out[slot];
                    match (&mut cur.val, it.val.clone()) {
                        (PeerVal::Reduced(c), PeerVal::Reduced(v)) => {
                            let Some(reducer) = ml.gens[gi].reducer() else {
                                return fail(NodeError::Eval(EvalError::TypeMismatch(
                                    "bucket-reduce gen without reducer".into(),
                                )));
                            };
                            match interp.eval_block_owned(reducer, &[c.clone(), v], env) {
                                Ok(folded) => *c = folded,
                                Err(e) => return fail(NodeError::Eval(e)),
                            }
                        }
                        (PeerVal::Collected(c), PeerVal::Collected(v)) => {
                            c.extend(v);
                        }
                        _ => {
                            return fail(NodeError::Eval(EvalError::TypeMismatch(
                                "mismatched bucket payloads across shuffle peers".into(),
                            )));
                        }
                    }
                }
                None => {
                    index.insert(Key(it.key.clone()), out.len());
                    out.push(MergedBucket {
                        key: it.key.clone(),
                        val: it.val.clone(),
                        first_task: it.task,
                        first_pos: it.pos,
                    });
                }
            }
        }
        merged.push((gi, out));
        gi_start = end;
    }

    let plain: Vec<(usize, Vec<(usize, Acc)>)> =
        plain.into_iter().filter(|(_, v)| !v.is_empty()).collect();
    let bytes: u64 = plain
        .iter()
        .flat_map(|(_, v)| v.iter())
        .map(|(_, a)| acc_bytes(a))
        .sum::<u64>()
        + merged
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(|m| 24 + value_bytes(&m.key) + peer_val_bytes(&m.val))
            .sum::<u64>();
    *seq += 1;
    match plane.send(k, 0, *seq, bytes) {
        Ok(_) => {
            let _ = coord.send(FromNode::ShuffleDone {
                node: k,
                loop_idx,
                plain,
                merged,
            });
            true
        }
        Err(e) => fail(NodeError::Runtime(e)),
    }
}

/// Deterministic key-to-owner mapping: `DefaultHasher` is SipHash with
/// fixed keys, so the same key always routes to the same participant
/// index on every node and every run.
fn key_owner(key: &Key, participants: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % participants.max(1) as u64) as usize
}

/// Rebuild a bucket accumulator from globally ordered merged buckets.
fn rebuild_acc(gen: &Gen, mks: Vec<MergedBucket>) -> Result<Acc, EvalError> {
    match gen {
        Gen::BucketReduce { .. } => {
            let mut keys = Vec::with_capacity(mks.len());
            let mut vals = Vec::with_capacity(mks.len());
            let mut index = HashMap::with_capacity(mks.len());
            for m in mks {
                let PeerVal::Reduced(v) = m.val else {
                    return Err(EvalError::TypeMismatch(
                        "collected payload in bucket-reduce shuffle".into(),
                    ));
                };
                index.insert(Key(m.key.clone()), keys.len());
                keys.push(m.key);
                vals.push(v);
            }
            Ok(Acc::BucketReduce { keys, vals, index })
        }
        Gen::BucketCollect { .. } => {
            let mut keys = Vec::with_capacity(mks.len());
            let mut vals = Vec::with_capacity(mks.len());
            let mut index = HashMap::with_capacity(mks.len());
            for m in mks {
                let PeerVal::Collected(v) = m.val else {
                    return Err(EvalError::TypeMismatch(
                        "reduced payload in bucket-collect shuffle".into(),
                    ));
                };
                index.insert(Key(m.key.clone()), keys.len());
                keys.push(m.key);
                vals.push(v);
            }
            Ok(Acc::BucketCollect { keys, vals, index })
        }
        _ => Err(EvalError::TypeMismatch(
            "shuffle merge for a non-bucket generator".into(),
        )),
    }
}

/// Partition patches for one task range: the windows a survivor needs to
/// re-execute or speculate a task it was not staged for. Only
/// `Partitioned` reads are patched; broadcast slots are already staged
/// everywhere.
fn partition_patches(
    env: &Env,
    reads: &[usize],
    lplan: Option<&LoopPlan>,
    size: i64,
    range: (i64, i64),
) -> (Vec<(usize, Value)>, u64) {
    let mut patches = Vec::new();
    let mut bytes = 0u64;
    for &slot in reads {
        let Some(Value::Arr(arr)) = env.get(slot).and_then(|v| v.as_ref()) else {
            continue;
        };
        let Some(Placement::Partitioned { halo_lo, halo_hi }) =
            lplan.and_then(|lp| lp.placements.get(&Sym(slot as u32)).copied())
        else {
            continue;
        };
        if arr.len() as i64 != size {
            continue;
        }
        let ws = (range.0 - halo_lo as i64).max(0);
        let we = (range.1 + halo_hi as i64).min(size);
        let (v, b) = window_array(arr, ws, we);
        patches.push((slot, v));
        bytes += b;
    }
    (patches, bytes)
}

/// A full-length copy of `arr` with only `[ws, we)` populated (defaults
/// elsewhere), preserving absolute indexing, plus the window's payload
/// bytes. Under-staging a window is caught by the bit-identity gate, not
/// masked: indices outside the window read the type's default.
fn window_array(arr: &ArrayVal, ws: i64, we: i64) -> (Value, u64) {
    let ws = ws.max(0) as usize;
    let we = we.max(0) as usize;
    let width = we.saturating_sub(ws) as u64;
    match arr {
        ArrayVal::I64(v) => {
            let mut out = vec![0i64; v.len()];
            out[ws..we.min(v.len())].copy_from_slice(&v[ws..we.min(v.len())]);
            (Value::Arr(ArrayVal::I64(Arc::new(out))), width * 8)
        }
        ArrayVal::F64(v) => {
            let mut out = vec![0f64; v.len()];
            out[ws..we.min(v.len())].copy_from_slice(&v[ws..we.min(v.len())]);
            (Value::Arr(ArrayVal::F64(Arc::new(out))), width * 8)
        }
        ArrayVal::Bool(v) => {
            let mut out = vec![false; v.len()];
            out[ws..we.min(v.len())].copy_from_slice(&v[ws..we.min(v.len())]);
            (Value::Arr(ArrayVal::Bool(Arc::new(out))), width)
        }
        ArrayVal::Boxed(v) => {
            let mut out = vec![Value::Unit; v.len()];
            let hi = we.min(v.len());
            let mut b = 0u64;
            for i in ws..hi {
                b += value_bytes(&v[i]);
                out[i] = v[i].clone();
            }
            (Value::Arr(ArrayVal::Boxed(Arc::new(out))), b)
        }
    }
}

/// Payload width of one array element, for transfer charging.
fn elem_width(arr: &ArrayVal) -> u64 {
    match arr {
        ArrayVal::I64(_) | ArrayVal::F64(_) | ArrayVal::Boxed(_) => 8,
        ArrayVal::Bool(_) => 1,
    }
}

/// Estimated wire size of a value, for transfer charging.
fn value_bytes(v: &Value) -> u64 {
    match v {
        Value::I64(_) | Value::F64(_) => 8,
        Value::Bool(_) => 1,
        Value::Unit => 0,
        Value::Str(s) => s.len() as u64,
        Value::Tuple(vs) => 8 + vs.iter().map(value_bytes).sum::<u64>(),
        Value::Arr(arr) => array_bytes(arr),
        Value::Buckets(b) => {
            b.keys.iter().map(value_bytes).sum::<u64>()
                + b.vals.iter().map(value_bytes).sum::<u64>()
        }
        Value::Struct(s) => s.fields.iter().map(value_bytes).sum::<u64>(),
    }
}

/// Estimated wire size of an array payload.
fn array_bytes(arr: &ArrayVal) -> u64 {
    match arr {
        ArrayVal::I64(v) => 8 * v.len() as u64,
        ArrayVal::F64(v) => 8 * v.len() as u64,
        ArrayVal::Bool(v) => v.len() as u64,
        ArrayVal::Boxed(v) => v.iter().map(value_bytes).sum(),
    }
}

/// Estimated wire size of an accumulator in flight to the coordinator.
fn acc_bytes(acc: &Acc) -> u64 {
    match acc {
        Acc::Collect(vs) => 8 + vs.iter().map(value_bytes).sum::<u64>(),
        Acc::Reduce(v) => 8 + v.as_ref().map_or(0, value_bytes),
        Acc::BucketCollect { keys, vals, .. } => {
            keys.iter().map(value_bytes).sum::<u64>()
                + vals
                    .iter()
                    .map(|v| v.iter().map(value_bytes).sum::<u64>())
                    .sum::<u64>()
        }
        Acc::BucketReduce { keys, vals, .. } => {
            keys.iter().map(value_bytes).sum::<u64>()
                + vals.iter().map(value_bytes).sum::<u64>()
        }
    }
}

/// Estimated wire size of a bucket payload.
fn peer_val_bytes(v: &PeerVal) -> u64 {
    match v {
        PeerVal::Reduced(v) => value_bytes(v),
        PeerVal::Collected(vs) => 8 + vs.iter().map(value_bytes).sum::<u64>(),
    }
}

/// Translate a node failure into the typed executor error.
fn node_error(error: NodeError, elapsed: Duration, options: &ClusterOptions) -> ExecError {
    match error {
        NodeError::Eval(e) => ExecError::Eval(e),
        NodeError::Runtime(e) => ExecError::Runtime(e),
        NodeError::Stalled(_) => deadline_error(elapsed, options),
    }
}

/// The watchdog fired: record and surface a typed deadline abort.
fn deadline_error(elapsed: Duration, options: &ClusterOptions) -> ExecError {
    stats::record_deadline_abort();
    ExecError::Deadline {
        deadline: options.watchdog,
        elapsed,
        partial: ExecReport::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::parallel::eval_parallel;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    /// A mixed program: an i64 map, an f64 sum (float fold-order
    /// identity), and a scalar combination of both.
    fn map_sum_program() -> (dmll_core::Program, Vec<(String, Value)>) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| {
            let two = st.lit_f(2.0);
            st.mul(e, &two)
        });
        let total = st.sum(&doubled);
        let base = st.sum(&x);
        let out = st.add(&total, &base);
        let p = st.finish(&out);
        let data: Vec<f64> = (0..2000).map(|i| (i as f64) * 0.37 - 111.0).collect();
        (p, vec![("x".to_string(), Value::f64_arr(data))])
    }

    /// A bucket program: keyed sums plus keyed collects, both shuffled.
    fn bucket_program() -> (dmll_core::Program, Vec<(String, Value)>) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let zero = st.lit_i(0);
        let sums = st.group_by_reduce(
            &x,
            |st, e| {
                let seven = st.lit_i(7);
                st.rem(e, &seven)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let groups = st.group_by(&x, |st, e| {
            let five = st.lit_i(5);
            st.rem(e, &five)
        });
        let sk = st.bucket_keys(&sums);
        let sv = st.bucket_values(&sums);
        let gk = st.bucket_keys(&groups);
        let pair = st.tuple(&[&sk, &sv, &gk]);
        let p = st.finish(&pair);
        let data: Vec<i64> = (0..3000).map(|i| i * 13 % 101 - 17).collect();
        (p, vec![("x".to_string(), Value::i64_arr(data))])
    }

    fn borrowed(inputs: &[(String, Value)]) -> Vec<(&str, Value)> {
        inputs.iter().map(|(n, v)| (n.as_str(), v.clone())).collect()
    }

    #[test]
    fn cluster_matches_single_node_map_sum() {
        let (p, inputs) = map_sum_program();
        let b = borrowed(&inputs);
        // Float folds associate per task plan: the reference is the
        // single-node parallel tier at the same thread count, which pure
        // sequential evaluation does not reproduce bit-for-bit.
        let par = eval_parallel(&p, &b, 2).unwrap();
        let opts = ClusterOptions::new(4, 2);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        assert_eq!(par, clu, "cluster output bit-identical to single-node");
        assert!(report.cluster_loops > 0, "large loops ran on the cluster");
        assert!(report.sends > 0, "staging and acks were charged");
    }

    #[test]
    fn cluster_bucket_shuffle_bit_identical() {
        let (p, inputs) = bucket_program();
        let b = borrowed(&inputs);
        let seq = eval(&p, &b).unwrap();
        let opts = ClusterOptions::new(4, 2);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        assert_eq!(seq, clu, "shuffled buckets rebuild in first-seen order");
        assert!(report.shuffles > 0, "bucket loops drained a shuffle");
    }

    #[test]
    fn cluster_partitioned_plan_stages_windows() {
        let (mut p, inputs) = map_sum_program();
        let result = dmll_analysis::analyze(&mut p);
        let plan = Arc::new(dmll_analysis::export_plan(&result));
        let b = borrowed(&inputs);
        let par = eval_parallel(&p, &b, 2).unwrap();
        let opts = ClusterOptions::new(4, 2).with_plan(plan);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        assert_eq!(par, clu, "windowed staging preserves absolute indexing");
        assert!(report.staged_values > 0);
    }

    #[test]
    fn cluster_node_death_recovers_via_lineage() {
        let (p, inputs) = bucket_program();
        let b = borrowed(&inputs);
        let seq = eval(&p, &b).unwrap();
        // Step 2 is the first epoch's pre-shuffle boundary: node 1 dies
        // holding its task results, forcing lineage re-execution.
        let faults = FaultPlan::new(7).kill_node(1, shuffle_step(0));
        let opts = ClusterOptions::new(4, 2).with_faults(faults);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        assert_eq!(seq, clu, "recovered output bit-identical");
        assert!(
            report.lineage_recoveries > 0,
            "dead node's shards were re-executed: {report:?}"
        );
        assert!(report.node_deaths >= 1);
    }

    #[test]
    fn cluster_link_flakes_are_retried() {
        let (p, inputs) = map_sum_program();
        let b = borrowed(&inputs);
        let par = eval_parallel(&p, &b, 2).unwrap();
        let faults = FaultPlan::new(11).drop_remote_reads(0.2);
        let opts = ClusterOptions::new(4, 2).with_faults(faults);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        assert_eq!(par, clu, "flaky links never change the answer");
        assert!(report.link_retries > 0, "some sends retried: {report:?}");
    }

    #[test]
    fn cluster_straggler_speculation_launches() {
        let (p, inputs) = map_sum_program();
        let b = borrowed(&inputs);
        let faults = FaultPlan::new(3).straggler(1, 0, 0, 10_000.0);
        let policy = SpeculationPolicy {
            enabled: true,
            min_samples: 3,
            percentile: 75.0,
            multiplier: 2.0,
            floor: Duration::from_micros(50),
        };
        let opts = ClusterOptions::new(4, 4)
            .with_faults(faults)
            .with_speculation(policy);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        // Bit-identity must hold regardless of which copy won.
        let par = eval_parallel(&p, &b, 4).unwrap();
        assert_eq!(par, clu, "speculative duplicates never double-count");
        assert!(
            report.speculative_tasks >= 1,
            "straggler triggered a clone: {report:?}"
        );
    }

    #[test]
    fn cluster_certain_link_failure_surfaces_typed_error() {
        let (p, inputs) = map_sum_program();
        let b = borrowed(&inputs);
        let faults = FaultPlan::new(5).drop_remote_reads(1.0);
        let opts = ClusterOptions::new(4, 2).with_faults(faults);
        match eval_cluster_measured(&p, &b, &opts) {
            Err(ExecError::Runtime(
                RuntimeError::SendTimeout { .. } | RuntimeError::NodeFailed { .. },
            )) => {}
            other => panic!("expected a typed link failure, got {other:?}"),
        }
    }

    #[test]
    fn cluster_single_node_degenerates_cleanly() {
        let (p, inputs) = bucket_program();
        let b = borrowed(&inputs);
        let seq = eval(&p, &b).unwrap();
        let opts = ClusterOptions::new(1, 2);
        let (clu, report) = eval_cluster_measured(&p, &b, &opts).unwrap();
        assert_eq!(seq, clu);
        assert_eq!(report.nodes, 1);
    }
}
