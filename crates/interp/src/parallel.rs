//! Chunked multithreaded execution of top-level multiloops.
//!
//! The key runtime insight of §5 is that "a multiloop is agnostic to whether
//! it runs over the entire loop bounds or a subset of the loop bounds": the
//! executor splits each top-level loop's index range into chunks, evaluates
//! each chunk on a worker thread with a private accumulator, and merges the
//! per-chunk accumulators *in chunk order* — so `Collect` and bucket outputs
//! are bit-identical to sequential execution. `Reduce` outputs combine
//! partials with the (associative) reduction operator; for floating-point
//! reductions this can reassociate rounding, exactly as on real parallel
//! hardware.
//!
//! ## Work stealing
//!
//! The range is over-decomposed into block-granular tasks (several per
//! worker, block-aligned when the range spans full blocks) seeded onto
//! per-worker deques. A worker pops its own deque from the front and, when
//! empty, steals from the *back* of a victim's deque — so stragglers
//! (including fault-injected latency spikes) no longer bound wall-clock the
//! way a static one-chunk-per-thread split did. Stealing only changes
//! *which thread* runs a task, never the merge: task results are recorded
//! by task id and merged in task order after the round, so results remain
//! bit-identical under any steal interleaving.
//!
//! ## Fault tolerance
//!
//! The same agnosticism makes chunk-level recovery free of lineage
//! machinery: a chunk that dies (worker panic, or an injected fault from
//! [`ChunkFaults`]) is simply re-executed over just its subrange, and the
//! merged result is identical to the fault-free run because merging is in
//! chunk order regardless of *when* each chunk's accumulator was produced.
//! Workers run under `catch_unwind`, so a panicking chunk cannot abort the
//! process; deterministic interpreter errors (a real out-of-bounds read,
//! say) propagate immediately rather than being retried. A chunk whose
//! injected fault is *persistent* fails every attempt and surfaces a typed
//! [`EvalError::ChunkRetriesExhausted`] once the per-chunk retry cap is
//! spent — never an infinite retry loop, never a silently dropped
//! subrange. The [`ExecReport`] returned by [`eval_parallel_report`] makes
//! recovery observable to tests and benchmarks.
//!
//! ## Supervision
//!
//! A [`dmll_runtime::Supervisor`] attached via
//! [`ParallelOptions::supervised`] turns the executor into a *supervised*
//! run, polled at every task boundary:
//!
//! * **Deadline / cancellation** — when the wall-clock deadline expires or
//!   the run's [`dmll_runtime::CancelToken`] fires, workers drain their
//!   in-flight task and abandon everything queued; the run surfaces a typed
//!   [`ExecError::Deadline`] / [`ExecError::Cancelled`] carrying the
//!   partial [`ExecReport`]. Abort latency is therefore bounded by one task
//!   granularity.
//! * **Straggler speculation** — an idle worker with nothing to steal
//!   clones a task running past the adaptive latency cutoff
//!   ([`dmll_runtime::SpeculationPolicy`]) and races it; the first result
//!   recorded for a task id wins. Task execution is deterministic over a
//!   fixed subrange, so both copies produce identical accumulators and
//!   speculation can never change output — only wall-clock.
//! * **Quarantine** — workers whose tasks keep dying trip a per-worker
//!   circuit breaker ([`dmll_runtime::Quarantine`]) and stop receiving or
//!   stealing work until a half-open probe readmits them. Worker 0 is the
//!   designated survivor: it never parks, so the pool can always drain
//!   even if every other breaker is open.
//! * **Retry budget** — chunk re-executions across the whole run are
//!   charged against [`dmll_runtime::SupervisorPolicy::retry_budget`];
//!   exhaustion surfaces [`ExecError::RetryBudgetExhausted`] instead of
//!   retrying forever in aggregate.
//!
//! ## Execution tiers
//!
//! Each top-level loop first tries the compiled bytecode tier
//! (`crate::compile`): when the loop compiles, every worker chunk executes
//! the *same* cached kernel over its subrange, and chunk recovery re-runs
//! that kernel — so fault-tolerance semantics are preserved bit-for-bit
//! across tiers. Loops the compiler rejects fall back to the tree-walking
//! chunk path below, which reuses per-worker scratch environments instead
//! of cloning the full environment for every chunk and retry.

// `ExecError` deliberately embeds the partial `ExecReport` inline in its
// abort variants: the report is `Copy`, callers (the chaos harness, tests)
// read it by value via `partial_report().copied()`, and the Err path only
// fires on supervision aborts — boxing the report would trade a cold-path
// copy for an allocation and break the by-value contract.
#![allow(clippy::result_large_err)]

use crate::compile::{self, batch, KAcc, Kernel};
use crate::error::{EvalError, ExecError};
use crate::eval::{Acc, Env, Externs, Interp};
use crate::stats;
use crate::value::{Key, Value};
use dmll_core::visit::bound_syms;
use dmll_core::{Def, Exp, Gen, Program, Sym};
use dmll_runtime::supervise::{StopReason, Supervisor};
use dmll_runtime::{worker_regions, LoopPlan, ProgramPlan, RegionMap};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Injected chunk failures for chaos-testing the executor.
#[derive(Clone, Debug, Default)]
pub struct ChunkFaults {
    fail_once: BTreeSet<usize>,
    fail_persistent: BTreeSet<usize>,
    delays: BTreeMap<usize, Duration>,
    flaky_workers: BTreeSet<usize>,
    panic_workers: bool,
}

impl ChunkFaults {
    /// Fail the given chunk indices once each: a listed chunk dies the
    /// first time it executes (across all top-level loops), then succeeds
    /// on re-execution.
    pub fn fail_once(chunks: impl IntoIterator<Item = usize>) -> ChunkFaults {
        ChunkFaults {
            fail_once: chunks.into_iter().collect(),
            ..ChunkFaults::default()
        }
    }

    /// Additionally fail the given chunk indices on *every* execution
    /// attempt, including recovery re-executions — modelling a persistent
    /// failure (bad memory, a poisoned shard). Such a chunk exhausts its
    /// retry cap and surfaces [`EvalError::ChunkRetriesExhausted`].
    pub fn and_fail_persistent(mut self, chunks: impl IntoIterator<Item = usize>) -> ChunkFaults {
        self.fail_persistent.extend(chunks);
        self
    }

    /// Persistent failures only (see
    /// [`ChunkFaults::and_fail_persistent`]).
    pub fn fail_persistent(chunks: impl IntoIterator<Item = usize>) -> ChunkFaults {
        ChunkFaults::default().and_fail_persistent(chunks)
    }

    /// Delay the first execution of the given chunk by `delay` (an
    /// injected straggler). The delay is consumed by the first *fresh*
    /// execution; speculative clones of the task do not sleep, so
    /// straggler speculation is exercised deterministically.
    pub fn and_delay(mut self, chunk: usize, delay: Duration) -> ChunkFaults {
        self.delays.insert(chunk, delay);
        self
    }

    /// Make every first-round task executed *by worker `w`* die (recovery
    /// on the coordinator still succeeds). Used to chaos-test the
    /// quarantine circuit breaker: the flaky worker accumulates failures
    /// and trips its breaker while the work itself stays recoverable.
    pub fn and_flaky_worker(mut self, w: usize) -> ChunkFaults {
        self.flaky_workers.insert(w);
        self
    }

    /// Deliver the injected failures as real worker panics (exercising the
    /// `catch_unwind` path) instead of synthetic failure markers.
    pub fn panicking(mut self) -> ChunkFaults {
        self.panic_workers = true;
        self
    }

    /// True when no faults are configured at all.
    pub fn is_empty(&self) -> bool {
        self.fail_once.is_empty()
            && self.fail_persistent.is_empty()
            && self.delays.is_empty()
            && self.flaky_workers.is_empty()
    }
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ParallelOptions {
    /// Worker threads (and chunks per top-level loop).
    pub threads: usize,
    /// Re-executions allowed per failed chunk before giving up.
    pub max_chunk_retries: u32,
    /// Injected failures (empty by default).
    pub faults: ChunkFaults,
    /// Run loops on the compiled bytecode tier when they compile (the
    /// default). Disable to force every loop onto the tree-walking tier.
    pub use_compiled: bool,
    /// Run batchable kernels block-at-a-time (the default). Disable to
    /// force the scalar bytecode loop on every compiled chunk.
    pub use_batched: bool,
    /// Run certified kernels on the native (compiled C) tier when a system
    /// C++ compiler is available. Off by default; ineligible loops fall
    /// back to the batched tier with a typed, counted reason.
    pub use_native: bool,
    /// Supervisor polled at task boundaries (deadline, cancellation,
    /// speculation, quarantine, retry budget). `None` = unsupervised, the
    /// pre-supervision behaviour.
    pub supervisor: Option<Arc<Supervisor>>,
    /// Execution regions for the locality-aware partitioned data plane.
    /// `0` (the default) is the locality-blind path: tasks are seeded
    /// round-robin and any victim is fair game for stealing. `>= 1`
    /// enables sharded execution on the compiled tier: tasks carry a home
    /// region derived from [`RegionMap`], workers pop local tasks first
    /// and steal within their region before crossing, and per-task bucket
    /// accumulators are stitched once at merge (by task id) instead of
    /// pairwise-folded.
    pub regions: usize,
    /// Per-program access plan from the §4 analyses ([`ProgramPlan`]).
    /// When set alongside `regions >= 1`, each loop's stencil-driven
    /// placement decisions are consulted: `Unknown`-stencil collections
    /// are served from the shared path and counted as fallbacks
    /// (surfaced through [`ExecReport::stencil_fallbacks`] and the
    /// process-wide tier stats).
    pub plan: Option<Arc<ProgramPlan>>,
    /// Kernel cache for the compiled tier. `None` (the default) uses the
    /// process-global store; a long-lived service injects its own handle so
    /// queries share compiles and hit rates are attributable per view.
    pub kernel_cache: Option<crate::KernelCacheHandle>,
    /// Run the fuse-then-compile rewrite before execution (the default).
    /// Disable to execute the program exactly as written.
    pub fuse: bool,
    /// Handlers for whitelisted `Def::Extern` calls. Installed on the
    /// interpreter before execution; compiled tiers resolve handlers per
    /// kernel state so scalar, batched, and segmented execution call the
    /// same function the tree-walker would.
    pub externs: Externs,
}

impl ParallelOptions {
    /// Defaults with the given thread count: 2 re-executions, no faults,
    /// no supervisor.
    pub fn new(threads: usize) -> ParallelOptions {
        ParallelOptions {
            threads: threads.max(1),
            max_chunk_retries: 2,
            faults: ChunkFaults::default(),
            use_compiled: true,
            use_batched: true,
            use_native: false,
            supervisor: None,
            regions: 0,
            plan: None,
            kernel_cache: None,
            fuse: true,
            externs: Externs::default(),
        }
    }

    /// Register a handler for a whitelisted extern. Pure handlers only:
    /// the executor may re-invoke them during chunk recovery and
    /// speculation, so results must be a function of the arguments.
    pub fn with_extern(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Result<Value, EvalError> + Send + Sync + 'static,
    ) -> ParallelOptions {
        self.externs.insert(name, f);
        self
    }

    /// Install a pre-built extern registry (shared across runs).
    pub fn with_externs(mut self, externs: Externs) -> ParallelOptions {
        self.externs = externs;
        self
    }

    /// Skip the fuse-then-compile rewrite: execute the program exactly as
    /// written (benches use this to measure the unfused tiers).
    pub fn without_fusion(mut self) -> ParallelOptions {
        self.fuse = false;
        self
    }

    /// Compile kernels through `cache` instead of the process-global store.
    pub fn with_kernel_cache(mut self, cache: crate::KernelCacheHandle) -> ParallelOptions {
        self.kernel_cache = Some(cache);
        self
    }

    /// Enable the sharded, locality-aware data plane with the given number
    /// of execution regions (clamped to at least 1 task home). Pass the
    /// machine-derived count from
    /// [`dmll_runtime::MachineSpec::execution_regions`] to model a real
    /// socket topology.
    pub fn with_regions(mut self, regions: usize) -> ParallelOptions {
        self.regions = regions;
        self
    }

    /// Attach the exported access plan so sharded loops can honour
    /// per-collection placement decisions and surface stencil fallbacks.
    pub fn with_plan(mut self, plan: Arc<ProgramPlan>) -> ParallelOptions {
        self.plan = Some(plan);
        self
    }

    /// Set injected faults.
    pub fn with_faults(mut self, faults: ChunkFaults) -> ParallelOptions {
        self.faults = faults;
        self
    }

    /// Attach a supervisor. Create the supervisor immediately before the
    /// run: its deadline countdown starts at construction.
    pub fn supervised(mut self, supervisor: Arc<Supervisor>) -> ParallelOptions {
        self.supervisor = Some(supervisor);
        self
    }

    /// Force every loop onto the tree-walking tier (used by the
    /// tier-comparison benchmarks).
    pub fn tree_walk_only(mut self) -> ParallelOptions {
        self.use_compiled = false;
        self
    }

    /// Keep the compiled tier but force the scalar (element-at-a-time)
    /// bytecode loop (used to isolate the batched tier's speedup).
    pub fn scalar_kernel_only(mut self) -> ParallelOptions {
        self.use_batched = false;
        self
    }

    /// Enable the native tier: certified kernels are lowered to C, compiled
    /// with the system C++ compiler, and `dlopen`ed. Ineligible loops fall
    /// back to the batched tier with a typed, counted reason.
    pub fn with_native(mut self) -> ParallelOptions {
        self.use_native = true;
        self
    }
}

/// What recovery and supervision happened during one parallel evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Chunk executions across all top-level loops (including re-runs and
    /// speculative clones).
    pub chunk_executions: usize,
    /// Chunk executions that failed (injected or panicked).
    pub failed_executions: usize,
    /// Chunks that recovered via subrange re-execution.
    pub reexecuted_chunks: usize,
    /// Top-level loops executed on the compiled bytecode tier.
    pub compiled_loops: usize,
    /// Top-level loops executed on the tree-walking tier.
    pub treewalk_loops: usize,
    /// Chunked compiled loops that ran block-at-a-time (subset of
    /// `compiled_loops`; in-place small loops are not counted here).
    pub batched_loops: usize,
    /// Tasks executed by a worker other than the one they were seeded on.
    pub stolen_tasks: usize,
    /// Speculative task clones launched against stragglers.
    pub speculative_tasks: usize,
    /// Speculative clones whose result was recorded first.
    pub speculation_wins: usize,
    /// Worker circuit-breaker trips observed during this run.
    pub quarantine_trips: usize,
    /// Top-level loops executed on the sharded (region-aware) data plane.
    pub sharded_loops: usize,
    /// Collections served from the shared fallback path because their
    /// read stencil was `Unknown` (summed over sharded loops).
    pub stencil_fallbacks: usize,
    /// Tasks of sharded loops that ran in (or were stolen within) their
    /// home region.
    pub region_local_tasks: usize,
    /// Steals that crossed a region boundary during sharded loops.
    pub cross_region_steals: usize,
}

/// Run `program` evaluating top-level multiloops across `threads` worker
/// threads. Nested loops run sequentially within their chunk, matching the
/// default outer-level parallelization strategy of the paper's runtime.
///
/// # Errors
///
/// Same failure modes as [`crate::eval`].
pub fn eval_parallel(
    program: &Program,
    inputs: &[(&str, Value)],
    threads: usize,
) -> Result<Value, EvalError> {
    eval_parallel_report(program, inputs, &ParallelOptions::new(threads)).map(|(v, _)| v)
}

/// Like [`eval_parallel`], with explicit [`ParallelOptions`] and an
/// [`ExecReport`] describing any chunk recovery that happened.
///
/// # Errors
///
/// Same failure modes as [`crate::eval`], plus
/// [`EvalError::ChunkRetriesExhausted`] when a chunk keeps dying past its
/// retry budget. When a supervisor is attached, supervision aborts are
/// collapsed into the stringly [`EvalError::Aborted`]; supervised callers
/// should prefer [`eval_parallel_supervised`], which keeps them typed.
pub fn eval_parallel_report(
    program: &Program,
    inputs: &[(&str, Value)],
    options: &ParallelOptions,
) -> Result<(Value, ExecReport), EvalError> {
    eval_parallel_supervised(program, inputs, options).map_err(ExecError::into_eval)
}

/// Supervised parallel evaluation: the full typed error surface. On a
/// deadline or cancellation, in-flight tasks drain, queued tasks are
/// abandoned, and the [`ExecError`] carries the partial [`ExecReport`] of
/// everything that completed before the abort.
///
/// # Errors
///
/// [`ExecError::Eval`] for deterministic interpreter failures (including
/// [`EvalError::ChunkRetriesExhausted`] for persistently dying chunks),
/// [`ExecError::Deadline`] / [`ExecError::Cancelled`] /
/// [`ExecError::RetryBudgetExhausted`] for supervision aborts.
pub fn eval_parallel_supervised(
    program: &Program,
    inputs: &[(&str, Value)],
    options: &ParallelOptions,
) -> Result<(Value, ExecReport), ExecError> {
    if options.fuse {
        let fused = crate::fuse::fused_program(program);
        stats::record_fusion(fused.applied, fused.rejected);
        if let Some(fp) = &fused.program {
            // Execute the fused body; kernels key under the rewrite
            // fingerprint so they never collide with unfused variants.
            return supervised_on(fp, inputs, options, fused.fingerprint);
        }
    }
    supervised_on(program, inputs, options, 0)
}

fn supervised_on(
    program: &Program,
    inputs: &[(&str, Value)],
    options: &ParallelOptions,
    fingerprint: u64,
) -> Result<(Value, ExecReport), ExecError> {
    let threads = options.threads.max(1);
    let supervisor = options.supervisor.as_deref();
    let trips_before = supervisor.map_or(0, |s| s.quarantine().trips());
    let mut interp = Interp::new(program)
        .with_fuse_fingerprint(fingerprint)
        .with_externs(options.externs.clone());
    if let Some(cache) = &options.kernel_cache {
        interp = interp.with_kernel_cache(cache.clone());
    }
    let interp = interp;
    let mut env: Env = vec![None; program.next_sym_id() as usize];
    for input in &program.inputs {
        let v = inputs
            .iter()
            .find(|(n, _)| *n == input.name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| EvalError::MissingInput(input.name.clone()))?;
        env[input.sym.0 as usize] = Some(v);
    }
    let mut report = ExecReport::default();
    if options.regions > 0 {
        if let Some(plan) = &options.plan {
            stats::record_partition_warnings(plan.warnings.len() as u64);
        }
    }
    // Faults not yet delivered. Fail-once faults and delays are consumed
    // across the whole evaluation (the coordinator decides before spawning,
    // so injection is deterministic under any thread interleaving);
    // persistent faults re-fire on every loop and every retry.
    let mut pending = PendingFaults::from(&options.faults);
    // Per-worker scratch environments for the tree-walking chunk path,
    // reused across loops and retries.
    let mut scratch_pool: Vec<ScratchEnv> = Vec::new();
    for stmt in &program.body.stmts {
        // Task-granularity stop polling covers the chunked executor below;
        // this statement-boundary poll additionally bounds abort latency
        // for non-loop statements and small in-place loops.
        if let Some(sup) = supervisor {
            if let Some(reason) = sup.check() {
                return Err(stop_error(sup, reason, finish_report(report, supervisor, trips_before)));
            }
        }
        match &stmt.def {
            Def::Loop(ml) => {
                let size = match interp_eval_size(&interp, &ml.size, &env)? {
                    n if n <= 0 => 0,
                    n => n,
                };
                let vals = if size < threads as i64 * 4 && pending.is_empty() {
                    // Not worth splitting: run in place on whichever tier
                    // applies. Loop bodies only bind loop-local symbols, so
                    // no defensive clone of the environment is needed.
                    let (out, compiled) = interp.eval_loop_tiered(
                        ml,
                        &mut env,
                        options.use_compiled,
                        options.use_batched,
                        options.use_native,
                    )?;
                    if compiled {
                        report.compiled_loops += 1;
                    } else {
                        report.treewalk_loops += 1;
                    }
                    out
                } else {
                    run_chunked(
                        &interp,
                        ml,
                        &mut env,
                        size,
                        threads,
                        stmt.lhs.first().copied(),
                        options,
                        &mut pending,
                        &mut report,
                        &mut scratch_pool,
                    )
                    .map_err(|e| attach_partial(e, finish_report(report, supervisor, trips_before)))?
                };
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
            other => {
                let vals = interp.eval_def_owned(other, &mut env)?;
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
        }
    }
    let value = interp.eval_exp(&program.body.result, &env)?;
    Ok((value, finish_report(report, supervisor, trips_before)))
}

/// Fold end-of-run supervision counters into the report.
fn finish_report(
    mut report: ExecReport,
    supervisor: Option<&Supervisor>,
    trips_before: u64,
) -> ExecReport {
    if let Some(sup) = supervisor {
        let trips = sup.quarantine().trips().saturating_sub(trips_before);
        report.quarantine_trips = trips as usize;
        stats::record_quarantine_trips(trips);
    }
    report
}

/// Rewrite the placeholder partial report inside a supervision abort with
/// the coordinator's up-to-date one.
fn attach_partial(e: ExecError, partial: ExecReport) -> ExecError {
    match e {
        ExecError::Deadline {
            deadline, elapsed, ..
        } => ExecError::Deadline {
            deadline,
            elapsed,
            partial,
        },
        ExecError::Cancelled { .. } => ExecError::Cancelled { partial },
        ExecError::RetryBudgetExhausted {
            chunk,
            budget,
            message,
            ..
        } => ExecError::RetryBudgetExhausted {
            chunk,
            budget,
            message,
            partial,
        },
        other => other,
    }
}

/// Build the typed abort error for a stop reason, recording it with the
/// supervisor and the process-wide counters (called once per aborted run).
fn stop_error(sup: &Supervisor, reason: StopReason, partial: ExecReport) -> ExecError {
    sup.record_abort(reason);
    match reason {
        StopReason::Deadline => {
            stats::record_deadline_abort();
            ExecError::Deadline {
                deadline: sup.policy().deadline.unwrap_or_default(),
                elapsed: sup.elapsed(),
                partial,
            }
        }
        StopReason::Cancelled => {
            stats::record_cancelled_abort();
            ExecError::Cancelled { partial }
        }
    }
}

pub(crate) fn interp_eval_size(interp: &Interp<'_>, size: &Exp, env: &Env) -> Result<i64, EvalError> {
    interp
        .eval_exp(size, env)?
        .as_i64()
        .ok_or_else(|| EvalError::TypeMismatch("loop size".into()))
}

/// How one chunk execution went wrong.
enum ChunkFailure {
    /// A deterministic interpreter error: retrying cannot help.
    Eval(EvalError),
    /// The worker died (real panic, or injected fault): re-executable.
    Died(String),
}

/// What one task execution produced: per-generator accumulators, or how
/// it failed.
type TaskResult<A> = Result<Vec<A>, ChunkFailure>;

/// Faults not yet delivered across the evaluation.
struct PendingFaults {
    fail_once: BTreeSet<usize>,
    fail_persistent: BTreeSet<usize>,
    delays: BTreeMap<usize, Duration>,
    flaky_workers: BTreeSet<usize>,
    panic_workers: bool,
}

impl PendingFaults {
    fn from(faults: &ChunkFaults) -> PendingFaults {
        PendingFaults {
            fail_once: faults.fail_once.clone(),
            fail_persistent: faults.fail_persistent.clone(),
            delays: faults.delays.clone(),
            flaky_workers: faults.flaky_workers.clone(),
            panic_workers: faults.panic_workers,
        }
    }

    fn is_empty(&self) -> bool {
        self.fail_once.is_empty()
            && self.fail_persistent.is_empty()
            && self.delays.is_empty()
            && self.flaky_workers.is_empty()
    }

    /// Materialize this loop's per-task fault state, consuming one-shot
    /// faults. The coordinator does this before spawning workers, so
    /// injection is deterministic under any thread interleaving; the
    /// atomics only arbitrate *which execution* (fresh vs speculative)
    /// consumes a one-shot fault.
    fn for_tasks(&mut self, n_tasks: usize) -> Vec<TaskFault> {
        (0..n_tasks)
            .map(|ci| TaskFault {
                fail_once: AtomicBool::new(self.fail_once.remove(&ci)),
                persistent: self.fail_persistent.contains(&ci),
                delay_nanos: AtomicU64::new(
                    self.delays
                        .remove(&ci)
                        .map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64),
                ),
            })
            .collect()
    }
}

/// Per-task injected-fault state for one loop's round.
struct TaskFault {
    fail_once: AtomicBool,
    persistent: bool,
    delay_nanos: AtomicU64,
}

/// A reusable per-chunk environment for the tree-walking tier. Chunk
/// evaluation only reads the loop's free symbols (plus its size) and only
/// writes symbols bound inside generator blocks, so instead of cloning the
/// whole `Vec<Option<Value>>` for every chunk and every retry, each worker
/// keeps one scratch env and refreshes just those slots per execution.
struct ScratchEnv {
    env: Env,
    /// Slots possibly populated by the previous use; cleared on `prepare`.
    dirty: Vec<usize>,
}

impl ScratchEnv {
    fn new(len: usize) -> ScratchEnv {
        ScratchEnv {
            env: vec![None; len],
            dirty: Vec::new(),
        }
    }

    /// Reset to "agrees with `parent` on `reads`, unset everywhere else the
    /// previous use touched", and mark `reads` and `writes` dirty for the
    /// next reset.
    fn prepare(&mut self, parent: &Env, reads: &[usize], writes: &[usize]) {
        for &s in &self.dirty {
            self.env[s] = None;
        }
        self.dirty.clear();
        if self.env.len() < parent.len() {
            self.env.resize(parent.len(), None);
        }
        for &s in reads {
            self.env[s] = parent[s].clone();
        }
        self.dirty.extend_from_slice(reads);
        self.dirty.extend_from_slice(writes);
    }
}

/// Environment slots a chunked tree-walk of `ml` can read (free symbols
/// plus the loop size) and write (symbols bound inside generator blocks,
/// including nested loops).
pub(crate) fn loop_touched_slots(ml: &dmll_core::Multiloop) -> (Vec<usize>, Vec<usize>) {
    let mut reads: BTreeSet<usize> = compile::loop_free_syms(ml)
        .iter()
        .map(|s| s.0 as usize)
        .collect();
    if let Exp::Sym(s) = &ml.size {
        reads.insert(s.0 as usize);
    }
    let mut writes: BTreeSet<usize> = BTreeSet::new();
    for g in &ml.gens {
        for b in g.blocks() {
            writes.extend(bound_syms(b).iter().map(|s| s.0 as usize));
        }
    }
    (reads.into_iter().collect(), writes.into_iter().collect())
}

/// Execute one chunk's subrange on the tree-walking tier, optionally
/// delivering an injected fault.
#[allow(clippy::too_many_arguments)]
fn execute_chunk(
    interp: &Interp<'_>,
    ml: &dmll_core::Multiloop,
    env: &Env,
    scratch: &mut ScratchEnv,
    range: (i64, i64),
    chunk_index: usize,
    injected: bool,
    panic_workers: bool,
    reads: &[usize],
    writes: &[usize],
) -> Result<Vec<Acc>, ChunkFailure> {
    if injected && !panic_workers {
        return Err(ChunkFailure::Died(format!(
            "injected fault on chunk {chunk_index}"
        )));
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        scratch.prepare(env, reads, writes);
        if injected {
            panic!("injected panic on chunk {chunk_index}");
        }
        interp.eval_loop_accs_owned(ml, &mut scratch.env, range.0, Some(range.1))
    }));
    match outcome {
        Ok(Ok(accs)) => Ok(accs),
        Ok(Err(e)) => Err(ChunkFailure::Eval(e)),
        Err(payload) => Err(ChunkFailure::Died(panic_message(payload.as_ref()))),
    }
}

/// A worker's lazily built, reusable kernel register state. Reuse across
/// tasks is safe because every varying register is written before it is
/// read and accumulators/key directories are fresh per `run_range*` call;
/// any failure drops the state so the next task rebuilds from the parent
/// environment.
enum KernelState {
    Scalar(compile::KState),
    Batched(batch::BState),
}

/// Execute one task's subrange on the compiled tier, scalar or batched.
/// Fault recovery re-executes with the same kernel *and the same mode*, so
/// recovered runs stay bit-identical to the fault-free ones.
#[allow(clippy::too_many_arguments)]
fn execute_chunk_kernel(
    kernel: &Kernel,
    env: &Env,
    externs: &Externs,
    state: &mut Option<KernelState>,
    batched: bool,
    native: Option<&compile::native::NativeEntry>,
    native_elems: &AtomicU64,
    range: (i64, i64),
    chunk_index: usize,
    injected: bool,
    panic_workers: bool,
) -> Result<Vec<KAcc>, ChunkFailure> {
    if injected && !panic_workers {
        return Err(ChunkFailure::Died(format!(
            "injected fault on chunk {chunk_index}"
        )));
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if injected {
            panic!("injected panic on chunk {chunk_index}");
        }
        // Native first: a faulting chunk (nonzero rc) falls through to the
        // batched path below, which reproduces the interpreter's exact
        // error or panic for that subrange.
        if let Some(entry) = native {
            if let Some(accs) = kernel.run_range_native(entry, env, range.0, range.1) {
                native_elems.fetch_add((range.1 - range.0).max(0) as u64, Ordering::Relaxed);
                return Ok(accs);
            }
        }
        match (batched, &mut *state) {
            (true, Some(KernelState::Batched(bst))) => {
                kernel.run_range_batched(bst, range.0, range.1)
            }
            (true, _) => {
                let mut bst = kernel.new_batched_state(env, externs)?;
                let accs = kernel.run_range_batched(&mut bst, range.0, range.1)?;
                *state = Some(KernelState::Batched(bst));
                Ok(accs)
            }
            (false, Some(KernelState::Scalar(st))) => kernel.run_range(st, range.0, range.1),
            (false, _) => {
                let mut st = kernel.new_state(env, externs)?;
                let accs = kernel.run_range(&mut st, range.0, range.1)?;
                *state = Some(KernelState::Scalar(st));
                Ok(accs)
            }
        }
    }));
    match outcome {
        Ok(Ok(accs)) => Ok(accs),
        Ok(Err(e)) => {
            *state = None;
            Err(ChunkFailure::Eval(e))
        }
        Err(payload) => {
            *state = None;
            Err(ChunkFailure::Died(panic_message(payload.as_ref())))
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Smallest task worth scheduling when the range doesn't span full blocks.
const MIN_TASK_ELEMS: i64 = 16;

/// How long an idle worker sleeps between polls while waiting for a
/// straggler to become speculatable or the run to finish.
const PARK: Duration = Duration::from_micros(30);

/// Over-decompose `[0, size)` into contiguous tasks for work stealing:
/// roughly four tasks per worker, block-aligned whenever the range spans at
/// least one full block per worker so batched tasks are all-blocks (no
/// scalar tail except in the final task).
pub(crate) fn plan_tasks(size: i64, threads: usize) -> Vec<(i64, i64)> {
    let threads = threads.max(1) as i64;
    let block = batch::BLOCK as i64;
    let task_len = if size >= threads * block {
        ((size / block) / (threads * 4)).max(1) * block
    } else {
        ((size + threads * 4 - 1) / (threads * 4)).max(MIN_TASK_ELEMS)
    };
    let mut tasks = Vec::new();
    let mut s = 0;
    while s < size {
        tasks.push((s, (s + task_len).min(size)));
        s += task_len;
    }
    tasks
}

/// One task per execution region: the shard itself is the unit of work.
///
/// Only used when the loop's kernel is exactly associative (see
/// [`compile::Kernel::exact_assoc`]) — regrouping chunk boundaries is then
/// provably bit-exact, and the coarser tasks skip the per-task accumulator
/// setup and most of the merge that the blind over-decomposition pays for.
fn region_tasks(size: i64, regions: usize) -> Vec<(i64, i64)> {
    let rmap = RegionMap::new(size, regions);
    (0..regions)
        .map(|r| rmap.bounds(r))
        .filter(|&(s, e)| s < e)
        .collect()
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-worker deques of task ids. Owners pop from the front of their own
/// deque (preserving range locality); an idle worker steals from the back
/// of the first non-empty victim. In sharded mode tasks carry a home
/// region: they are seeded onto the workers of that region and each
/// worker's victim order visits same-region deques before crossing a
/// region boundary, so cross-region traffic only happens once a whole
/// region has drained.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Per-worker victim order as `(victim, crosses_region)` pairs.
    /// `None` = locality-blind rotation (every steal counts as local).
    victims: Option<Vec<Vec<(usize, bool)>>>,
}

impl StealQueues {
    /// Seed `n_tasks` task ids contiguously across `workers` deques
    /// (locality-blind).
    fn new(n_tasks: usize, workers: usize) -> StealQueues {
        let per = n_tasks.div_ceil(workers.max(1));
        let deques = (0..workers)
            .map(|w| {
                let lo = (w * per).min(n_tasks);
                let hi = ((w + 1) * per).min(n_tasks);
                Mutex::new((lo..hi).collect::<VecDeque<usize>>())
            })
            .collect();
        StealQueues {
            deques,
            victims: None,
        }
    }

    /// Seed tasks onto the workers of their home region (`homes[t]` is
    /// task `t`'s region, `worker_region[w]` is worker `w`'s region), with
    /// a same-region-first victim order per worker. A region with tasks
    /// but no worker (more regions than workers) seeds onto the last
    /// worker; stealing redistributes from there.
    fn new_sharded(homes: &[usize], worker_region: &[usize]) -> StealQueues {
        let workers = worker_region.len().max(1);
        let regions = worker_region.iter().copied().max().unwrap_or(0) + 1;
        let regions = regions.max(homes.iter().copied().max().map_or(1, |m| m + 1));
        let mut region_tasks: Vec<Vec<usize>> = vec![Vec::new(); regions];
        for (t, &r) in homes.iter().enumerate() {
            region_tasks[r.min(regions - 1)].push(t);
        }
        let mut region_workers: Vec<Vec<usize>> = vec![Vec::new(); regions];
        for (w, &r) in worker_region.iter().enumerate() {
            region_workers[r.min(regions - 1)].push(w);
        }
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for r in 0..regions {
            let ts = &region_tasks[r];
            if ts.is_empty() {
                continue;
            }
            let ws: &[usize] = if region_workers[r].is_empty() {
                &[workers - 1]
            } else {
                &region_workers[r]
            };
            let per = ts.len().div_ceil(ws.len());
            for (k, &w) in ws.iter().enumerate() {
                let lo = (k * per).min(ts.len());
                let hi = ((k + 1) * per).min(ts.len());
                deques[w].extend(ts[lo..hi].iter().copied());
            }
        }
        let victims = (0..workers)
            .map(|w| {
                let mut same = Vec::new();
                let mut cross = Vec::new();
                for off in 1..workers {
                    let v = (w + off) % workers;
                    if worker_region[v] == worker_region[w] {
                        same.push((v, false));
                    } else {
                        cross.push((v, true));
                    }
                }
                same.extend(cross);
                same
            })
            .collect();
        StealQueues {
            deques: deques.into_iter().map(Mutex::new).collect(),
            victims: Some(victims),
        }
    }

    /// Pop worker `w`'s own front.
    fn own(&self, w: usize) -> Option<usize> {
        lock(&self.deques[w]).pop_front()
    }

    /// Steal the back of the first non-empty victim deque, same-region
    /// victims first in sharded mode. The flag reports whether the steal
    /// crossed a region boundary.
    fn steal(&self, w: usize) -> Option<(usize, bool)> {
        match &self.victims {
            None => {
                let n = self.deques.len();
                for off in 1..n {
                    if let Some(t) = lock(&self.deques[(w + off) % n]).pop_back() {
                        return Some((t, false));
                    }
                }
                None
            }
            Some(orders) => {
                for &(v, crosses) in &orders[w] {
                    if let Some(t) = lock(&self.deques[v]).pop_back() {
                        return Some((t, crosses));
                    }
                }
                None
            }
        }
    }
}

/// Result board of one stealing round: first result per task id wins (so a
/// speculative clone and its straggler original can race safely — task
/// execution is deterministic over a fixed subrange, so whichever copy
/// lands first carries the same accumulators).
struct Board<A> {
    slots: Vec<Option<TaskResult<A>>>,
    /// Latencies (nanos) of completed executions, feeding the adaptive
    /// straggler cutoff.
    latencies: Vec<u64>,
    done: usize,
}

/// Shared state of one work-stealing round.
struct RoundShared<'a, A> {
    tasks: &'a [(i64, i64)],
    faults: &'a [TaskFault],
    flaky_workers: &'a BTreeSet<usize>,
    queues: StealQueues,
    board: Mutex<Board<A>>,
    /// Per-task first-start instant (fresh executions only).
    started: Vec<Mutex<Option<Instant>>>,
    /// At most one speculative clone per task.
    spec_claimed: Vec<AtomicBool>,
    all_done: AtomicBool,
    stop_flag: AtomicBool,
    stop_reason: Mutex<Option<StopReason>>,
    executions: AtomicUsize,
    failed: AtomicUsize,
    stolen: AtomicUsize,
    cross_steals: AtomicUsize,
    speculative: AtomicUsize,
    spec_wins: AtomicUsize,
}

/// What one stealing round produced.
struct RoundOutcome<A> {
    results: Vec<Option<TaskResult<A>>>,
    executions: usize,
    failed: usize,
    stolen: usize,
    cross_steals: usize,
    speculative: usize,
    spec_wins: usize,
    stopped: Option<StopReason>,
}

enum Job {
    Fresh { task: usize, stolen: bool },
    Spec { task: usize },
}

impl<'a, A> RoundShared<'a, A> {
    fn request_stop(&self, reason: StopReason) {
        let mut r = lock(&self.stop_reason);
        if r.is_none() {
            *r = Some(reason);
        }
        self.stop_flag.store(true, Ordering::Release);
    }

    /// Record one execution's result; first write per task id wins.
    fn record(&self, t: usize, r: TaskResult<A>, nanos: u64, spec: bool, sup: Option<&Supervisor>) {
        let mut b = lock(&self.board);
        if b.slots[t].is_some() {
            return; // lost the race; identical result discarded
        }
        b.slots[t] = Some(r);
        b.latencies.push(nanos);
        b.done += 1;
        if b.done == self.tasks.len() {
            self.all_done.store(true, Ordering::Release);
        }
        if spec {
            self.spec_wins.fetch_add(1, Ordering::Relaxed);
            stats::record_speculation_win();
            if let Some(sup) = sup {
                sup.record_speculation_win();
            }
        }
    }

    /// An unclaimed straggler past the adaptive cutoff, if any.
    fn find_straggler(&self, sup: &Supervisor) -> Option<Job> {
        let pol = sup.policy().speculation;
        if !pol.enabled {
            return None;
        }
        let cutoff = {
            let b = lock(&self.board);
            pol.cutoff_nanos(&b.latencies)?
        };
        for t in 0..self.tasks.len() {
            if self.spec_claimed[t].load(Ordering::Relaxed) {
                continue;
            }
            if lock(&self.board).slots[t].is_some() {
                continue;
            }
            let Some(started) = *lock(&self.started[t]) else {
                continue; // still queued; it will be claimed normally
            };
            if started.elapsed().as_nanos() as u64 > cutoff
                && !self.spec_claimed[t].swap(true, Ordering::Relaxed)
            {
                self.speculative.fetch_add(1, Ordering::Relaxed);
                stats::record_speculation_launch();
                sup.record_speculation_launch();
                return Some(Job::Spec { task: t });
            }
        }
        None
    }
}

/// One worker's execution of one job (fresh or speculative).
fn run_job<A, S>(
    w: usize,
    st: &mut S,
    job: Job,
    shared: &RoundShared<'_, A>,
    sup: Option<&Supervisor>,
    exec: &(impl Fn(&mut S, usize, (i64, i64), bool) -> TaskResult<A> + Sync),
) {
    let (t, spec) = match job {
        Job::Fresh { task, stolen } => {
            if stolen {
                shared.stolen.fetch_add(1, Ordering::Relaxed);
            }
            (task, false)
        }
        Job::Spec { task } => (task, true),
    };
    let fault = &shared.faults[t];
    let injected = if spec {
        fault.persistent
    } else {
        {
            let mut s = lock(&shared.started[t]);
            if s.is_none() {
                *s = Some(Instant::now());
            }
        }
        let delay = fault.delay_nanos.swap(0, Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(Duration::from_nanos(delay));
        }
        fault.persistent
            | fault.fail_once.swap(false, Ordering::Relaxed)
            | shared.flaky_workers.contains(&w)
    };
    shared.executions.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let r = exec(st, t, shared.tasks[t], injected);
    let failed = r.is_err();
    if failed {
        shared.failed.fetch_add(1, Ordering::Relaxed);
    }
    shared.record(t, r, t0.elapsed().as_nanos() as u64, spec, sup);
    if let Some(sup) = sup {
        sup.quarantine().record(w, failed);
    }
}

/// Run all tasks across `states.len()` workers with work stealing and
/// (when supervised) straggler speculation, quarantine, and stop polling.
/// Results come back indexed by task id so merge order is independent of
/// which worker ran what; a task with no result (worker died before
/// reporting, or the round stopped) is `None`.
fn run_stealing<A: Send, S: Send>(
    tasks: &[(i64, i64)],
    faults: &[TaskFault],
    pending: &PendingFaults,
    states: &mut [S],
    supervisor: Option<&Supervisor>,
    queues: StealQueues,
    exec: &(impl Fn(&mut S, usize, (i64, i64), bool) -> TaskResult<A> + Sync),
) -> RoundOutcome<A> {
    let shared = RoundShared {
        tasks,
        faults,
        flaky_workers: &pending.flaky_workers,
        queues,
        board: Mutex::new(Board {
            slots: (0..tasks.len()).map(|_| None).collect(),
            latencies: Vec::new(),
            done: 0,
        }),
        started: (0..tasks.len()).map(|_| Mutex::new(None)).collect(),
        spec_claimed: (0..tasks.len()).map(|_| AtomicBool::new(false)).collect(),
        all_done: AtomicBool::new(tasks.is_empty()),
        stop_flag: AtomicBool::new(false),
        stop_reason: Mutex::new(None),
        executions: AtomicUsize::new(0),
        failed: AtomicUsize::new(0),
        stolen: AtomicUsize::new(0),
        cross_steals: AtomicUsize::new(0),
        speculative: AtomicUsize::new(0),
        spec_wins: AtomicUsize::new(0),
    };
    std::thread::scope(|scope| {
        let shared = &shared;
        let handles: Vec<_> = states
            .iter_mut()
            .enumerate()
            .map(|(w, st)| {
                scope.spawn(move || loop {
                    if shared.stop_flag.load(Ordering::Acquire)
                        || shared.all_done.load(Ordering::Acquire)
                    {
                        break;
                    }
                    if let Some(sup) = supervisor {
                        if let Some(reason) = sup.check() {
                            shared.request_stop(reason);
                            break;
                        }
                        // Worker 0 is the designated survivor: it never
                        // parks, so the pool always drains even when every
                        // other breaker is open.
                        if w != 0 && sup.quarantine().is_quarantined(w) {
                            std::thread::sleep(PARK);
                            continue;
                        }
                    }
                    let job = if let Some(t) = shared.queues.own(w) {
                        Some(Job::Fresh {
                            task: t,
                            stolen: false,
                        })
                    } else if let Some((t, crosses)) = shared.queues.steal(w) {
                        if crosses {
                            shared.cross_steals.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(Job::Fresh {
                            task: t,
                            stolen: true,
                        })
                    } else {
                        supervisor.and_then(|sup| shared.find_straggler(sup))
                    };
                    match job {
                        Some(job) => run_job(w, st, job, shared, supervisor, exec),
                        None => {
                            // Nothing queued, nothing stealable, nothing
                            // speculatable. Unsupervised workers are done;
                            // supervised ones park until the stragglers
                            // resolve (a task may yet become speculatable,
                            // and stop conditions still need polling).
                            match supervisor {
                                Some(sup) if sup.policy().speculation.enabled => {
                                    std::thread::sleep(PARK)
                                }
                                _ => break,
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
    });
    let stopped = *lock(&shared.stop_reason);
    let board = shared.board.into_inner().unwrap_or_else(PoisonError::into_inner);
    RoundOutcome {
        results: board.slots,
        executions: shared.executions.load(Ordering::Relaxed),
        failed: shared.failed.load(Ordering::Relaxed),
        stolen: shared.stolen.load(Ordering::Relaxed),
        cross_steals: shared.cross_steals.load(Ordering::Relaxed),
        speculative: shared.speculative.load(Ordering::Relaxed),
        spec_wins: shared.spec_wins.load(Ordering::Relaxed),
        stopped,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chunked(
    interp: &Interp<'_>,
    ml: &dmll_core::Multiloop,
    env: &mut Env,
    size: i64,
    threads: usize,
    loop_sym: Option<Sym>,
    options: &ParallelOptions,
    pending: &mut PendingFaults,
    report: &mut ExecReport,
    pool: &mut Vec<ScratchEnv>,
) -> Result<Vec<Value>, ExecError> {
    // Stencil-driven placement for this loop (sharded runs only): loops
    // reading a collection with an `Unknown` stencil still run sharded,
    // but that collection is served from the shared path and the fallback
    // is surfaced rather than silently absorbed.
    let lplan: Option<&LoopPlan> = if options.regions > 0 {
        options
            .plan
            .as_deref()
            .zip(loop_sym)
            .and_then(|(p, s)| p.loop_plan(s))
    } else {
        None
    };
    if let Some(lp) = lplan {
        if lp.fallbacks > 0 {
            stats::record_stencil_fallbacks(lp.fallbacks as u64);
            report.stencil_fallbacks += lp.fallbacks;
        }
    }

    // Compiled tier first: worker tasks and chunk recovery execute the
    // very same cached kernel, so results (and fault-tolerance semantics)
    // are bit-identical to the tree-walking tier.
    let kernel = if options.use_compiled {
        match &options.kernel_cache {
            Some(cache) => cache.kernel_for(ml, env, interp.fuse_fingerprint()),
            None => compile::kernel_for(ml, env, interp.fuse_fingerprint()),
        }
    } else {
        None
    };
    // Task plan: the blind over-decomposition by default; one task per
    // region (the shard itself) on the sharded plane when every merge is
    // exactly associative, so the regrouping provably cannot change the
    // output bit pattern. The divide-and-conquer certificate extends the
    // fast-red check to integer-keyed selection reducers (argmin/argmax
    // by an `i64` key), which are exact for the same reason. Float
    // reductions keep the blind granularity — their merge order must
    // match the blind path bit-for-bit.
    let tasks = if options.regions > 0
        && kernel
            .as_ref()
            .is_some_and(|k| k.exact_assoc() || k.dnc_assoc())
    {
        region_tasks(size, options.regions.min(threads).max(1))
    } else {
        plan_tasks(size, threads)
    };
    let workers = threads.min(tasks.len()).max(1);
    let faults = pending.for_tasks(tasks.len());

    if let Some(kernel) = kernel {
        {
            let batched = options.use_batched && kernel.batchable;
            if options.use_batched && !batched {
                if let Some(reason) = kernel.batch_reject {
                    stats::record_batch_ineligible(reason);
                }
            }
            // Native tier: chunks run the dlopen'd kernel when one is
            // available; each faulting chunk individually lands back on
            // the batched executor, which reproduces the exact outcome.
            let native = if batched && options.use_native {
                match kernel.native_entry(ml, env) {
                    Ok(entry) => Some(entry),
                    Err(reason) => {
                        stats::record_native_fallback(reason.key());
                        None
                    }
                }
            } else {
                None
            };
            let native_elems = AtomicU64::new(0);
            let t0 = Instant::now();
            let out = run_chunked_kernel(
                &kernel,
                env,
                interp.externs(),
                &tasks,
                &faults,
                pending,
                workers,
                batched,
                native,
                &native_elems,
                options,
                report,
            )?;
            let dt = t0.elapsed();
            stats::record_compiled(size.max(0) as u64, dt);
            if batched {
                stats::record_batched(size.max(0) as u64, dt);
                report.batched_loops += 1;
            }
            let ne = native_elems.load(Ordering::Relaxed);
            if ne > 0 {
                stats::record_native(ne, dt);
            }
            report.compiled_loops += 1;
            return Ok(out);
        }
    }
    let t0 = Instant::now();
    let out = run_chunked_treewalk(
        interp, ml, env, &tasks, &faults, pending, workers, options, report, pool,
    )?;
    stats::record_treewalk(size.max(0) as u64, t0.elapsed());
    report.treewalk_loops += 1;
    Ok(out)
}

/// Fold one stealing round's counters into the report and surface a stop
/// as the typed abort error (the partial report is patched in by the
/// coordinator's `attach_partial`).
fn absorb_round<A>(
    outcome: RoundOutcome<A>,
    report: &mut ExecReport,
    supervisor: Option<&Supervisor>,
) -> Result<Vec<Option<TaskResult<A>>>, ExecError> {
    report.chunk_executions += outcome.executions;
    report.failed_executions += outcome.failed;
    report.stolen_tasks += outcome.stolen;
    report.cross_region_steals += outcome.cross_steals;
    report.speculative_tasks += outcome.speculative;
    report.speculation_wins += outcome.spec_wins;
    stats::record_steals(outcome.stolen as u64);
    stats::record_cross_region_steals(outcome.cross_steals as u64);
    if let Some(reason) = outcome.stopped {
        let sup = supervisor.expect("stop reasons only arise under supervision");
        return Err(stop_error(sup, reason, *report));
    }
    Ok(outcome.results)
}

/// Recover failed first-round chunks by re-executing just their subranges
/// (the retry closure runs on the coordinator thread). A multiloop is
/// agnostic to its bounds, so re-running `ranges[ci]` alone yields the
/// same accumulator the lost worker would have produced. Shared by both
/// execution tiers. Retries are bounded twice: per-chunk by
/// `max_chunk_retries`, and run-wide by the supervisor's retry budget.
fn recover_chunks<A>(
    first_round: Vec<Result<Vec<A>, ChunkFailure>>,
    ranges: &[(i64, i64)],
    options: &ParallelOptions,
    report: &mut ExecReport,
    mut retry: impl FnMut(usize, (i64, i64)) -> Result<Vec<A>, ChunkFailure>,
) -> Result<Vec<Vec<A>>, ExecError> {
    let supervisor = options.supervisor.as_deref();
    let mut per_chunk: Vec<Vec<A>> = Vec::with_capacity(first_round.len());
    for (ci, outcome) in first_round.into_iter().enumerate() {
        match outcome {
            Ok(accs) => per_chunk.push(accs),
            Err(ChunkFailure::Eval(e)) => return Err(e.into()),
            Err(ChunkFailure::Died(mut message)) => {
                let mut recovered = None;
                for _attempt in 1..=options.max_chunk_retries {
                    if let Some(sup) = supervisor {
                        if let Some(reason) = sup.check() {
                            return Err(stop_error(sup, reason, *report));
                        }
                        if !sup.try_consume_retry() {
                            return Err(ExecError::RetryBudgetExhausted {
                                chunk: ci,
                                budget: sup.policy().retry_budget,
                                message,
                                partial: *report,
                            });
                        }
                    }
                    report.chunk_executions += 1;
                    match retry(ci, ranges[ci]) {
                        Ok(accs) => {
                            report.reexecuted_chunks += 1;
                            recovered = Some(accs);
                            break;
                        }
                        Err(ChunkFailure::Eval(e)) => return Err(e.into()),
                        Err(ChunkFailure::Died(m)) => {
                            report.failed_executions += 1;
                            message = m;
                        }
                    }
                }
                match recovered {
                    Some(accs) => per_chunk.push(accs),
                    None => {
                        return Err(EvalError::ChunkRetriesExhausted {
                            chunk: ci,
                            attempts: options.max_chunk_retries + 1,
                            message,
                        }
                        .into())
                    }
                }
            }
        }
    }
    Ok(per_chunk)
}

/// Tree-walking chunk executor: per-worker scratch environments, merges in
/// task order against the coordinator's real environment.
#[allow(clippy::too_many_arguments)]
fn run_chunked_treewalk(
    interp: &Interp<'_>,
    ml: &dmll_core::Multiloop,
    env: &mut Env,
    tasks: &[(i64, i64)],
    faults: &[TaskFault],
    pending: &PendingFaults,
    workers: usize,
    options: &ParallelOptions,
    report: &mut ExecReport,
    pool: &mut Vec<ScratchEnv>,
) -> Result<Vec<Value>, ExecError> {
    let panic_workers = pending.panic_workers;
    let supervisor = options.supervisor.as_deref();
    let (reads, writes) = loop_touched_slots(ml);
    if pool.len() < workers {
        let len = env.len();
        pool.resize_with(workers, || ScratchEnv::new(len));
    }

    // First round: tasks run under work stealing, one scratch env per
    // worker (reused across that worker's tasks), failures caught.
    let outcome = {
        let env_ref = &*env;
        let (reads, writes) = (&reads, &writes);
        run_stealing(
            tasks,
            faults,
            pending,
            &mut pool[..workers],
            supervisor,
            StealQueues::new(tasks.len(), workers),
            &|scratch, ci, range, injected| {
                execute_chunk(
                    interp,
                    ml,
                    env_ref,
                    scratch,
                    range,
                    ci,
                    injected,
                    panic_workers,
                    reads,
                    writes,
                )
            },
        )
    };
    let first_round = unreported_as_died(absorb_round(outcome, report, supervisor)?);

    let mut per_chunk = recover_chunks(first_round, tasks, options, report, |ci, range| {
        execute_chunk(
            interp,
            ml,
            env,
            &mut pool[0],
            range,
            ci,
            faults[ci].persistent,
            panic_workers,
            &reads,
            &writes,
        )
    })?;

    // Transpose: per-generator lists of per-chunk accumulators, merged in
    // chunk order.
    let mut outputs = Vec::with_capacity(ml.gens.len());
    for (gi, gen) in ml.gens.iter().enumerate() {
        let mut merged: Option<Acc> = None;
        for chunk_accs in &mut per_chunk {
            let acc = std::mem::replace(&mut chunk_accs[gi], Acc::Collect(Vec::new()));
            merged = Some(match merged {
                None => acc,
                Some(m) => merge_pair(interp, gen, m, acc, env)?,
            });
        }
        let merged = merged.unwrap_or_else(|| Acc::for_gen(gen));
        outputs.push(interp.seal_acc_owned(gen, merged, env)?);
    }
    Ok(outputs)
}

/// Map tasks a dead worker never reported into recoverable chunk deaths.
fn unreported_as_died<A>(
    results: Vec<Option<Result<Vec<A>, ChunkFailure>>>,
) -> Vec<Result<Vec<A>, ChunkFailure>> {
    results
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|| Err(ChunkFailure::Died("worker died before reporting".into())))
        })
        .collect()
}

/// Compiled-tier chunk executor: every worker runs the same cached kernel
/// over its tasks' subranges (scalar or batched), recovery re-runs that
/// kernel in the same mode, and merging/sealing happens on a coordinator
/// register state, in task order.
#[allow(clippy::too_many_arguments)]
fn run_chunked_kernel(
    kernel: &Kernel,
    env: &Env,
    externs: &Externs,
    tasks: &[(i64, i64)],
    faults: &[TaskFault],
    pending: &PendingFaults,
    workers: usize,
    batched: bool,
    native: Option<&compile::native::NativeEntry>,
    native_elems: &AtomicU64,
    options: &ParallelOptions,
    report: &mut ExecReport,
) -> Result<Vec<Value>, ExecError> {
    let panic_workers = pending.panic_workers;
    let supervisor = options.supervisor.as_deref();

    // Sharded data plane: derive each task's home region from the block-
    // aligned region map over the loop bounds, pin workers to regions, and
    // let the steal order prefer same-region victims.
    let sharded = options.regions > 0 && !tasks.is_empty();
    let queues = if sharded {
        let r_eff = options.regions.min(workers).max(1);
        let rmap = RegionMap::new(tasks.last().map_or(0, |t| t.1), r_eff);
        let homes: Vec<usize> = tasks.iter().map(|&(s, _)| rmap.region_of(s)).collect();
        StealQueues::new_sharded(&homes, &worker_regions(workers, r_eff))
    } else {
        StealQueues::new(tasks.len(), workers)
    };

    let mut states: Vec<Option<KernelState>> = (0..workers).map(|_| None).collect();
    let outcome = run_stealing(
        tasks,
        faults,
        pending,
        &mut states,
        supervisor,
        queues,
        &|state, ci, range, injected| {
            execute_chunk_kernel(
                kernel,
                env,
                externs,
                state,
                batched,
                native,
                native_elems,
                range,
                ci,
                injected,
                panic_workers,
            )
        },
    );
    let cross = outcome.cross_steals;
    let first_round = unreported_as_died(absorb_round(outcome, report, supervisor)?);
    if sharded {
        stats::record_sharded_loop();
        report.sharded_loops += 1;
        let local = tasks.len().saturating_sub(cross);
        stats::record_region_local_tasks(local as u64);
        report.region_local_tasks += local;
    }

    let mut retry_state: Option<KernelState> = None;
    let per_chunk = recover_chunks(first_round, tasks, options, report, |ci, range| {
        execute_chunk_kernel(
            kernel,
            env,
            externs,
            &mut retry_state,
            batched,
            native,
            native_elems,
            range,
            ci,
            faults[ci].persistent,
            panic_workers,
        )
    })?;

    // Merge in chunk order on a coordinator state (reducer blocks execute
    // as bytecode too), then seal each generator's accumulator. The
    // sharded plane stitches each generator's per-task accumulators once,
    // by task id (dense slot directory for integer bucket keys); the
    // blind plane folds them pairwise. Both apply the same reducer calls
    // to the same operands in the same order, so outputs are
    // bit-identical across planes.
    let mut st = kernel.new_state(env, externs)?;
    let n_gens = kernel.gens.len();
    let mut outputs = Vec::with_capacity(n_gens);
    if sharded {
        let mut per_gen: Vec<Vec<KAcc>> = (0..n_gens)
            .map(|_| Vec::with_capacity(per_chunk.len()))
            .collect();
        for chunk_accs in per_chunk {
            for (gi, acc) in chunk_accs.into_iter().enumerate() {
                per_gen[gi].push(acc);
            }
        }
        for (gi, accs) in per_gen.into_iter().enumerate() {
            let acc = if accs.is_empty() {
                KAcc::for_gen(&kernel.gens[gi], 0)
            } else {
                kernel.stitch(gi, accs, &mut st)?
            };
            outputs.push(kernel.seal_gen_value(gi, acc, &mut st)?);
        }
    } else {
        let mut merged: Vec<Option<KAcc>> = (0..n_gens).map(|_| None).collect();
        for chunk_accs in per_chunk {
            for (gi, acc) in chunk_accs.into_iter().enumerate() {
                merged[gi] = Some(match merged[gi].take() {
                    None => acc,
                    Some(m) => kernel.merge(gi, m, acc, &mut st)?,
                });
            }
        }
        for (gi, m) in merged.into_iter().enumerate() {
            let acc = m.unwrap_or_else(|| KAcc::for_gen(&kernel.gens[gi], 0));
            outputs.push(kernel.seal_gen_value(gi, acc, &mut st)?);
        }
    }
    Ok(outputs)
}

pub(crate) fn merge_pair(
    interp: &Interp<'_>,
    gen: &Gen,
    a: Acc,
    b: Acc,
    env: &mut Env,
) -> Result<Acc, EvalError> {
    Ok(match (a, b) {
        (Acc::Collect(mut x), Acc::Collect(y)) => {
            x.extend(y);
            Acc::Collect(x)
        }
        (Acc::Reduce(x), Acc::Reduce(y)) => Acc::Reduce(match (x, y) {
            (Some(x), Some(y)) => {
                let reducer = gen
                    .reducer()
                    .ok_or_else(|| EvalError::TypeMismatch("reduce gen without reducer".into()))?;
                Some(interp.eval_block_owned(reducer, &[x, y], env)?)
            }
            (Some(x), None) => Some(x),
            (None, y) => y,
        }),
        (
            Acc::BucketCollect {
                mut keys,
                mut vals,
                mut index,
            },
            Acc::BucketCollect {
                keys: bk, vals: bv, ..
            },
        ) => {
            for (k, v) in bk.into_iter().zip(bv) {
                match index.get(&Key(k.clone())) {
                    Some(&slot) => vals[slot].extend(v),
                    None => {
                        index.insert(Key(k.clone()), keys.len());
                        keys.push(k);
                        vals.push(v);
                    }
                }
            }
            Acc::BucketCollect { keys, vals, index }
        }
        (
            Acc::BucketReduce {
                mut keys,
                mut vals,
                mut index,
            },
            Acc::BucketReduce {
                keys: bk, vals: bv, ..
            },
        ) => {
            let reducer = gen.reducer().ok_or_else(|| {
                EvalError::TypeMismatch("bucket-reduce gen without reducer".into())
            })?;
            for (k, v) in bk.into_iter().zip(bv) {
                match index.get(&Key(k.clone())) {
                    Some(&slot) => {
                        let cur = vals[slot].clone();
                        vals[slot] = interp.eval_block_owned(reducer, &[cur, v], env)?;
                    }
                    None => {
                        index.insert(Key(k.clone()), keys.len());
                        keys.push(k);
                        vals.push(v);
                    }
                }
            }
            Acc::BucketReduce { keys, vals, index }
        }
        _ => {
            return Err(EvalError::TypeMismatch(
                "mismatched accumulators across chunks".into(),
            ))
        }
    })
}

impl<'p> Interp<'p> {
    pub(crate) fn eval_loop_accs_owned(
        &self,
        ml: &dmll_core::Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Acc>, EvalError> {
        self.eval_loop_accs(ml, env, start, end)
    }

    pub(crate) fn eval_def_owned(&self, def: &Def, env: &mut Env) -> Result<Vec<Value>, EvalError> {
        // Delegate through a tiny shim block so we reuse eval_def without
        // exposing it.
        self.eval_def_internal(def, env)
    }

    pub(crate) fn eval_block_owned(
        &self,
        block: &dmll_core::Block,
        args: &[Value],
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        self.eval_block(block, args, env)
    }

    pub(crate) fn seal_acc_owned(
        &self,
        gen: &Gen,
        acc: Acc,
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        self.seal_acc(gen, acc, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;
    use dmll_runtime::supervise::{SpeculationPolicy, SupervisorPolicy};

    fn sum_squares_program() -> Program {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let sq = st.map(&x, |st, e| st.mul(e, e));
        let total = st.sum(&sq);
        st.finish(&total)
    }

    #[test]
    fn parallel_matches_sequential_exact_ints() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..1000).collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        for threads in [1, 2, 3, 7] {
            let par = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_collect_preserves_order() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let evens = st.filter(&x, |st, e| {
            let two = st.lit_i(2);
            let r = st.rem(e, &two);
            let zero = st.lit_i(0);
            st.eq(&r, &zero)
        });
        let p = st.finish(&evens);
        let data: Vec<i64> = (0..997).rev().collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_bucket_reduce_merges() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let zero = st.lit_i(0);
        let sums = st.group_by_reduce(
            &x,
            |st, e| {
                let five = st.lit_i(5);
                st.rem(e, &five)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let keys = st.bucket_keys(&sums);
        let vals = st.bucket_values(&sums);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        let data: Vec<i64> = (0..500).map(|i| i * 13 % 101).collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], 3).unwrap();
        assert_eq!(seq, par, "bucket keys and sums match sequential");
    }

    #[test]
    fn parallel_empty_input() {
        let p = sum_squares_program();
        let out = eval_parallel(&p, &[("x", Value::i64_arr(vec![]))], 4).unwrap();
        assert_eq!(out, Value::I64(0));
    }

    #[test]
    fn parallel_float_sum_close() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let seq = eval(&p, &[("x", Value::f64_arr(data.clone()))])
            .unwrap()
            .as_f64()
            .unwrap();
        let par = eval_parallel(&p, &[("x", Value::f64_arr(data))], 4)
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((seq - par).abs() < 1e-9, "{seq} vs {par}");
    }

    #[test]
    fn injected_chunk_faults_recover_with_identical_results() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 4).unwrap();
        let opts = ParallelOptions::new(4).with_faults(ChunkFaults::fail_once([0, 2]));
        let (value, report) =
            eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "recovered run is bit-identical");
        assert_eq!(report.failed_executions, 2);
        assert_eq!(report.reexecuted_chunks, 2);
        assert!(report.chunk_executions >= 6, "{report:?}");
    }

    #[test]
    fn panicking_workers_are_caught_and_reexecuted() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 3).unwrap();
        let opts =
            ParallelOptions::new(3).with_faults(ChunkFaults::fail_once([1]).panicking());
        let (value, report) =
            eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "catch_unwind recovery is bit-identical");
        assert_eq!(report.reexecuted_chunks, 1);
    }

    #[test]
    fn collect_order_survives_chunk_reexecution() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| st.add(e, e));
        let p = st.finish(&doubled);
        let data: Vec<i64> = (0..997).rev().collect();
        let clean = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let opts = ParallelOptions::new(5).with_faults(ChunkFaults::fail_once([0, 3, 4]));
        let (value, _) = eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "Collect order preserved across recovery");
    }

    #[test]
    fn unrecoverable_chunk_surfaces_typed_error() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let mut opts = ParallelOptions::new(4).with_faults(ChunkFaults::fail_once([1]));
        opts.max_chunk_retries = 0;
        let err = eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap_err();
        match err {
            EvalError::ChunkRetriesExhausted { chunk, attempts, .. } => {
                assert_eq!(chunk, 1);
                assert_eq!(attempts, 1);
            }
            other => panic!("expected ChunkRetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn persistent_faults_exhaust_retries_with_typed_error() {
        // A persistently failing chunk must not loop forever or be
        // silently dropped: it fails its cap and surfaces the typed error.
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let opts = ParallelOptions::new(4).with_faults(ChunkFaults::fail_persistent([2]));
        match eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts) {
            Err(ExecError::Eval(EvalError::ChunkRetriesExhausted { chunk, attempts, .. })) => {
                assert_eq!(chunk, 2);
                assert_eq!(attempts, 3, "first run + max_chunk_retries");
            }
            other => panic!("expected ChunkRetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn report_counts_execution_tiers() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let (v1, r1) = eval_parallel_report(
            &p,
            &[("x", Value::i64_arr(data.clone()))],
            &ParallelOptions::new(4),
        )
        .unwrap();
        assert!(r1.compiled_loops >= 1, "{r1:?}");
        let (v2, r2) = eval_parallel_report(
            &p,
            &[("x", Value::i64_arr(data))],
            &ParallelOptions::new(4).tree_walk_only(),
        )
        .unwrap();
        assert_eq!(v1, v2, "tiers agree");
        assert_eq!(r2.compiled_loops, 0);
        assert!(r2.treewalk_loops >= 1, "{r2:?}");
    }

    #[test]
    fn tree_walk_tier_recovers_faults_identically() {
        // Force the tree-walking tier so recovery exercises the reusable
        // scratch environments (including re-prepare after a mid-chunk
        // panic leaves one partially written).
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 4).unwrap();
        for faults in [
            ChunkFaults::fail_once([0, 2]),
            ChunkFaults::fail_once([0, 2]).panicking(),
        ] {
            let opts = ParallelOptions::new(4).tree_walk_only().with_faults(faults);
            let (value, report) =
                eval_parallel_report(&p, &[("x", Value::i64_arr(data.clone()))], &opts).unwrap();
            assert_eq!(value, clean, "scratch-env recovery is bit-identical");
            assert_eq!(report.reexecuted_chunks, 2);
            assert_eq!(report.compiled_loops, 0);
        }
    }

    #[test]
    fn real_eval_errors_are_not_retried() {
        // A genuine missing input fails immediately, never retried.
        let p = sum_squares_program();
        let err = eval_parallel(&p, &[], 4).unwrap_err();
        assert_eq!(err, EvalError::MissingInput("x".into()));
    }

    #[test]
    fn precancelled_run_aborts_before_any_task() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..5000).collect();
        let sup = Supervisor::new(SupervisorPolicy::default());
        sup.cancel_token().cancel();
        let opts = ParallelOptions::new(4).supervised(sup);
        let err =
            eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts).unwrap_err();
        match err {
            ExecError::Cancelled { partial } => {
                assert_eq!(partial.chunk_executions, 0, "no task ran: {partial:?}");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_aborts_with_partial_report() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..5000).collect();
        let sup = Supervisor::new(SupervisorPolicy::with_deadline(Duration::ZERO));
        let opts = ParallelOptions::new(4).supervised(sup.clone());
        let err =
            eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts).unwrap_err();
        match err {
            ExecError::Deadline { partial, .. } => {
                assert_eq!(partial.chunk_executions, 0, "{partial:?}");
            }
            other => panic!("expected Deadline, got {other:?}"),
        }
        assert_eq!(sup.stats().deadline_aborts, 1);
    }

    #[test]
    fn mid_run_deadline_drains_within_task_granularity() {
        // The first loop's tasks each sleep ~3ms (delays are consumed per
        // chunk index, so only round one is delayed): 4 tasks on 2 workers
        // is ≥ 6ms of injected wall time, past the 5ms deadline no matter
        // how warm the kernel cache is. The abort must drain (no hang) and
        // leave most tasks unexecuted. Fusion is off so the two-loop task
        // structure (and thus the task count the deadline math assumes) is
        // pinned.
        let p = sum_squares_program();
        let data: Vec<i64> = (0..4000).collect();
        let mut faults = ChunkFaults::default();
        for ci in 0..64 {
            faults = faults.and_delay(ci, Duration::from_millis(3));
        }
        let sup = Supervisor::new(SupervisorPolicy {
            deadline: Some(Duration::from_millis(5)),
            speculation: SpeculationPolicy::disabled(),
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(2)
            .with_faults(faults)
            .supervised(sup)
            .without_fusion();
        let t0 = Instant::now();
        let err =
            eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts).unwrap_err();
        let elapsed = t0.elapsed();
        match err {
            ExecError::Deadline { partial, .. } => {
                assert!(
                    partial.chunk_executions < 16,
                    "most tasks abandoned: {partial:?}"
                );
            }
            other => panic!("expected Deadline, got {other:?}"),
        }
        // The drain bound is the deadline plus one in-flight task per
        // worker, far under this ceiling.
        assert!(
            elapsed < Duration::from_millis(500),
            "drained promptly, took {elapsed:?}"
        );
    }

    #[test]
    fn speculation_clones_stragglers_without_changing_output() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..4000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 4).unwrap();
        // One task sleeps 30ms; everything else is microseconds. With an
        // aggressive policy an idle worker clones the straggler.
        let sup = Supervisor::new(SupervisorPolicy {
            speculation: SpeculationPolicy {
                enabled: true,
                min_samples: 2,
                percentile: 50.0,
                multiplier: 2.0,
                floor: Duration::from_micros(50),
            },
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(4)
            .with_faults(ChunkFaults::default().and_delay(1, Duration::from_millis(30)))
            .supervised(sup.clone());
        let (value, report) =
            eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "speculation cannot change output");
        assert!(
            report.speculative_tasks >= 1,
            "straggler was cloned: {report:?}"
        );
        assert_eq!(sup.stats().speculative_launches, report.speculative_tasks as u64);
    }

    #[test]
    fn flaky_worker_trips_quarantine_but_run_succeeds() {
        let p = sum_squares_program();
        // Large enough that worker 1's own deque holds several tasks (the
        // default breaker trips after 3 failures in its window), with every
        // task delayed a little so all three workers actually participate —
        // otherwise the first worker to spawn can drain the whole round
        // before the flaky one starts.
        let data: Vec<i64> = (0..20_000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 3).unwrap();
        let sup = Supervisor::new(SupervisorPolicy {
            speculation: SpeculationPolicy::disabled(),
            retry_budget: 256,
            ..SupervisorPolicy::default()
        });
        let mut faults = ChunkFaults::default().and_flaky_worker(1);
        for ci in 0..32 {
            faults = faults.and_delay(ci, Duration::from_millis(2));
        }
        let mut opts = ParallelOptions::new(3)
            .with_faults(faults)
            .supervised(sup.clone());
        opts.max_chunk_retries = 4;
        let (value, report) =
            eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "flaky worker cannot corrupt the result");
        assert!(
            sup.stats().quarantine_trips >= 1,
            "worker 1 tripped its breaker: {:?}",
            sup.stats()
        );
        assert_eq!(report.quarantine_trips as u64, sup.stats().quarantine_trips);
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..4000).collect();
        let sup = Supervisor::new(SupervisorPolicy {
            retry_budget: 0,
            speculation: SpeculationPolicy::disabled(),
            ..SupervisorPolicy::default()
        });
        let opts = ParallelOptions::new(4)
            .with_faults(ChunkFaults::fail_once([0]))
            .supervised(sup);
        let err =
            eval_parallel_supervised(&p, &[("x", Value::i64_arr(data))], &opts).unwrap_err();
        match err {
            ExecError::RetryBudgetExhausted { chunk, budget, .. } => {
                assert_eq!(chunk, 0);
                assert_eq!(budget, 0);
            }
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }
}
