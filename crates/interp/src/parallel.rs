//! Chunked multithreaded execution of top-level multiloops.
//!
//! The key runtime insight of §5 is that "a multiloop is agnostic to whether
//! it runs over the entire loop bounds or a subset of the loop bounds": the
//! executor splits each top-level loop's index range into chunks, evaluates
//! each chunk on its own thread with a private accumulator, and merges the
//! per-chunk accumulators *in chunk order* — so `Collect` and bucket outputs
//! are bit-identical to sequential execution. `Reduce` outputs combine
//! partials with the (associative) reduction operator; for floating-point
//! reductions this can reassociate rounding, exactly as on real parallel
//! hardware.

use crate::error::EvalError;
use crate::eval::{Acc, Env, Interp};
use crate::value::{Key, Value};
use dmll_core::{Def, Exp, Gen, Program};

/// Run `program` evaluating top-level multiloops across `threads` worker
/// threads. Nested loops run sequentially within their chunk, matching the
/// default outer-level parallelization strategy of the paper's runtime.
///
/// # Errors
///
/// Same failure modes as [`crate::eval`].
pub fn eval_parallel(
    program: &Program,
    inputs: &[(&str, Value)],
    threads: usize,
) -> Result<Value, EvalError> {
    let threads = threads.max(1);
    let interp = Interp::new(program);
    let mut env: Env = vec![None; program.next_sym_id() as usize];
    for input in &program.inputs {
        let v = inputs
            .iter()
            .find(|(n, _)| *n == input.name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| EvalError::MissingInput(input.name.clone()))?;
        env[input.sym.0 as usize] = Some(v);
    }
    for stmt in &program.body.stmts {
        match &stmt.def {
            Def::Loop(ml) => {
                let size = match interp_eval_size(&interp, &ml.size, &env)? {
                    n if n <= 0 => 0,
                    n => n,
                };
                let vals = if size < threads as i64 * 4 {
                    // Not worth splitting.
                    let mut env_mut = env.clone();
                    let out = interp.eval_loop_owned(ml, &mut env_mut, 0, None)?;
                    env = env_mut;
                    out
                } else {
                    run_chunked(&interp, ml, &mut env, size, threads)?
                };
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
            other => {
                let vals = interp.eval_def_owned(other, &mut env)?;
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
        }
    }
    interp.eval_exp(&program.body.result, &env)
}

fn interp_eval_size(interp: &Interp<'_>, size: &Exp, env: &Env) -> Result<i64, EvalError> {
    interp
        .eval_exp(size, env)?
        .as_i64()
        .ok_or_else(|| EvalError::TypeMismatch("loop size".into()))
}

fn run_chunked(
    interp: &Interp<'_>,
    ml: &dmll_core::Multiloop,
    env: &mut Env,
    size: i64,
    threads: usize,
) -> Result<Vec<Value>, EvalError> {
    let chunk = (size + threads as i64 - 1) / threads as i64;
    let ranges: Vec<(i64, i64)> = (0..threads as i64)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(size)))
        .filter(|(s, e)| s < e)
        .collect();

    let results: Vec<Result<Vec<Acc>, EvalError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                let mut local_env = env.clone();
                scope.spawn(move |_| {
                    interp.eval_loop_accs_owned(ml, &mut local_env, start, Some(end))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("thread scope");

    let mut per_chunk: Vec<Vec<Acc>> = Vec::with_capacity(results.len());
    for r in results {
        per_chunk.push(r?);
    }

    // Transpose: per-generator lists of per-chunk accumulators, merged in
    // chunk order.
    let mut outputs = Vec::with_capacity(ml.gens.len());
    for (gi, gen) in ml.gens.iter().enumerate() {
        let mut merged: Option<Acc> = None;
        for chunk_accs in &mut per_chunk {
            let acc = std::mem::replace(&mut chunk_accs[gi], Acc::Collect(Vec::new()));
            merged = Some(match merged {
                None => acc,
                Some(m) => merge_pair(interp, gen, m, acc, env)?,
            });
        }
        let merged = merged.unwrap_or_else(|| Acc::for_gen(gen));
        outputs.push(interp.seal_acc_owned(gen, merged, env)?);
    }
    Ok(outputs)
}

fn merge_pair(
    interp: &Interp<'_>,
    gen: &Gen,
    a: Acc,
    b: Acc,
    env: &mut Env,
) -> Result<Acc, EvalError> {
    Ok(match (a, b) {
        (Acc::Collect(mut x), Acc::Collect(y)) => {
            x.extend(y);
            Acc::Collect(x)
        }
        (Acc::Reduce(x), Acc::Reduce(y)) => Acc::Reduce(match (x, y) {
            (Some(x), Some(y)) => {
                let reducer = gen.reducer().expect("reduce gen has reducer");
                Some(interp.eval_block_owned(reducer, &[x, y], env)?)
            }
            (Some(x), None) => Some(x),
            (None, y) => y,
        }),
        (
            Acc::BucketCollect {
                mut keys,
                mut vals,
                mut index,
            },
            Acc::BucketCollect {
                keys: bk, vals: bv, ..
            },
        ) => {
            for (k, v) in bk.into_iter().zip(bv) {
                match index.get(&Key(k.clone())) {
                    Some(&slot) => vals[slot].extend(v),
                    None => {
                        index.insert(Key(k.clone()), keys.len());
                        keys.push(k);
                        vals.push(v);
                    }
                }
            }
            Acc::BucketCollect { keys, vals, index }
        }
        (
            Acc::BucketReduce {
                mut keys,
                mut vals,
                mut index,
            },
            Acc::BucketReduce {
                keys: bk, vals: bv, ..
            },
        ) => {
            let reducer = gen.reducer().expect("bucket-reduce gen has reducer");
            for (k, v) in bk.into_iter().zip(bv) {
                match index.get(&Key(k.clone())) {
                    Some(&slot) => {
                        let cur = vals[slot].clone();
                        vals[slot] = interp.eval_block_owned(reducer, &[cur, v], env)?;
                    }
                    None => {
                        index.insert(Key(k.clone()), keys.len());
                        keys.push(k);
                        vals.push(v);
                    }
                }
            }
            Acc::BucketReduce { keys, vals, index }
        }
        _ => unreachable!("mismatched accumulators"),
    })
}

impl<'p> Interp<'p> {
    pub(crate) fn eval_loop_owned(
        &self,
        ml: &dmll_core::Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Value>, EvalError> {
        self.eval_loop(ml, env, start, end)
    }

    pub(crate) fn eval_loop_accs_owned(
        &self,
        ml: &dmll_core::Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Acc>, EvalError> {
        self.eval_loop_accs(ml, env, start, end)
    }

    pub(crate) fn eval_def_owned(&self, def: &Def, env: &mut Env) -> Result<Vec<Value>, EvalError> {
        // Delegate through a tiny shim block so we reuse eval_def without
        // exposing it.
        self.eval_def_internal(def, env)
    }

    pub(crate) fn eval_block_owned(
        &self,
        block: &dmll_core::Block,
        args: &[Value],
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        self.eval_block(block, args, env)
    }

    pub(crate) fn seal_acc_owned(
        &self,
        gen: &Gen,
        acc: Acc,
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        self.seal_acc(gen, acc, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    fn sum_squares_program() -> Program {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let sq = st.map(&x, |st, e| st.mul(e, e));
        let total = st.sum(&sq);
        st.finish(&total)
    }

    #[test]
    fn parallel_matches_sequential_exact_ints() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..1000).collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        for threads in [1, 2, 3, 7] {
            let par = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_collect_preserves_order() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let evens = st.filter(&x, |st, e| {
            let two = st.lit_i(2);
            let r = st.rem(e, &two);
            let zero = st.lit_i(0);
            st.eq(&r, &zero)
        });
        let p = st.finish(&evens);
        let data: Vec<i64> = (0..997).rev().collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_bucket_reduce_merges() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let zero = st.lit_i(0);
        let sums = st.group_by_reduce(
            &x,
            |st, e| {
                let five = st.lit_i(5);
                st.rem(e, &five)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let keys = st.bucket_keys(&sums);
        let vals = st.bucket_values(&sums);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        let data: Vec<i64> = (0..500).map(|i| i * 13 % 101).collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], 3).unwrap();
        assert_eq!(seq, par, "bucket keys and sums match sequential");
    }

    #[test]
    fn parallel_empty_input() {
        let p = sum_squares_program();
        let out = eval_parallel(&p, &[("x", Value::i64_arr(vec![]))], 4).unwrap();
        assert_eq!(out, Value::I64(0));
    }

    #[test]
    fn parallel_float_sum_close() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let seq = eval(&p, &[("x", Value::f64_arr(data.clone()))])
            .unwrap()
            .as_f64()
            .unwrap();
        let par = eval_parallel(&p, &[("x", Value::f64_arr(data))], 4)
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((seq - par).abs() < 1e-9, "{seq} vs {par}");
    }
}
