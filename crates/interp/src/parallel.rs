//! Chunked multithreaded execution of top-level multiloops.
//!
//! The key runtime insight of §5 is that "a multiloop is agnostic to whether
//! it runs over the entire loop bounds or a subset of the loop bounds": the
//! executor splits each top-level loop's index range into chunks, evaluates
//! each chunk on its own thread with a private accumulator, and merges the
//! per-chunk accumulators *in chunk order* — so `Collect` and bucket outputs
//! are bit-identical to sequential execution. `Reduce` outputs combine
//! partials with the (associative) reduction operator; for floating-point
//! reductions this can reassociate rounding, exactly as on real parallel
//! hardware.
//!
//! ## Fault tolerance
//!
//! The same agnosticism makes chunk-level recovery free of lineage
//! machinery: a chunk that dies (worker panic, or an injected fault from
//! [`ChunkFaults`]) is simply re-executed over just its subrange, and the
//! merged result is identical to the fault-free run because merging is in
//! chunk order regardless of *when* each chunk's accumulator was produced.
//! Workers run under `catch_unwind`, so a panicking chunk cannot abort the
//! process; deterministic interpreter errors (a real out-of-bounds read,
//! say) propagate immediately rather than being retried. The
//! [`ExecReport`] returned by [`eval_parallel_report`] makes recovery
//! observable to tests and benchmarks.

use crate::error::EvalError;
use crate::eval::{Acc, Env, Interp};
use crate::value::{Key, Value};
use dmll_core::{Def, Exp, Gen, Program};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Injected chunk failures for chaos-testing the executor: the listed
/// chunk indices fail on their first execution attempt, then succeed.
#[derive(Clone, Debug, Default)]
pub struct ChunkFaults {
    fail_once: BTreeSet<usize>,
    panic_workers: bool,
}

impl ChunkFaults {
    /// Fail the given chunk indices once each: a listed chunk dies the
    /// first time it executes (across all top-level loops), then succeeds
    /// on re-execution.
    pub fn fail_once(chunks: impl IntoIterator<Item = usize>) -> ChunkFaults {
        ChunkFaults {
            fail_once: chunks.into_iter().collect(),
            panic_workers: false,
        }
    }

    /// Deliver the injected failures as real worker panics (exercising the
    /// `catch_unwind` path) instead of synthetic failure markers.
    pub fn panicking(mut self) -> ChunkFaults {
        self.panic_workers = true;
        self
    }
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct ParallelOptions {
    /// Worker threads (and chunks per top-level loop).
    pub threads: usize,
    /// Re-executions allowed per failed chunk before giving up.
    pub max_chunk_retries: u32,
    /// Injected failures (empty by default).
    pub faults: ChunkFaults,
}

impl ParallelOptions {
    /// Defaults with the given thread count: 2 re-executions, no faults.
    pub fn new(threads: usize) -> ParallelOptions {
        ParallelOptions {
            threads: threads.max(1),
            max_chunk_retries: 2,
            faults: ChunkFaults::default(),
        }
    }

    /// Set injected faults.
    pub fn with_faults(mut self, faults: ChunkFaults) -> ParallelOptions {
        self.faults = faults;
        self
    }
}

/// What recovery happened during one parallel evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Chunk executions across all top-level loops (including re-runs).
    pub chunk_executions: usize,
    /// Chunk executions that failed (injected or panicked).
    pub failed_executions: usize,
    /// Chunks that recovered via subrange re-execution.
    pub reexecuted_chunks: usize,
}

/// Run `program` evaluating top-level multiloops across `threads` worker
/// threads. Nested loops run sequentially within their chunk, matching the
/// default outer-level parallelization strategy of the paper's runtime.
///
/// # Errors
///
/// Same failure modes as [`crate::eval`].
pub fn eval_parallel(
    program: &Program,
    inputs: &[(&str, Value)],
    threads: usize,
) -> Result<Value, EvalError> {
    eval_parallel_report(program, inputs, &ParallelOptions::new(threads)).map(|(v, _)| v)
}

/// Like [`eval_parallel`], with explicit [`ParallelOptions`] and an
/// [`ExecReport`] describing any chunk recovery that happened.
///
/// # Errors
///
/// Same failure modes as [`crate::eval`], plus
/// [`EvalError::ChunkRetriesExhausted`] when a chunk keeps dying past its
/// retry budget.
pub fn eval_parallel_report(
    program: &Program,
    inputs: &[(&str, Value)],
    options: &ParallelOptions,
) -> Result<(Value, ExecReport), EvalError> {
    let threads = options.threads.max(1);
    let interp = Interp::new(program);
    let mut env: Env = vec![None; program.next_sym_id() as usize];
    for input in &program.inputs {
        let v = inputs
            .iter()
            .find(|(n, _)| *n == input.name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| EvalError::MissingInput(input.name.clone()))?;
        env[input.sym.0 as usize] = Some(v);
    }
    let mut report = ExecReport::default();
    // Faults not yet delivered: each listed chunk index dies at most once
    // across the whole evaluation (the coordinator decides before spawning,
    // so injection is deterministic under any thread interleaving).
    let mut pending_faults: BTreeSet<usize> = options.faults.fail_once.clone();
    for stmt in &program.body.stmts {
        match &stmt.def {
            Def::Loop(ml) => {
                let size = match interp_eval_size(&interp, &ml.size, &env)? {
                    n if n <= 0 => 0,
                    n => n,
                };
                let vals = if size < threads as i64 * 4 && pending_faults.is_empty() {
                    // Not worth splitting.
                    let mut env_mut = env.clone();
                    let out = interp.eval_loop_owned(ml, &mut env_mut, 0, None)?;
                    env = env_mut;
                    out
                } else {
                    run_chunked(
                        &interp,
                        ml,
                        &mut env,
                        size,
                        threads,
                        options,
                        &mut pending_faults,
                        &mut report,
                    )?
                };
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
            other => {
                let vals = interp.eval_def_owned(other, &mut env)?;
                for (s, v) in stmt.lhs.iter().zip(vals) {
                    env[s.0 as usize] = Some(v);
                }
            }
        }
    }
    let value = interp.eval_exp(&program.body.result, &env)?;
    Ok((value, report))
}

fn interp_eval_size(interp: &Interp<'_>, size: &Exp, env: &Env) -> Result<i64, EvalError> {
    interp
        .eval_exp(size, env)?
        .as_i64()
        .ok_or_else(|| EvalError::TypeMismatch("loop size".into()))
}

/// How one chunk execution went wrong.
enum ChunkFailure {
    /// A deterministic interpreter error: retrying cannot help.
    Eval(EvalError),
    /// The worker died (real panic, or injected fault): re-executable.
    Died(String),
}

/// Execute one chunk's subrange, optionally delivering an injected fault.
fn execute_chunk(
    interp: &Interp<'_>,
    ml: &dmll_core::Multiloop,
    env: &Env,
    range: (i64, i64),
    chunk_index: usize,
    injected: bool,
    panic_workers: bool,
) -> Result<Vec<Acc>, ChunkFailure> {
    if injected && !panic_workers {
        return Err(ChunkFailure::Died(format!(
            "injected fault on chunk {chunk_index}"
        )));
    }
    let mut local_env = env.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if injected {
            panic!("injected panic on chunk {chunk_index}");
        }
        interp.eval_loop_accs_owned(ml, &mut local_env, range.0, Some(range.1))
    }));
    match outcome {
        Ok(Ok(accs)) => Ok(accs),
        Ok(Err(e)) => Err(ChunkFailure::Eval(e)),
        Err(payload) => Err(ChunkFailure::Died(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_chunked(
    interp: &Interp<'_>,
    ml: &dmll_core::Multiloop,
    env: &mut Env,
    size: i64,
    threads: usize,
    options: &ParallelOptions,
    pending_faults: &mut BTreeSet<usize>,
    report: &mut ExecReport,
) -> Result<Vec<Value>, EvalError> {
    let chunk = (size + threads as i64 - 1) / threads as i64;
    let ranges: Vec<(i64, i64)> = (0..threads as i64)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(size)))
        .filter(|(s, e)| s < e)
        .collect();
    let inject: Vec<bool> = (0..ranges.len()).map(|ci| pending_faults.remove(&ci)).collect();
    let panic_workers = options.faults.panic_workers;

    // First round: every chunk on its own worker thread, failures caught.
    let first_round: Vec<Result<Vec<Acc>, ChunkFailure>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(ci, &range)| {
                let env_ref = &*env;
                let injected = inject[ci];
                scope.spawn(move || {
                    execute_chunk(interp, ml, env_ref, range, ci, injected, panic_workers)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    // Only reachable if a panic escapes catch_unwind
                    // (e.g. a panic while unwinding); still recoverable
                    // by re-execution.
                    Err(ChunkFailure::Died(panic_message(payload.as_ref())))
                })
            })
            .collect()
    });
    report.chunk_executions += ranges.len();

    // Recovery: re-execute just the failed chunks' subranges. A multiloop
    // is agnostic to its bounds, so re-running `ranges[ci]` alone yields
    // the same accumulator the lost worker would have produced.
    let mut per_chunk: Vec<Vec<Acc>> = Vec::with_capacity(first_round.len());
    for (ci, outcome) in first_round.into_iter().enumerate() {
        match outcome {
            Ok(accs) => per_chunk.push(accs),
            Err(ChunkFailure::Eval(e)) => return Err(e),
            Err(ChunkFailure::Died(mut message)) => {
                report.failed_executions += 1;
                let mut recovered = None;
                for _attempt in 1..=options.max_chunk_retries {
                    report.chunk_executions += 1;
                    match execute_chunk(interp, ml, env, ranges[ci], ci, false, panic_workers) {
                        Ok(accs) => {
                            report.reexecuted_chunks += 1;
                            recovered = Some(accs);
                            break;
                        }
                        Err(ChunkFailure::Eval(e)) => return Err(e),
                        Err(ChunkFailure::Died(m)) => {
                            report.failed_executions += 1;
                            message = m;
                        }
                    }
                }
                match recovered {
                    Some(accs) => per_chunk.push(accs),
                    None => {
                        return Err(EvalError::ChunkRetriesExhausted {
                            chunk: ci,
                            attempts: options.max_chunk_retries + 1,
                            message,
                        })
                    }
                }
            }
        }
    }

    // Transpose: per-generator lists of per-chunk accumulators, merged in
    // chunk order.
    let mut outputs = Vec::with_capacity(ml.gens.len());
    for (gi, gen) in ml.gens.iter().enumerate() {
        let mut merged: Option<Acc> = None;
        for chunk_accs in &mut per_chunk {
            let acc = std::mem::replace(&mut chunk_accs[gi], Acc::Collect(Vec::new()));
            merged = Some(match merged {
                None => acc,
                Some(m) => merge_pair(interp, gen, m, acc, env)?,
            });
        }
        let merged = merged.unwrap_or_else(|| Acc::for_gen(gen));
        outputs.push(interp.seal_acc_owned(gen, merged, env)?);
    }
    Ok(outputs)
}

fn merge_pair(
    interp: &Interp<'_>,
    gen: &Gen,
    a: Acc,
    b: Acc,
    env: &mut Env,
) -> Result<Acc, EvalError> {
    Ok(match (a, b) {
        (Acc::Collect(mut x), Acc::Collect(y)) => {
            x.extend(y);
            Acc::Collect(x)
        }
        (Acc::Reduce(x), Acc::Reduce(y)) => Acc::Reduce(match (x, y) {
            (Some(x), Some(y)) => {
                let reducer = gen
                    .reducer()
                    .ok_or_else(|| EvalError::TypeMismatch("reduce gen without reducer".into()))?;
                Some(interp.eval_block_owned(reducer, &[x, y], env)?)
            }
            (Some(x), None) => Some(x),
            (None, y) => y,
        }),
        (
            Acc::BucketCollect {
                mut keys,
                mut vals,
                mut index,
            },
            Acc::BucketCollect {
                keys: bk, vals: bv, ..
            },
        ) => {
            for (k, v) in bk.into_iter().zip(bv) {
                match index.get(&Key(k.clone())) {
                    Some(&slot) => vals[slot].extend(v),
                    None => {
                        index.insert(Key(k.clone()), keys.len());
                        keys.push(k);
                        vals.push(v);
                    }
                }
            }
            Acc::BucketCollect { keys, vals, index }
        }
        (
            Acc::BucketReduce {
                mut keys,
                mut vals,
                mut index,
            },
            Acc::BucketReduce {
                keys: bk, vals: bv, ..
            },
        ) => {
            let reducer = gen.reducer().ok_or_else(|| {
                EvalError::TypeMismatch("bucket-reduce gen without reducer".into())
            })?;
            for (k, v) in bk.into_iter().zip(bv) {
                match index.get(&Key(k.clone())) {
                    Some(&slot) => {
                        let cur = vals[slot].clone();
                        vals[slot] = interp.eval_block_owned(reducer, &[cur, v], env)?;
                    }
                    None => {
                        index.insert(Key(k.clone()), keys.len());
                        keys.push(k);
                        vals.push(v);
                    }
                }
            }
            Acc::BucketReduce { keys, vals, index }
        }
        _ => {
            return Err(EvalError::TypeMismatch(
                "mismatched accumulators across chunks".into(),
            ))
        }
    })
}

impl<'p> Interp<'p> {
    pub(crate) fn eval_loop_owned(
        &self,
        ml: &dmll_core::Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Value>, EvalError> {
        self.eval_loop(ml, env, start, end)
    }

    pub(crate) fn eval_loop_accs_owned(
        &self,
        ml: &dmll_core::Multiloop,
        env: &mut Env,
        start: i64,
        end: Option<i64>,
    ) -> Result<Vec<Acc>, EvalError> {
        self.eval_loop_accs(ml, env, start, end)
    }

    pub(crate) fn eval_def_owned(&self, def: &Def, env: &mut Env) -> Result<Vec<Value>, EvalError> {
        // Delegate through a tiny shim block so we reuse eval_def without
        // exposing it.
        self.eval_def_internal(def, env)
    }

    pub(crate) fn eval_block_owned(
        &self,
        block: &dmll_core::Block,
        args: &[Value],
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        self.eval_block(block, args, env)
    }

    pub(crate) fn seal_acc_owned(
        &self,
        gen: &Gen,
        acc: Acc,
        env: &mut Env,
    ) -> Result<Value, EvalError> {
        self.seal_acc(gen, acc, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    fn sum_squares_program() -> Program {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let sq = st.map(&x, |st, e| st.mul(e, e));
        let total = st.sum(&sq);
        st.finish(&total)
    }

    #[test]
    fn parallel_matches_sequential_exact_ints() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..1000).collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        for threads in [1, 2, 3, 7] {
            let par = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_collect_preserves_order() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let evens = st.filter(&x, |st, e| {
            let two = st.lit_i(2);
            let r = st.rem(e, &two);
            let zero = st.lit_i(0);
            st.eq(&r, &zero)
        });
        let p = st.finish(&evens);
        let data: Vec<i64> = (0..997).rev().collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_bucket_reduce_merges() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let zero = st.lit_i(0);
        let sums = st.group_by_reduce(
            &x,
            |st, e| {
                let five = st.lit_i(5);
                st.rem(e, &five)
            },
            |_st, e| e.clone(),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let keys = st.bucket_keys(&sums);
        let vals = st.bucket_values(&sums);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        let data: Vec<i64> = (0..500).map(|i| i * 13 % 101).collect();
        let seq = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let par = eval_parallel(&p, &[("x", Value::i64_arr(data))], 3).unwrap();
        assert_eq!(seq, par, "bucket keys and sums match sequential");
    }

    #[test]
    fn parallel_empty_input() {
        let p = sum_squares_program();
        let out = eval_parallel(&p, &[("x", Value::i64_arr(vec![]))], 4).unwrap();
        assert_eq!(out, Value::I64(0));
    }

    #[test]
    fn parallel_float_sum_close() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let s = st.sum(&x);
        let p = st.finish(&s);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let seq = eval(&p, &[("x", Value::f64_arr(data.clone()))])
            .unwrap()
            .as_f64()
            .unwrap();
        let par = eval_parallel(&p, &[("x", Value::f64_arr(data))], 4)
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((seq - par).abs() < 1e-9, "{seq} vs {par}");
    }

    #[test]
    fn injected_chunk_faults_recover_with_identical_results() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 4).unwrap();
        let opts = ParallelOptions::new(4).with_faults(ChunkFaults::fail_once([0, 2]));
        let (value, report) =
            eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "recovered run is bit-identical");
        assert_eq!(report.failed_executions, 2);
        assert_eq!(report.reexecuted_chunks, 2);
        assert!(report.chunk_executions >= 6, "{report:?}");
    }

    #[test]
    fn panicking_workers_are_caught_and_reexecuted() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let clean = eval_parallel(&p, &[("x", Value::i64_arr(data.clone()))], 3).unwrap();
        let opts =
            ParallelOptions::new(3).with_faults(ChunkFaults::fail_once([1]).panicking());
        let (value, report) =
            eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "catch_unwind recovery is bit-identical");
        assert_eq!(report.reexecuted_chunks, 1);
    }

    #[test]
    fn collect_order_survives_chunk_reexecution() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| st.add(e, e));
        let p = st.finish(&doubled);
        let data: Vec<i64> = (0..997).rev().collect();
        let clean = eval(&p, &[("x", Value::i64_arr(data.clone()))]).unwrap();
        let opts = ParallelOptions::new(5).with_faults(ChunkFaults::fail_once([0, 3, 4]));
        let (value, _) = eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap();
        assert_eq!(value, clean, "Collect order preserved across recovery");
    }

    #[test]
    fn unrecoverable_chunk_surfaces_typed_error() {
        let p = sum_squares_program();
        let data: Vec<i64> = (0..2000).collect();
        let mut opts = ParallelOptions::new(4).with_faults(ChunkFaults::fail_once([1]));
        opts.max_chunk_retries = 0;
        let err = eval_parallel_report(&p, &[("x", Value::i64_arr(data))], &opts).unwrap_err();
        match err {
            EvalError::ChunkRetriesExhausted { chunk, attempts, .. } => {
                assert_eq!(chunk, 1);
                assert_eq!(attempts, 1);
            }
            other => panic!("expected ChunkRetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn real_eval_errors_are_not_retried() {
        // A genuine missing input fails immediately, never retried.
        let p = sum_squares_program();
        let err = eval_parallel(&p, &[], 4).unwrap_err();
        assert_eq!(err, EvalError::MissingInput("x".into()));
    }
}
