//! Pre-compile fusion hook: run the transform pipeline on a program once,
//! cache the result, and hand executors the fused body plus a fingerprint
//! that keys the kernel cache.
//!
//! Executors ([`crate::eval::Interp`], [`crate::parallel`]) call
//! [`fused_program`] before walking a program's top-level statements. The
//! rewrite is the full CPU optimizer recipe — cost-guided pipeline fusion,
//! gated horizontal fusion, GroupBy/Conditional-Reduce, cleanup — so fused
//! producer→consumer chains lower to one batched bytecode kernel instead of
//! materializing intermediates between loops.
//!
//! Correctness hinges on two properties:
//!
//! - the rewrite is semantics-preserving (the transform crate's invariant,
//!   pinned again here by differential proptests), and
//! - fused and unfused variants of a loop never collide in the kernel
//!   cache: the returned `fingerprint` participates in the cache key, and
//!   is `0` exactly when the rewrite was an identity (so pre-optimized
//!   programs share entries with unfused runs, which execute the same IR).
//!
//! The optimizer is pure program-to-program, so results are memoized in a
//! small LRU keyed by the *printed* program (programs have no `PartialEq`;
//! the structural hash alone could collide). A panic inside the optimizer —
//! which would be a transform bug, not a user error — degrades to the
//! identity rewrite rather than poisoning execution.

use crate::compile::hash_program;
use dmll_core::{Def, Program};
use dmll_transform::{optimize_runtime, Target};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

/// Cached outcome of running the optimizer over one program.
pub(crate) struct FusedProgram {
    /// The rewritten program; `None` when the rewrite was an identity (run
    /// the original).
    pub program: Option<Program>,
    /// Kernel-cache key component: `0` for identity rewrites, otherwise a
    /// nonzero hash of the fused program.
    pub fingerprint: u64,
    /// Rewrites the optimizer applied.
    pub applied: u64,
    /// Fusion candidates the cost model declined.
    pub rejected: u64,
}

const FUSE_CACHE_CAP: usize = 64;

type FuseCache = Mutex<Vec<((u64, String), Arc<FusedProgram>)>>;

fn cache() -> &'static FuseCache {
    static CACHE: OnceLock<FuseCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Hash-only memo of programs whose rewrite came back an identity, carrying
/// the discovering run's applied/rejected counts. Checked before the
/// printed-program memo, so steady-state zero-rewrite executions pay one
/// cheap AST hash per run instead of printing the whole program for the
/// collision-proof cache key. Safe on a (vanishingly unlikely) 64-bit hash
/// collision: identity means "run the program as written", so the worst
/// case is a missed optimization for the colliding program, never changed
/// semantics.
const IDENTITY_CACHE_CAP: usize = 256;

type IdentityCache = Mutex<Vec<(u64, (u64, u64))>>;

fn identity_cache() -> &'static IdentityCache {
    static CACHE: OnceLock<IdentityCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Fuse `program` (memoized). Returns the cached rewrite outcome; callers
/// execute `program` when `.program` is `None`, the fused body otherwise.
pub(crate) fn fused_program(program: &Program) -> Arc<FusedProgram> {
    // Loop-free programs gain nothing from fusion, and scalar-only rewrites
    // (e.g. folding dead scalar code that would fault) could change which
    // error surfaces; skip them outright.
    if !program.body.stmts.iter().any(|s| matches!(s.def, Def::Loop(_))) {
        return identity();
    }
    let hash = hash_program(program);
    {
        let mut c = identity_cache().lock().unwrap();
        if let Some(pos) = c.iter().position(|(h, _)| *h == hash) {
            let entry = c.remove(pos);
            c.insert(0, entry);
            let (applied, rejected) = entry.1;
            return Arc::new(FusedProgram { program: None, fingerprint: 0, applied, rejected });
        }
    }
    let printed = program.to_string();
    {
        let mut c = cache().lock().unwrap();
        if let Some(pos) = c.iter().position(|((h, p), _)| *h == hash && *p == printed) {
            let entry = c.remove(pos);
            let out = entry.1.clone();
            c.insert(0, entry);
            return out;
        }
    }
    let fused = compute(program, hash);
    if fused.program.is_none() && fused.fingerprint == 0 {
        let mut c = identity_cache().lock().unwrap();
        c.insert(0, (hash, (fused.applied, fused.rejected)));
        c.truncate(IDENTITY_CACHE_CAP);
    } else {
        let mut c = cache().lock().unwrap();
        c.insert(0, ((hash, printed), fused.clone()));
        c.truncate(FUSE_CACHE_CAP);
    }
    fused
}

fn identity() -> Arc<FusedProgram> {
    Arc::new(FusedProgram { program: None, fingerprint: 0, applied: 0, rejected: 0 })
}

fn compute(program: &Program, original_hash: u64) -> Arc<FusedProgram> {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut fused = program.clone();
        let report = optimize_runtime(&mut fused, Target::Cpu);
        (fused, report)
    }));
    let Ok((fused, report)) = outcome else {
        // Optimizer bug: degrade to running the program as written.
        return identity();
    };
    let fused_hash = hash_program(&fused);
    if fused_hash == original_hash {
        // Identity rewrite: share kernel-cache entries with unfused runs.
        return Arc::new(FusedProgram {
            program: None,
            fingerprint: 0,
            applied: report.applied_total() as u64,
            rejected: report.rejected_total() as u64,
        });
    }
    Arc::new(FusedProgram {
        program: Some(fused),
        // 0 is reserved for "not fused"; remap the (vanishingly unlikely)
        // hash 0 so fused variants always key separately.
        fingerprint: if fused_hash == 0 { 1 } else { fused_hash },
        applied: report.applied_total() as u64,
        rejected: report.rejected_total() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmll_core::{LayoutHint, Ty};
    use dmll_frontend::Stage;

    fn pipeline_program() -> Program {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let a = st.map(&x, |st, e| st.mul(e, e));
        let s = st.sum(&a);
        st.finish(&s)
    }

    #[test]
    fn fuses_a_map_reduce_pipeline() {
        let p = pipeline_program();
        let f = fused_program(&p);
        assert!(f.program.is_some(), "map→sum fuses");
        assert_ne!(f.fingerprint, 0);
        assert!(f.applied >= 1);
    }

    #[test]
    fn memoizes_by_program() {
        let p = pipeline_program();
        let a = fused_program(&p);
        let b = fused_program(&p);
        assert!(Arc::ptr_eq(&a, &b), "second lookup hits the cache");
    }

    #[test]
    fn pre_optimized_program_is_identity() {
        let mut p = pipeline_program();
        dmll_transform::optimize(&mut p, Target::Cpu);
        let f = fused_program(&p);
        assert!(f.program.is_none(), "optimizer recipe is idempotent");
        assert_eq!(f.fingerprint, 0);
        // Steady state: the hash-only identity memo serves repeat lookups
        // with the same outcome and the discovering run's counters.
        let g = fused_program(&p);
        assert!(g.program.is_none());
        assert_eq!(g.fingerprint, 0);
        assert_eq!((g.applied, g.rejected), (f.applied, f.rejected));
    }

    #[test]
    fn loop_free_program_is_skipped() {
        let mut st = Stage::new();
        let x = st.input("x", Ty::F64, LayoutHint::Local);
        let y = st.mul(&x, &x);
        let p = st.finish(&y);
        let f = fused_program(&p);
        assert!(f.program.is_none());
        assert_eq!(f.fingerprint, 0);
        assert_eq!(f.applied, 0);
    }
}
