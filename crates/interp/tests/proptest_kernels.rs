//! Differential property tests for the compiled kernel tier: for every
//! generator kind, the bytecode kernels must produce outputs bit-identical
//! to the tree-walking reference — sequentially, in the parallel executor,
//! and under injected chunk failures with subrange re-execution.

use dmll_core::{LayoutHint, MathFn, Ty};
use dmll_frontend::{Stage, Val};
use dmll_interp::{
    eval_parallel_report, eval_tree_walk, tier_totals, ChunkFaults, Interp, ParallelOptions, Value,
};
use proptest::prelude::*;

/// Run on both tiers sequentially, demand bit-identical values, and demand
/// that the compiled tier actually compiled at least one loop (otherwise
/// the test silently compares the walker with itself).
fn assert_tiers_identical(
    p: &dmll_core::Program,
    inputs: &[(&str, Value)],
) -> Result<(), TestCaseError> {
    let (compiled, report) = Interp::new(p)
        .run_report(inputs)
        .expect("compiled tier run");
    prop_assert!(
        report.compiled_loops >= 1,
        "no loop compiled: {report:?}"
    );
    let walked = eval_tree_walk(p, inputs).expect("tree-walk run");
    prop_assert_eq!(compiled, walked);
    Ok(())
}

/// Run on all three tiers sequentially — batched kernel, scalar bytecode
/// kernel, tree-walker — and demand bit-identical values. Also demand that
/// the batched tier actually ran block-at-a-time: the global batched
/// counters must have grown across the run (they are monotonic, so this is
/// sound even with other tests running concurrently in the same process).
fn assert_three_tiers_identical(
    p: &dmll_core::Program,
    inputs: &[(&str, Value)],
) -> Result<(), TestCaseError> {
    let before = tier_totals();
    let (batched, report) = Interp::new(p).run_report(inputs).expect("batched tier run");
    let after = tier_totals();
    prop_assert!(report.compiled_loops >= 1, "no loop compiled: {report:?}");
    prop_assert!(
        after.batched_loops > before.batched_loops,
        "no loop ran on the batched tier"
    );
    let (scalar, _) = Interp::new(p)
        .without_batched_tier()
        .run_report(inputs)
        .expect("scalar kernel tier run");
    let walked = eval_tree_walk(p, inputs).expect("tree-walk run");
    prop_assert_eq!(&batched, &scalar, "batched vs scalar bytecode");
    prop_assert_eq!(batched, walked, "batched vs tree-walker");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Collect with a condition (filter + arithmetic map) over i64.
    #[test]
    fn collect_matches_tree_walk(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        modulus in 1i64..7,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let x2 = x.clone();
        let kept = st.collect_if(
            &n,
            |st, i| {
                let xi = st.read(&x, i);
                let m = st.lit_i(modulus);
                let r = st.rem(&xi, &m);
                let zero = st.lit_i(0);
                st.ne(&r, &zero)
            },
            move |st, i| {
                let xi = st.read(&x2, i);
                st.mul(&xi, &xi)
            },
        );
        let p = st.finish(&kept);
        assert_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// Reduce over f64 with math functions in the value block — float
    /// results must match bit-for-bit because both tiers reduce in the
    /// same sequential order.
    #[test]
    fn reduce_matches_tree_walk(
        data in prop::collection::vec(-100i64..100, 0..200),
    ) {
        let floats: Vec<f64> = data.iter().map(|v| *v as f64 / 7.0).collect();
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let zero = st.lit_f(0.0);
        let s = st.reduce(
            &n,
            |st, i| {
                let xi = st.read(&x, i);
                let sq = st.mul(&xi, &xi);
                let e = st.math(MathFn::Sqrt, &sq);
                st.add(&e, &xi)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let p = st.finish(&s);
        assert_tiers_identical(&p, &[("x", Value::f64_arr(floats))])?;
    }

    /// BucketCollect (group_by): first-seen key order and per-bucket
    /// element order must survive compilation.
    #[test]
    fn bucket_collect_matches_tree_walk(
        data in prop::collection::vec(0i64..5000, 0..250),
        modulus in 1i64..11,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let g = st.group_by(&x, |st, e| {
            let m = st.lit_i(modulus);
            st.rem(e, &m)
        });
        let keys = st.bucket_keys(&g);
        let vals = st.bucket_values(&g);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        assert_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// BucketReduce (group_by_reduce) with a conditional element filter.
    #[test]
    fn bucket_reduce_matches_tree_walk(
        data in prop::collection::vec(-500i64..500, 0..250),
        modulus in 1i64..9,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let izero = st.lit_i(0);
        let x1 = x.clone();
        let x2 = x.clone();
        let sums = st.bucket_reduce(
            &n,
            move |st, i| {
                let xi = st.read(&x1, i);
                let m = st.lit_i(modulus);
                st.rem(&xi, &m)
            },
            move |st, i| st.read(&x2, i),
            |st, a, b| st.add(a, b),
            Some(&izero),
        );
        let keys = st.bucket_keys(&sums);
        let vals = st.bucket_values(&sums);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        assert_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// The parallel executor on the compiled tier matches the tree-walking
    /// tier under injected chunk failures and re-execution, for a program
    /// mixing all four generator kinds across its loops.
    #[test]
    fn parallel_kernels_survive_chunk_faults(
        data in prop::collection::vec(0i64..2000, 20..300),
        threads in 2usize..6,
        fail_a in 0usize..4,
        fail_b in 0usize..4,
        panicking in any::<bool>(),
    ) {
        let build = || {
            let mut st = Stage::new();
            let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
            let doubled = st.map(&x, |st, e| st.add(e, e));
            let total = st.sum(&doubled);
            let m = st.lit_i(5);
            let zero = st.lit_i(0);
            let counts = st.group_by_reduce(
                &x,
                move |st, e| st.rem(e, &m),
                |st, _e| st.lit_i(1),
                |st, a, b| st.add(a, b),
                Some(&zero),
            );
            let groups = st.group_by(&x, |st, e| {
                let m = st.lit_i(3);
                st.rem(e, &m)
            });
            let ckeys = st.bucket_keys(&counts);
            let cvals = st.bucket_values(&counts);
            let gkeys = st.bucket_keys(&groups);
            let out = st.tuple(&[&total, &ckeys, &cvals, &gkeys]);
            st.finish(&out)
        };
        let p = build();
        let inputs = [("x", Value::i64_arr(data))];

        let mut faults = ChunkFaults::fail_once([fail_a, fail_b]);
        if panicking {
            faults = faults.panicking();
        }
        let opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (with_kernels, report) = eval_parallel_report(&p, &inputs, &opts).unwrap();
        prop_assert!(
            report.compiled_loops >= 1,
            "no loop compiled in parallel run: {report:?}"
        );

        let tw_opts = ParallelOptions::new(threads)
            .tree_walk_only()
            .with_faults(faults);
        let (tree_walk, tw_report) = eval_parallel_report(&p, &inputs, &tw_opts).unwrap();
        prop_assert_eq!(tw_report.compiled_loops, 0);
        prop_assert_eq!(&with_kernels, &tree_walk);

        // And both match the plain sequential reference.
        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(with_kernels, seq);
    }

    /// Fault recovery on the compiled tier is bit-identical to a fault-free
    /// compiled run (chunk re-execution runs the very same kernel).
    #[test]
    fn kernel_chunk_recovery_is_bit_identical(
        data in prop::collection::vec(-300i64..300, 30..400),
        threads in 2usize..6,
        failed in prop::collection::vec(0usize..6, 0..3),
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let f = st.map(&x, |st, e| {
            let ef = st.i2f(e);
            let c = st.lit_f(3.0);
            st.div(&ef, &c)
        });
        let s = st.sum(&f);
        let pair = st.tuple(&[&f, &s]);
        let p = st.finish(&pair);
        let inputs = [("x", Value::i64_arr(data))];

        let clean_opts = ParallelOptions::new(threads);
        let (clean, _) = eval_parallel_report(&p, &inputs, &clean_opts).unwrap();

        let fault_opts = ParallelOptions::new(threads)
            .with_faults(ChunkFaults::fail_once(failed.iter().copied()));
        let (recovered, report) = eval_parallel_report(&p, &inputs, &fault_opts).unwrap();
        prop_assert!(report.compiled_loops >= 1, "{report:?}");
        prop_assert_eq!(clean, recovered);
    }
}

// Differential tests for the batched executor: sizes span multiple
// 1024-wide blocks plus a scalar tail, selection vectors cover the
// all-true / all-false / mixed cases, and every generator kind is pinned
// batched == scalar bytecode == tree-walker. Fewer cases than above —
// each one traverses a few thousand elements.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conditioned Collect across full blocks and a tail. `mode` drives the
    /// selection vector: 0 keeps nothing, 1 keeps everything, 2 is mixed.
    #[test]
    fn batched_collect_selection_vectors(
        data in prop::collection::vec(-1000i64..1000, 800..2600),
        mode in 0i64..3,
    ) {
        let threshold = match mode {
            0 => -1001, // no element is below: all-false selection vectors
            1 => 1001,  // every element is below: all-true selection vectors
            _ => 0,     // mixed
        };
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let x2 = x.clone();
        let kept = st.collect_if(
            &n,
            move |st, i| {
                let xi = st.read(&x, i);
                let t = st.lit_i(threshold);
                st.lt(&xi, &t)
            },
            move |st, i| {
                let xi = st.read(&x2, i);
                let three = st.lit_i(3);
                st.mul(&xi, &three)
            },
        );
        let p = st.finish(&kept);
        assert_three_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// Float Reduce spanning block boundaries: the batched fold must keep
    /// the exact sequential lane order, so sums match bit-for-bit even
    /// with a partial tail block.
    #[test]
    fn batched_reduce_tail_blocks(
        data in prop::collection::vec(-400i64..400, 2048..2200),
    ) {
        let floats: Vec<f64> = data.iter().map(|v| *v as f64 / 3.0).collect();
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let zero = st.lit_f(0.0);
        let s = st.reduce(
            &n,
            |st, i| {
                let xi = st.read(&x, i);
                let sq = st.mul(&xi, &xi);
                st.math(MathFn::Sqrt, &sq)
            },
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let p = st.finish(&s);
        assert_three_tiers_identical(&p, &[("x", Value::f64_arr(floats))])?;
    }

    /// BucketCollect over multiple blocks: first-seen key order must
    /// survive blockwise accumulation and the dense key directory.
    #[test]
    fn batched_bucket_collect_blocks(
        data in prop::collection::vec(0i64..6000, 900..2400),
        modulus in 1i64..13,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let g = st.group_by(&x, |st, e| {
            let m = st.lit_i(modulus);
            st.rem(e, &m)
        });
        let keys = st.bucket_keys(&g);
        let vals = st.bucket_values(&g);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        assert_three_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// Conditioned BucketReduce over multiple blocks with a float
    /// accumulator: per-bucket fold order must match the scalar tiers.
    #[test]
    fn batched_bucket_reduce_blocks(
        data in prop::collection::vec(-900i64..900, 900..2400),
        modulus in 1i64..9,
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let n = st.len(&x);
        let fzero = st.lit_f(0.0);
        let x0 = x.clone();
        let x1 = x.clone();
        let x2 = x.clone();
        let sums = st.bucket_reduce_if(
            &n,
            Some(move |st: &mut Stage, i: &Val| {
                let xi = st.read(&x0, i);
                let zero = st.lit_i(0);
                st.ge(&xi, &zero)
            }),
            move |st, i| {
                let xi = st.read(&x1, i);
                let m = st.lit_i(modulus);
                st.rem(&xi, &m)
            },
            move |st, i| {
                let xi = st.read(&x2, i);
                let f = st.i2f(&xi);
                let c = st.lit_f(7.0);
                st.div(&f, &c)
            },
            |st, a, b| st.add(a, b),
            Some(&fzero),
        );
        let keys = st.bucket_keys(&sums);
        let vals = st.bucket_values(&sums);
        let pair = st.tuple(&[&keys, &vals]);
        let p = st.finish(&pair);
        assert_three_tiers_identical(&p, &[("x", Value::i64_arr(data))])?;
    }

    /// The work-stealing executor with injected chunk faults: the batched
    /// parallel run must match the scalar-kernel parallel run and the
    /// sequential tree-walker bit-for-bit, because recovery re-executes
    /// stolen blocks with the very same kernel and mode.
    #[test]
    fn batched_parallel_stealing_survives_faults(
        data in prop::collection::vec(0i64..3000, 1500..4000),
        threads in 2usize..6,
        fail_a in 0usize..6,
        fail_b in 0usize..6,
        panicking in any::<bool>(),
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| st.add(e, e));
        let total = st.sum(&doubled);
        let m = st.lit_i(7);
        let zero = st.lit_i(0);
        let counts = st.group_by_reduce(
            &x,
            move |st, e| st.rem(e, &m),
            |st, _e| st.lit_i(1),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let ckeys = st.bucket_keys(&counts);
        let cvals = st.bucket_values(&counts);
        let out = st.tuple(&[&total, &ckeys, &cvals]);
        let p = st.finish(&out);
        let inputs = [("x", Value::i64_arr(data))];

        let mut faults = ChunkFaults::fail_once([fail_a, fail_b]);
        if panicking {
            faults = faults.panicking();
        }

        let opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (batched, report) = eval_parallel_report(&p, &inputs, &opts).unwrap();
        prop_assert!(report.compiled_loops >= 1, "{report:?}");
        prop_assert!(report.batched_loops >= 1, "no batched loop: {report:?}");

        let scalar_opts = ParallelOptions::new(threads)
            .scalar_kernel_only()
            .with_faults(faults);
        let (scalar, scalar_report) = eval_parallel_report(&p, &inputs, &scalar_opts).unwrap();
        prop_assert_eq!(scalar_report.batched_loops, 0);
        prop_assert_eq!(&batched, &scalar, "batched vs scalar bytecode (parallel)");

        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(batched, seq, "batched (parallel) vs sequential tree-walker");
    }
}

// Differential tests for the sharded (locality-aware) data plane: the
// plan-driven region-aware configuration must stay bit-identical to the
// locality-blind executor and to the tree-walking tier over the same
// chunked executor, for every generator kind, including under injected
// chunk faults. Exact-associative (all-integer) programs additionally
// exercise the region-granular task path.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four generator kinds in one program, float and int outputs,
    /// random region counts and chunk faults: sharded == blind == chunked
    /// tree-walker, bit-for-bit. The float Reduce keeps the loop on blind
    /// task granularity, so this pins the stitch merge + region-aware
    /// stealing, not task regrouping.
    #[test]
    fn sharded_plane_matches_blind_and_treewalk(
        data in prop::collection::vec(0i64..3000, 1500..4000),
        threads in 2usize..6,
        regions in 1usize..5,
        fail_a in 0usize..6,
        fail_b in 0usize..6,
        panicking in any::<bool>(),
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let scaled = st.map(&x, |st, e| {
            let ef = st.i2f(e);
            let c = st.lit_f(3.0);
            st.div(&ef, &c)
        });
        let total = st.sum(&scaled);
        let m = st.lit_i(7);
        let zero = st.lit_i(0);
        let counts = st.group_by_reduce(
            &x,
            move |st, e| st.rem(e, &m),
            |st, _e| st.lit_i(1),
            |st, a, b| st.add(a, b),
            Some(&zero),
        );
        let groups = st.group_by(&x, |st, e| {
            let m = st.lit_i(3);
            st.rem(e, &m)
        });
        let ckeys = st.bucket_keys(&counts);
        let cvals = st.bucket_values(&counts);
        let gkeys = st.bucket_keys(&groups);
        let out = st.tuple(&[&total, &ckeys, &cvals, &gkeys]);
        let mut p = st.finish(&out);

        let plan = std::sync::Arc::new(dmll_analysis::export_plan(&dmll_analysis::analyze(&mut p)));
        let inputs = [("x", Value::i64_arr(data))];
        let mut faults = ChunkFaults::fail_once([fail_a, fail_b]);
        if panicking {
            faults = faults.panicking();
        }

        let blind_opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (blind, _) = eval_parallel_report(&p, &inputs, &blind_opts).unwrap();

        let sharded_opts = ParallelOptions::new(threads)
            .with_regions(regions)
            .with_plan(plan)
            .with_faults(faults.clone());
        let (sharded, report) = eval_parallel_report(&p, &inputs, &sharded_opts).unwrap();
        prop_assert!(report.sharded_loops >= 1, "never ran sharded: {report:?}");
        prop_assert_eq!(&sharded, &blind, "sharded vs blind");

        let walk_opts = ParallelOptions::new(threads)
            .tree_walk_only()
            .with_faults(faults);
        let (walked, _) = eval_parallel_report(&p, &inputs, &walk_opts).unwrap();
        prop_assert_eq!(sharded, walked, "sharded vs chunked tree-walker");
    }

    /// All-integer program (every reduce is a recognized wrapping int op):
    /// the sharded plane regroups the loop onto region-granular tasks, and
    /// the output must still match the blind path and the *sequential*
    /// tree-walker exactly — integer regrouping is bit-exact.
    #[test]
    fn sharded_region_tasks_are_exact(
        data in prop::collection::vec(-2000i64..2000, 1500..5000),
        threads in 2usize..6,
        regions in 2usize..5,
        fail_a in 0usize..4,
        panicking in any::<bool>(),
    ) {
        let mut st = Stage::new();
        let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let doubled = st.map(&x, |st, e| st.add(e, e));
        let total = st.sum(&doubled);
        let m = st.lit_i(11);
        let zero = st.lit_i(0);
        let maxes = st.group_by_reduce(
            &x,
            move |st, e| st.rem(e, &m),
            |_st, e| e.clone(),
            |st, a, b| st.max(a, b),
            Some(&zero),
        );
        let mkeys = st.bucket_keys(&maxes);
        let mvals = st.bucket_values(&maxes);
        let out = st.tuple(&[&total, &mkeys, &mvals]);
        let mut p = st.finish(&out);

        let plan = std::sync::Arc::new(dmll_analysis::export_plan(&dmll_analysis::analyze(&mut p)));
        let inputs = [("x", Value::i64_arr(data))];
        let mut faults = ChunkFaults::fail_once([fail_a]);
        if panicking {
            faults = faults.panicking();
        }

        let blind_opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (blind, _) = eval_parallel_report(&p, &inputs, &blind_opts).unwrap();

        let sharded_opts = ParallelOptions::new(threads)
            .with_regions(regions)
            .with_plan(plan)
            .with_faults(faults);
        let (sharded, report) = eval_parallel_report(&p, &inputs, &sharded_opts).unwrap();
        prop_assert!(report.sharded_loops >= 1, "never ran sharded: {report:?}");
        prop_assert_eq!(&sharded, &blind, "sharded (region tasks) vs blind");

        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(sharded, seq, "sharded (region tasks) vs sequential");
    }
}

/// Integer-keyed argmin rides the divide-and-conquer certificate onto
/// region-granular tasks: selection by a total-ordered `i64` key is
/// associative (consistent tie-break), so the sharded plane may use one
/// task per region — observable as at most `regions` tasks — while
/// staying bit-identical to the blind decomposition and the walker.
#[test]
fn argmin_by_int_key_runs_on_region_tasks() {
    let n = 100_000usize;
    let data: Vec<i64> = (0..n as i64).map(|i| (i * 2_654_435_761) % 10_007).collect();

    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let len = st.len(&x);
    let best = st.reduce(
        &len,
        |st, i| {
            let key = st.read(&x, i);
            st.tuple(&[&key, i])
        },
        |st, a, b| {
            let ka = st.tuple_get(a, 0);
            let kb = st.tuple_get(b, 0);
            let c = st.lt(&ka, &kb);
            st.mux(&c, a, b)
        },
        None,
    );
    let p = st.finish(&best);

    let inputs = [("x", Value::i64_arr(data))];
    let seq = eval_tree_walk(&p, &inputs).unwrap();

    let (threads, regions) = (4, 2);
    let blind_opts = ParallelOptions::new(threads);
    let (blind, _) = eval_parallel_report(&p, &inputs, &blind_opts).unwrap();

    let plan = std::sync::Arc::new(dmll_analysis::export_plan(&dmll_analysis::analyze(
        &mut p.clone(),
    )));
    let sharded_opts = ParallelOptions::new(threads)
        .with_regions(regions)
        .with_plan(plan);
    let (sharded, report) = eval_parallel_report(&p, &inputs, &sharded_opts).unwrap();

    assert!(report.sharded_loops >= 1, "never ran sharded: {report:?}");
    assert!(
        report.region_local_tasks + report.cross_region_steals <= regions,
        "expected region-granular tasks (<= {regions}), got {} local + {} stolen",
        report.region_local_tasks,
        report.cross_region_steals
    );
    assert_eq!(sharded, blind, "region tasks vs blind decomposition");
    assert_eq!(sharded, seq, "region tasks vs sequential walker");
}

/// Exact multiple of the block width: no scalar tail at all.
#[test]
fn batched_exact_block_multiple() {
    run_pinned_size(2048);
}

/// One block plus an odd tail: the scalar-tail path must splice in
/// seamlessly after the last full block.
#[test]
fn batched_odd_tail() {
    run_pinned_size(2048 + 37);
}

fn run_pinned_size(size: i64) {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::F64), LayoutHint::Partitioned);
    let n = st.len(&x);
    let zero = st.lit_f(0.0);
    let x2 = x.clone();
    let scaled = st.collect(&n, move |st, i| {
        let xi = st.read(&x, i);
        let c = st.lit_f(1.5);
        st.mul(&xi, &c)
    });
    let s = st.reduce(
        &n,
        move |st, i| st.read(&x2, i),
        |st, a, b| st.add(a, b),
        Some(&zero),
    );
    let pair = st.tuple(&[&scaled, &s]);
    let p = st.finish(&pair);
    let data: Vec<f64> = (0..size).map(|i| (i as f64) / 11.0 - 90.0).collect();
    let inputs = [("x", Value::f64_arr(data))];

    let before = tier_totals();
    let (batched, report) = Interp::new(&p).run_report(&inputs).unwrap();
    let after = tier_totals();
    assert!(report.compiled_loops >= 1, "{report:?}");
    assert!(after.batched_loops > before.batched_loops, "batched tier never ran");
    if size % 2048 == 37 {
        assert!(
            after.tail_elements > before.tail_elements,
            "odd size must exercise the scalar tail"
        );
    }
    let (scalar, _) = Interp::new(&p)
        .without_batched_tier()
        .run_report(&inputs)
        .unwrap();
    let walked = eval_tree_walk(&p, &inputs).unwrap();
    assert_eq!(batched, scalar);
    assert_eq!(batched, walked);
}

/// Mux requires identical branch types; keep a non-proptest regression for
/// the compiled Mux instruction since random generators above don't emit it.
#[test]
fn mux_compiles_and_matches() {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let cap = st.lit_i(100);
    let capped = st.map(&x, |st, e: &Val| {
        let over = st.gt(e, &cap);
        st.mux(&over, &cap, e)
    });
    let p = st.finish(&capped);
    let inputs = [("x", Value::i64_arr((0..500).map(|i| i * 7 % 231).collect()))];
    let (compiled, report) = Interp::new(&p).run_report(&inputs).unwrap();
    assert!(report.compiled_loops >= 1, "{report:?}");
    let walked = eval_tree_walk(&p, &inputs).unwrap();
    assert_eq!(compiled, walked);
}
