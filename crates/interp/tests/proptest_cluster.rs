//! Differential properties for the measured cluster executor: for any
//! input data, node count, and seeded fault scenario (node deaths at
//! epoch/shuffle boundaries, link flakes, straggler speculation), the
//! cluster result is bit-identical to the sequential tree-walker and to
//! the single-node parallel tiers at the same task-plan width — across
//! all four generator kinds (collect, reduce, bucket-collect,
//! bucket-reduce).

use dmll_core::{LayoutHint, Ty};
use dmll_frontend::Stage;
use dmll_interp::cluster::{shuffle_step, ClusterOptions};
use dmll_interp::{eval, eval_cluster_measured, eval_parallel, ExecError, Value};
use dmll_runtime::{FaultPlan, SpeculationPolicy};
use proptest::prelude::*;
use std::time::Duration;

/// One program exercising every generator kind: a map (collect), a sum
/// (reduce), keyed sums (bucket-reduce), and keyed groups
/// (bucket-collect). Integer arithmetic keeps every fold associative, so
/// sequential, parallel, and cluster agree exactly.
fn all_kinds_program() -> dmll_core::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let mapped = st.map(&x, |st, e| {
        let three = st.lit_i(3);
        st.mul(e, &three)
    });
    let total = st.sum(&mapped);
    let zero = st.lit_i(0);
    let sums = st.group_by_reduce(
        &x,
        |st, e| {
            let seven = st.lit_i(7);
            st.rem(e, &seven)
        },
        |_st, e| e.clone(),
        |st, a, b| st.add(a, b),
        Some(&zero),
    );
    let groups = st.group_by(&x, |st, e| {
        let five = st.lit_i(5);
        st.rem(e, &five)
    });
    let sk = st.bucket_keys(&sums);
    let sv = st.bucket_values(&sums);
    let gk = st.bucket_keys(&groups);
    let gv = st.bucket_values(&groups);
    let out = st.tuple(&[&total, &sk, &sv, &gk, &gv]);
    st.finish(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cluster == tree-walker == single-node parallel, under any
    /// combination of node death, link flakes, and speculation.
    #[test]
    fn cluster_is_bit_identical_under_faults(
        data in prop::collection::vec(-1_000i64..1_000, 64..600),
        nodes in 2usize..5,
        threads in 2usize..4,
        kill_some in any::<bool>(),
        kill_node in 0usize..8,
        kill_epoch in 0u64..3,
        flake_tenths in 0u32..3,
        speculate in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let p = all_kinds_program();
        let inputs = [("x", Value::i64_arr(data))];
        let seq = eval(&p, &inputs).unwrap();
        let par = eval_parallel(&p, &inputs, threads).unwrap();
        prop_assert_eq!(&seq, &par, "tree-walker vs single-node parallel");

        let mut faults = FaultPlan::new(seed);
        if kill_some {
            // Only worker nodes die; the coordinator is co-located with
            // node 0. Deaths land on epoch/shuffle step boundaries.
            let victim = 1 + kill_node % (nodes - 1).max(1);
            faults = faults.kill_node(victim, shuffle_step(kill_epoch));
        }
        if flake_tenths > 0 {
            faults = faults.drop_remote_reads(flake_tenths as f64 * 0.1);
        }
        let mut opts = ClusterOptions::new(nodes, threads).with_faults(faults);
        if speculate {
            opts = opts.with_speculation(SpeculationPolicy {
                enabled: true,
                min_samples: 3,
                percentile: 75.0,
                multiplier: 2.0,
                floor: Duration::from_micros(100),
            });
        }
        match eval_cluster_measured(&p, &inputs, &opts) {
            Ok((clu, report)) => {
                prop_assert_eq!(&seq, &clu, "cluster diverged: {:?}", report);
                prop_assert!(report.cluster_loops > 0 || report.coordinator_loops > 0);
                // The first shuffle boundary is always reached (the sizes
                // above guarantee at least one cluster epoch); later kill
                // steps may fall past the last loop once fusion merges
                // epochs, so only the epoch-0 death is asserted observable.
                if kill_some && kill_epoch == 0 {
                    prop_assert!(report.node_deaths >= 1, "epoch-0 death fired: {:?}", report);
                }
            }
            // A flaky link may exhaust its retry budget; the gate is
            // "bit-identical or typed error", never a wrong answer.
            Err(ExecError::Runtime(_)) if flake_tenths > 0 => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("untyped failure: {other:?}")));
            }
        }
    }
}
