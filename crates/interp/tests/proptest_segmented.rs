//! Differential property tests for *segmented* nested-loop execution:
//! nested reduces whose trip counts vary per element (per-row degrees)
//! must batch through the CSR-flattened segmented executor and stay
//! bit-identical to the scalar bytecode kernel and the tree-walking
//! reference — for values, for float fold order, and for the exact error
//! the element-at-a-time loop would raise first (faults, `EmptyReduce`) —
//! sequentially, under the work-stealing executor with injected chunk
//! faults, and on the measured cluster with straggler speculation.

use dmll_core::{LayoutHint, MathFn, Ty};
use dmll_frontend::{Stage, Val};
use dmll_interp::cluster::ClusterOptions;
use dmll_interp::{
    eval_cluster_measured, eval_parallel_report, eval_tree_walk, tier_totals, ChunkFaults,
    EvalError, ExecError, Interp, ParallelOptions, Value,
};
use dmll_runtime::{FaultPlan, SpeculationPolicy};
use proptest::prelude::*;
use std::time::Duration;

/// Run on all three tiers sequentially and demand bit-identical values —
/// and demand the segmented executor actually ran (the global segmented
/// chunk counter grew; it is monotonic, so this is sound with other tests
/// in the same process).
fn assert_segmented_identical(
    p: &dmll_core::Program,
    inputs: &[(&str, Value)],
) -> Result<(), TestCaseError> {
    let before = tier_totals();
    let (batched, report) = Interp::new(p).run_report(inputs).expect("batched tier run");
    let after = tier_totals();
    prop_assert!(report.compiled_loops >= 1, "no loop compiled: {report:?}");
    prop_assert!(
        after.batched_loops > before.batched_loops,
        "no loop ran on the batched tier"
    );
    prop_assert!(
        after.segmented_blocks > before.segmented_blocks,
        "no segmented chunk ran: {after:?}"
    );
    let (scalar, _) = Interp::new(p)
        .without_batched_tier()
        .run_report(inputs)
        .expect("scalar kernel tier run");
    let walked = eval_tree_walk(p, inputs).expect("tree-walk run");
    prop_assert_eq!(&batched, &scalar, "segmented-batched vs scalar bytecode");
    prop_assert_eq!(batched, walked, "segmented-batched vs tree-walker");
    Ok(())
}

/// Run on all three tiers sequentially and demand the *results* — value or
/// typed error — are identical. Used by the fault-shape generators, where
/// the scalar loop's first error (element-major, then generator order) is
/// part of the contract.
fn assert_segmented_results_match(
    p: &dmll_core::Program,
    inputs: &[(&str, Value)],
) -> Result<(), TestCaseError> {
    let batched: Result<Value, EvalError> = Interp::new(p).run(inputs);
    let scalar = Interp::new(p).without_batched_tier().run(inputs);
    let walked = eval_tree_walk(p, inputs);
    prop_assert_eq!(&batched, &scalar, "segmented-batched vs scalar bytecode");
    prop_assert_eq!(batched, walked, "segmented-batched vs tree-walker");
    Ok(())
}

/// Outer collect over `deg.len()` rows; per row, a nested integer reduce
/// over `deg[i]` iterations (lane-varying trips, zero-trip rows included)
/// mixing the outer row index, a gathered per-row value, and a `y` read
/// indexed by the inner iteration.
fn varying_int_program(with_init: bool) -> dmll_core::Program {
    let mut st = Stage::new();
    let deg = st.input("deg", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let y = st.input("y", Ty::arr(Ty::I64), LayoutHint::Local);
    let n = st.len(&deg);
    let out = st.collect(&n, |st, i| {
        let di = st.read(&deg, i);
        let xi = st.mul(&di, i);
        let zero = st.lit_i(0);
        let init = with_init.then_some(&zero);
        st.reduce(
            &di,
            |st, j| {
                let yj = st.read(&y, j);
                let a = st.add(&yj, &xi);
                st.add(&a, j)
            },
            |st, a, b| st.add(a, b),
            init,
        )
    });
    st.finish(&out)
}

/// Float flavour: lane-varying trip count *and* a lane-varying float
/// identity, with math in the value block — per-row fold chains must keep
/// the scalar iteration order bit-for-bit.
fn varying_float_program() -> dmll_core::Program {
    let mut st = Stage::new();
    let deg = st.input("deg", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let n = st.len(&deg);
    let out = st.collect(&n, |st, i| {
        let di = st.read(&deg, i);
        let ifl = st.i2f(i);
        let c = st.lit_f(3.0);
        let init = st.div(&ifl, &c);
        st.reduce(
            &di,
            |st, j: &Val| {
                let jf = st.i2f(j);
                let one = st.lit_f(1.0);
                let t = st.add(&jf, &one);
                let r = st.math(MathFn::Sqrt, &t);
                st.add(&r, &init)
            },
            |st, a, b| st.add(a, b),
            Some(&init),
        )
    });
    st.finish(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Integer nested reduce with explicit identity: variable degrees
    /// (zero-trip rows seal to the identity), enough rows that full
    /// [`BLOCK`]-wide outer blocks reach the segmented path.
    #[test]
    fn segmented_int_reduce_matches(
        degs in prop::collection::vec(0i64..12, 1100..2400),
        y in prop::collection::vec(-500i64..500, 12..40),
    ) {
        let p = varying_int_program(true);
        let inputs = [("deg", Value::i64_arr(degs)), ("y", Value::i64_arr(y))];
        assert_segmented_identical(&p, &inputs)?;
    }

    /// No identity: the first iteration seeds each row's accumulator; rows
    /// are kept non-empty so the reduce is total.
    #[test]
    fn segmented_seeded_reduce_matches(
        degs in prop::collection::vec(1i64..12, 1100..2400),
        y in prop::collection::vec(-500i64..500, 12..40),
    ) {
        let p = varying_int_program(false);
        let inputs = [("deg", Value::i64_arr(degs)), ("y", Value::i64_arr(y))];
        assert_segmented_identical(&p, &inputs)?;
    }

    /// Float fold order: lane-varying trips and a lane-varying identity;
    /// float addition is not associative, so any chunk-order slip shows in
    /// the bits.
    #[test]
    fn segmented_float_fold_matches(
        degs in prop::collection::vec(0i64..9, 1100..2400),
    ) {
        let p = varying_float_program();
        let inputs = [("deg", Value::i64_arr(degs))];
        assert_segmented_identical(&p, &inputs)?;
    }

    /// Fault shapes: degrees may be zero with *no* identity (the scalar
    /// loop raises `EmptyReduce` at the first empty row) and the inner
    /// body divides by `y[j]`, which may be zero (raising
    /// `DivisionByZero` at some flat position). The three tiers must
    /// agree on the result — value or the exact first error.
    #[test]
    fn segmented_first_error_matches(
        degs in prop::collection::vec(0i64..12, 1100..2400),
        y in prop::collection::vec(0i64..4, 12..40),
        with_init in any::<bool>(),
    ) {
        let mut st = Stage::new();
        let deg = st.input("deg", Ty::arr(Ty::I64), LayoutHint::Partitioned);
        let yv = st.input("y", Ty::arr(Ty::I64), LayoutHint::Local);
        let n = st.len(&deg);
        let out = st.collect(&n, |st, i| {
            let di = st.read(&deg, i);
            let zero = st.lit_i(0);
            let init = with_init.then_some(&zero);
            st.reduce(
                &di,
                |st, j| {
                    let yj = st.read(&yv, j);
                    let num = st.add(&di, j);
                    st.div(&num, &yj)
                },
                |st, a, b| st.add(a, b),
                init,
            )
        });
        let p = st.finish(&out);
        let inputs = [("deg", Value::i64_arr(degs)), ("y", Value::i64_arr(y))];
        assert_segmented_results_match(&p, &inputs)?;
    }

    /// The work-stealing executor with injected chunk faults: segmented
    /// batched parallel == scalar-kernel parallel == sequential
    /// tree-walker, because recovery re-executes stolen blocks with the
    /// same kernel and mode.
    #[test]
    fn segmented_parallel_stealing_survives_faults(
        degs in prop::collection::vec(0i64..10, 1500..3000),
        y in prop::collection::vec(-500i64..500, 10..30),
        threads in 2usize..6,
        fail_a in 0usize..6,
        fail_b in 0usize..6,
        panicking in any::<bool>(),
    ) {
        let p = varying_int_program(true);
        let inputs = [("deg", Value::i64_arr(degs)), ("y", Value::i64_arr(y))];

        let mut faults = ChunkFaults::fail_once([fail_a, fail_b]);
        if panicking {
            faults = faults.panicking();
        }

        let opts = ParallelOptions::new(threads).with_faults(faults.clone());
        let (batched, report) = eval_parallel_report(&p, &inputs, &opts).unwrap();
        prop_assert!(report.compiled_loops >= 1, "{report:?}");
        prop_assert!(report.batched_loops >= 1, "no batched loop: {report:?}");

        let scalar_opts = ParallelOptions::new(threads)
            .scalar_kernel_only()
            .with_faults(faults);
        let (scalar, scalar_report) = eval_parallel_report(&p, &inputs, &scalar_opts).unwrap();
        prop_assert_eq!(scalar_report.batched_loops, 0);
        prop_assert_eq!(&batched, &scalar, "batched vs scalar bytecode (parallel)");

        let seq = eval_tree_walk(&p, &inputs).unwrap();
        prop_assert_eq!(batched, seq, "batched (parallel) vs sequential tree-walker");
    }

    /// The measured cluster with node deaths, link flakes, and straggler
    /// speculation: bit-identical or a typed error, never a wrong answer.
    #[test]
    fn segmented_cluster_is_bit_identical(
        degs in prop::collection::vec(0i64..8, 600..1400),
        y in prop::collection::vec(-200i64..200, 8..24),
        nodes in 2usize..4,
        threads in 2usize..4,
        kill_some in any::<bool>(),
        flake_tenths in 0u32..3,
        speculate in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let p = varying_int_program(true);
        let inputs = [("deg", Value::i64_arr(degs)), ("y", Value::i64_arr(y))];
        let seq = eval_tree_walk(&p, &inputs).unwrap();

        let mut faults = FaultPlan::new(seed);
        if kill_some {
            faults = faults.kill_node(1 + (seed as usize) % (nodes - 1).max(1), 0);
        }
        if flake_tenths > 0 {
            faults = faults.drop_remote_reads(f64::from(flake_tenths) * 0.1);
        }
        let mut opts = ClusterOptions::new(nodes, threads).with_faults(faults);
        if speculate {
            opts = opts.with_speculation(SpeculationPolicy {
                enabled: true,
                min_samples: 3,
                percentile: 75.0,
                multiplier: 2.0,
                floor: Duration::from_micros(100),
            });
        }
        match eval_cluster_measured(&p, &inputs, &opts) {
            Ok((clu, report)) => {
                prop_assert_eq!(&seq, &clu, "cluster diverged: {:?}", report);
            }
            Err(ExecError::Runtime(_)) if flake_tenths > 0 => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("untyped failure: {other:?}")));
            }
        }
    }
}

/// The dense-path guard: a nested loop with an *invariant* trip count must
/// keep using the iteration-major columnar path (no segmented chunks), so
/// the segmented dispatch only fires where it is needed.
#[test]
fn invariant_trips_stay_on_columnar_path() {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let n = st.len(&x);
    let k = st.lit_i(8);
    let out = st.collect(&n, |st, i| {
        let xi = st.read(&x, i);
        let zero = st.lit_i(0);
        st.reduce(
            &k,
            |st, j| st.add(&xi, j),
            |st, a, b| st.add(a, b),
            Some(&zero),
        )
    });
    let p = st.finish(&out);
    let data: Vec<i64> = (0..3000).collect();
    let inputs = [("x", Value::i64_arr(data))];
    let before = tier_totals();
    let (batched, report) = Interp::new(&p).run_report(&inputs).expect("batched run");
    let after = tier_totals();
    assert!(report.compiled_loops >= 1, "{report:?}");
    assert_eq!(
        after.segmented_blocks, before.segmented_blocks,
        "invariant-trip loop took the segmented path"
    );
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(batched, walked);
}
