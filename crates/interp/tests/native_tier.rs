//! Differential tests for the native tier (emit C++, compile, `dlopen`):
//! native results must be bit-identical to the batched and tree-walking
//! tiers, runtime faults must degrade to the batched tier's exact error,
//! and a missing system compiler must surface as a typed fallback rather
//! than a failure.
//!
//! Every test tolerates a container without a C++ compiler: the native
//! tier then declines with `compiler_unavailable` and the differential
//! assertions still hold (they compare against the batched tier, which is
//! what the fallback runs).

use dmll_core::{LayoutHint, Ty};
use dmll_frontend::{Stage, Val};
use dmll_interp::{
    eval_parallel_report, eval_tree_walk, native_fallback_reasons, tier_totals, ChunkFaults,
    Interp, ParallelOptions, Value,
};

fn have_compiler() -> bool {
    dmll_codegen::find_compiler().is_some()
}

/// A Gene-shaped program: per-key counts and sums (BucketReduce with a
/// typed i64 key), a filtered reduction, and a zip-style Collect with an
/// int-to-float cast and division — every loop native-eligible.
fn gene_like_program() -> dmll_core::Program {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let q = st.input("q", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let n = st.len(&x);

    let izero = st.lit_i(0);
    let counts = st.group_by_reduce(
        &x,
        |st, e| {
            let m = st.lit_i(7);
            st.rem(e, &m)
        },
        |st, _e| st.lit_i(1),
        |st, a, b| st.add(a, b),
        Some(&izero),
    );

    let x2 = x.clone();
    let total = st.reduce(
        &n,
        move |st, i| {
            let xi = st.read(&x2, i);
            st.mul(&xi, &xi)
        },
        |st, a, b| st.add(a, b),
        Some(&izero),
    );

    let x3 = x.clone();
    let q2 = q.clone();
    let ratios = st.collect(&n, move |st, i| {
        let xi = st.read(&x3, i);
        let qi = st.read(&q2, i);
        let one = st.lit_i(1);
        let den = st.add(&qi, &one);
        let xf = st.i2f(&xi);
        let df = st.i2f(&den);
        st.div(&xf, &df)
    });

    let ckeys = st.bucket_keys(&counts);
    let cvals = st.bucket_values(&counts);
    let out = st.tuple(&[&total, &ckeys, &cvals, &ratios]);
    st.finish(&out)
}

fn gene_inputs(size: i64) -> [(&'static str, Value); 2] {
    let x: Vec<i64> = (0..size).map(|i| (i * 31 + 7) % 1000).collect();
    let q: Vec<i64> = (0..size).map(|i| (i * 13) % 40).collect();
    [("x", Value::i64_arr(x)), ("q", Value::i64_arr(q))]
}

/// Sequential dispatch: the native tier must be bit-identical to the
/// batched tier and the tree-walker. With a compiler present the native
/// loop counter must grow; without one the decline must be typed.
#[test]
fn native_sequential_matches_batched_and_walker() {
    let p = gene_like_program();
    let inputs = gene_inputs(3000);

    let before = tier_totals();
    let (native, report) = Interp::new(&p)
        .with_native()
        .run_report(&inputs)
        .expect("native-enabled run");
    let after = tier_totals();
    assert!(report.compiled_loops >= 1, "{report:?}");
    if have_compiler() {
        assert!(
            after.native_loops > before.native_loops,
            "native tier never ran; fallbacks: {:?}",
            native_fallback_reasons()
        );
    } else {
        assert!(
            native_fallback_reasons().contains_key("compiler_unavailable"),
            "missing compiler must be a typed decline"
        );
    }

    let (batched, _) = Interp::new(&p).run_report(&inputs).expect("batched run");
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(native, batched, "native vs batched");
    assert_eq!(native, walked, "native vs tree-walker");
}

/// Parallel dispatch: native chunks under work stealing — with and
/// without injected chunk faults — must match the native-off parallel run
/// and the sequential tree-walker bit-for-bit.
#[test]
fn native_parallel_with_faults_is_bit_identical() {
    let p = gene_like_program();
    let inputs = gene_inputs(4096);

    let clean_opts = ParallelOptions::new(4).with_native();
    let (clean, report) = eval_parallel_report(&p, &inputs, &clean_opts).expect("clean native run");
    assert!(report.compiled_loops >= 1, "{report:?}");

    let fault_opts = ParallelOptions::new(4)
        .with_native()
        .with_faults(ChunkFaults::fail_once([1, 3]));
    let (recovered, _) = eval_parallel_report(&p, &inputs, &fault_opts).expect("faulted run");
    assert_eq!(clean, recovered, "native parallel recovery must be exact");

    let plain_opts = ParallelOptions::new(4);
    let (plain, _) = eval_parallel_report(&p, &inputs, &plain_opts).expect("native-off run");
    assert_eq!(clean, plain, "native on vs off (parallel)");

    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(clean, walked, "native parallel vs sequential tree-walker");
}

/// A runtime fault inside the native kernel (division by zero) must fall
/// back to the batched tier and reproduce the interpreter's exact error.
#[test]
fn native_runtime_fault_reproduces_exact_error() {
    let mut st = Stage::new();
    let q = st.input("q", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let mapped = st.map(&q, |st, e: &Val| {
        let c = st.lit_i(100);
        st.div(&c, e)
    });
    let p = st.finish(&mapped);
    // Contains a zero denominator partway through.
    let data: Vec<i64> = (0..600).map(|i| i - 300).collect();
    let inputs = [("q", Value::i64_arr(data))];

    let native_err = Interp::new(&p)
        .with_native()
        .run_report(&inputs)
        .expect_err("division by zero must error");
    let plain_err = Interp::new(&p)
        .run_report(&inputs)
        .expect_err("division by zero must error");
    assert_eq!(
        format!("{native_err}"),
        format!("{plain_err}"),
        "native fallback must reproduce the batched tier's error"
    );
    if have_compiler() {
        assert!(
            native_fallback_reasons()
                .get("runtime_fault")
                .copied()
                .unwrap_or(0)
                >= 1,
            "the faulting chunk must be counted as a runtime_fault fallback: {:?}",
            native_fallback_reasons()
        );
    }
}

/// A successful error-free division loop (no zero denominators) must be
/// bit-identical across tiers — the div guard only fires on real faults.
#[test]
fn native_guarded_division_matches_when_fault_free() {
    let mut st = Stage::new();
    let q = st.input("q", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let mapped = st.map(&q, |st, e: &Val| {
        let c = st.lit_i(100_000);
        st.div(&c, e)
    });
    let p = st.finish(&mapped);
    let data: Vec<i64> = (0..600).map(|i| i % 97 + 1).collect();
    let inputs = [("q", Value::i64_arr(data))];

    let (native, _) = Interp::new(&p)
        .with_native()
        .run_report(&inputs)
        .expect("fault-free run");
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(native, walked);
}

/// Native-ineligible constructs (BucketCollect / group_by) must decline
/// with a stable typed key and still produce identical results.
#[test]
fn native_ineligible_loop_declines_with_typed_reason() {
    let mut st = Stage::new();
    let x = st.input("x", Ty::arr(Ty::I64), LayoutHint::Partitioned);
    let g = st.group_by(&x, |st, e| {
        let m = st.lit_i(5);
        st.rem(e, &m)
    });
    let keys = st.bucket_keys(&g);
    let vals = st.bucket_values(&g);
    let pair = st.tuple(&[&keys, &vals]);
    let p = st.finish(&pair);
    let inputs = [(
        "x",
        Value::i64_arr((0..800).map(|i| i * 17 % 400).collect()),
    )];

    let (native, _) = Interp::new(&p)
        .with_native()
        .run_report(&inputs)
        .expect("declined run still succeeds");
    let walked = eval_tree_walk(&p, &inputs).expect("tree-walk run");
    assert_eq!(native, walked);
    // The decline is checked before any compiler is invoked, so the typed
    // key is recorded with or without a system compiler present.
    assert!(
        native_fallback_reasons().contains_key("bucket_collect"),
        "{:?}",
        native_fallback_reasons()
    );
}
